//! Synthetic image classification dataset (CIFAR/ImageNet stand-in).
//!
//! Each class is a smooth random prototype; a sample is its class prototype
//! plus per-sample structured noise, passed through *stateless* augmentation
//! (horizontal flip and shift decided by `(seed, sample id)`, identical
//! every epoch). The class structure is hierarchical — prototypes share a
//! low-frequency base — so front layers learn general features before deep
//! layers separate classes, reproducing the general→specific convergence
//! ordering Egeria exploits.

use crate::loader::Dataset;
use egeria_models::{Batch, Input, Targets};
use egeria_tensor::{Result, Rng, Tensor};

/// Configuration of the synthetic image dataset.
#[derive(Debug, Clone, Copy)]
pub struct ImageDataConfig {
    /// Number of samples.
    pub samples: usize,
    /// Number of classes.
    pub classes: usize,
    /// Image side length (square, 3 channels).
    pub size: usize,
    /// Per-sample noise amplitude relative to the class signal.
    pub noise: f32,
    /// Whether stateless augmentation (flip + shift) is applied.
    pub augment: bool,
}

impl Default for ImageDataConfig {
    fn default() -> Self {
        ImageDataConfig {
            samples: 1024,
            classes: 10,
            size: 12,
            noise: 0.4,
            augment: true,
        }
    }
}

/// The synthetic labelled-images dataset.
pub struct SyntheticImages {
    cfg: ImageDataConfig,
    seed: u64,
    prototypes: Vec<Tensor>,
}

impl SyntheticImages {
    /// Creates the dataset; all content derives from `seed`.
    pub fn new(cfg: ImageDataConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed).derive(0xC1A5);
        let s = cfg.size;
        // A shared low-frequency base makes front-layer features generic.
        let base = smooth_field(s, &mut rng, 3.0);
        let prototypes = (0..cfg.classes)
            .map(|_| {
                let own = smooth_field(s, &mut rng, 1.5);
                let mut p = Tensor::zeros(&[3, s, s]);
                for c in 0..3 {
                    let phase = c as f32 * 0.7;
                    for i in 0..s {
                        for j in 0..s {
                            let b = base.data()[i * s + j];
                            let o = own.data()[i * s + j];
                            p.data_mut()[(c * s + i) * s + j] = b + 1.5 * (o + phase).sin();
                        }
                    }
                }
                p
            })
            .collect();
        SyntheticImages {
            cfg,
            seed,
            prototypes,
        }
    }

    /// The class label of sample `idx`.
    pub fn label(&self, idx: usize) -> usize {
        // Stable pseudo-random label assignment.
        (Rng::new(self.seed).derive(idx as u64).below(self.cfg.classes)) % self.cfg.classes
    }

    /// The (augmented) image of sample `idx`; pure in `(seed, idx)`.
    pub fn image(&self, idx: usize) -> Tensor {
        let label = self.label(idx);
        let mut rng = Rng::new(self.seed).derive(0xA000 + idx as u64);
        let s = self.cfg.size;
        let mut img = self.prototypes[label].clone();
        for v in img.data_mut() {
            *v += self.cfg.noise * rng.normal();
        }
        if self.cfg.augment {
            let mut arng = Rng::new(self.seed).derive(0xB000 + idx as u64);
            if arng.flip() {
                flip_horizontal(&mut img, s);
            }
            let dx = arng.below(3) as isize - 1;
            shift_columns(&mut img, s, dx);
        }
        img
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.cfg.classes
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.cfg.size
    }
}

fn smooth_field(s: usize, rng: &mut Rng, freq: f32) -> Tensor {
    let (a, b, c, d) = (rng.normal(), rng.normal(), rng.normal(), rng.normal());
    let mut t = Tensor::zeros(&[s, s]);
    for i in 0..s {
        for j in 0..s {
            let x = i as f32 / s as f32 * freq;
            let y = j as f32 / s as f32 * freq;
            t.data_mut()[i * s + j] = a * (x + b).sin() + c * (y + d).cos();
        }
    }
    t
}

fn flip_horizontal(img: &mut Tensor, s: usize) {
    for c in 0..3 {
        for i in 0..s {
            let row = (c * s + i) * s;
            img.data_mut()[row..row + s].reverse();
        }
    }
}

fn shift_columns(img: &mut Tensor, s: usize, dx: isize) {
    if dx == 0 {
        return;
    }
    let src = img.data().to_vec();
    for c in 0..3 {
        for i in 0..s {
            let row = (c * s + i) * s;
            for j in 0..s {
                let jj = j as isize - dx;
                img.data_mut()[row + j] = if jj >= 0 && (jj as usize) < s {
                    src[row + jj as usize]
                } else {
                    0.0
                };
            }
        }
    }
}

impl Dataset for SyntheticImages {
    fn len(&self) -> usize {
        self.cfg.samples
    }

    fn materialize(&self, indices: &[usize]) -> Result<Batch> {
        let refs: Vec<Tensor> = indices
            .iter()
            .map(|&i| self.image(i).reshape(&[1, 3, self.cfg.size, self.cfg.size]))
            .collect::<Result<_>>()?;
        let views: Vec<&Tensor> = refs.iter().collect();
        let images = Tensor::concat(&views, 0)?;
        let labels = indices.iter().map(|&i| self.label(i)).collect();
        Ok(Batch {
            input: Input::Image(images),
            targets: Targets::Classes(labels),
            sample_ids: indices.iter().map(|&i| i as u64).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_stateless_across_calls() {
        let d = SyntheticImages::new(ImageDataConfig::default(), 1);
        assert_eq!(d.image(5), d.image(5));
        assert_eq!(d.label(5), d.label(5));
    }

    #[test]
    fn different_samples_differ() {
        let d = SyntheticImages::new(ImageDataConfig::default(), 1);
        assert_ne!(d.image(1), d.image(2));
    }

    #[test]
    fn different_seeds_give_different_data() {
        let cfg = ImageDataConfig::default();
        let a = SyntheticImages::new(cfg, 1);
        let b = SyntheticImages::new(cfg, 2);
        assert_ne!(a.image(0), b.image(0));
    }

    #[test]
    fn materialize_shapes_and_ids() {
        let d = SyntheticImages::new(
            ImageDataConfig {
                samples: 16,
                classes: 4,
                size: 8,
                noise: 0.2,
                augment: true,
            },
            3,
        );
        let b = d.materialize(&[3, 1, 7]).unwrap();
        match &b.input {
            Input::Image(t) => assert_eq!(t.dims(), &[3, 3, 8, 8]),
            _ => panic!("expected image input"),
        }
        assert_eq!(b.sample_ids, vec![3, 1, 7]);
        match &b.targets {
            Targets::Classes(c) => assert_eq!(c.len(), 3),
            _ => panic!("expected class targets"),
        }
    }

    #[test]
    fn labels_cover_multiple_classes() {
        let d = SyntheticImages::new(ImageDataConfig::default(), 9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(d.label(i));
        }
        assert!(seen.len() >= 5, "only {} classes seen", seen.len());
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity: the classification task must be learnable — nearest
        // prototype should beat chance by a wide margin.
        let cfg = ImageDataConfig {
            samples: 128,
            classes: 4,
            size: 8,
            noise: 0.4,
            augment: false,
        };
        let d = SyntheticImages::new(cfg, 4);
        let mut correct = 0;
        for i in 0..cfg.samples {
            let img = d.image(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, p) in d.prototypes.iter().enumerate() {
                let dist = img.sub(p).unwrap().sq_norm();
                if dist < best_d {
                    best_d = dist;
                    best = k;
                }
            }
            if best == d.label(i) {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / cfg.samples as f32 > 0.9,
            "nearest-prototype accuracy {}",
            correct as f32 / cfg.samples as f32
        );
    }
}
