//! Synthetic semantic segmentation dataset (VOC stand-in).
//!
//! Each image contains 1–3 axis-aligned rectangular "objects" of distinct
//! classes over a textured background (class 0); the mask labels every
//! pixel. Object appearance is class-correlated so the task is learnable.

use crate::loader::Dataset;
use egeria_models::{Batch, Input, Targets};
use egeria_tensor::{Result, Rng, Tensor};

/// Configuration of the synthetic segmentation dataset.
#[derive(Debug, Clone, Copy)]
pub struct SegDataConfig {
    /// Number of samples.
    pub samples: usize,
    /// Number of classes including background (class 0).
    pub classes: usize,
    /// Image side length.
    pub size: usize,
}

impl Default for SegDataConfig {
    fn default() -> Self {
        SegDataConfig {
            samples: 512,
            classes: 6,
            size: 16,
        }
    }
}

/// The synthetic segmentation dataset.
pub struct SyntheticSegmentation {
    cfg: SegDataConfig,
    seed: u64,
    /// Per-class mean colour (3 channels).
    palette: Vec<[f32; 3]>,
}

impl SyntheticSegmentation {
    /// Creates the dataset.
    pub fn new(cfg: SegDataConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed).derive(0x5E6);
        let palette = (0..cfg.classes)
            .map(|_| [2.0 * rng.normal(), 2.0 * rng.normal(), 2.0 * rng.normal()])
            .collect();
        SyntheticSegmentation { cfg, seed, palette }
    }

    /// Generates `(image, mask)` for sample `idx`; pure in `(seed, idx)`.
    pub fn sample(&self, idx: usize) -> (Tensor, Vec<usize>) {
        let s = self.cfg.size;
        let mut rng = Rng::new(self.seed).derive(0x5A00 + idx as u64);
        let mut img = Tensor::zeros(&[3, s, s]);
        let mut mask = vec![0usize; s * s];
        // Background texture.
        for c in 0..3 {
            for i in 0..s * s {
                img.data_mut()[c * s * s + i] =
                    self.palette[0][c] * 0.3 + 0.3 * rng.normal();
            }
        }
        let n_objects = 1 + rng.below(3.min(self.cfg.classes - 1));
        for _ in 0..n_objects {
            let class = 1 + rng.below(self.cfg.classes - 1);
            let w = 4 + rng.below(s / 2);
            let h = 4 + rng.below(s / 2);
            let x0 = rng.below(s - w + 1);
            let y0 = rng.below(s - h + 1);
            for i in y0..y0 + h {
                for j in x0..x0 + w {
                    mask[i * s + j] = class;
                    for c in 0..3 {
                        img.data_mut()[(c * s + i) * s + j] =
                            self.palette[class][c] + 0.3 * rng.normal();
                    }
                }
            }
        }
        (img, mask)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.cfg.classes
    }
}

impl Dataset for SyntheticSegmentation {
    fn len(&self) -> usize {
        self.cfg.samples
    }

    fn materialize(&self, indices: &[usize]) -> Result<Batch> {
        let s = self.cfg.size;
        let mut imgs = Vec::with_capacity(indices.len());
        let mut pixels = Vec::with_capacity(indices.len() * s * s);
        for &i in indices {
            let (img, mask) = self.sample(i);
            imgs.push(img.reshape(&[1, 3, s, s])?);
            pixels.extend(mask);
        }
        let views: Vec<&Tensor> = imgs.iter().collect();
        Ok(Batch {
            input: Input::Image(Tensor::concat(&views, 0)?),
            targets: Targets::Pixels(pixels),
            sample_ids: indices.iter().map(|&i| i as u64).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let d = SyntheticSegmentation::new(SegDataConfig::default(), 1);
        assert_eq!(d.sample(3).0, d.sample(3).0);
        assert_eq!(d.sample(3).1, d.sample(3).1);
    }

    #[test]
    fn masks_contain_background_and_objects() {
        let d = SyntheticSegmentation::new(SegDataConfig::default(), 2);
        let mut has_bg = false;
        let mut has_obj = false;
        for i in 0..20 {
            let (_, mask) = d.sample(i);
            has_bg |= mask.contains(&0);
            has_obj |= mask.iter().any(|&m| m != 0);
        }
        assert!(has_bg && has_obj);
    }

    #[test]
    fn mask_labels_stay_in_range() {
        let cfg = SegDataConfig {
            samples: 8,
            classes: 4,
            size: 8,
        };
        let d = SyntheticSegmentation::new(cfg, 3);
        for i in 0..8 {
            let (_, mask) = d.sample(i);
            assert!(mask.iter().all(|&m| m < 4));
        }
    }

    #[test]
    fn materialize_pixel_count_matches() {
        let cfg = SegDataConfig {
            samples: 8,
            classes: 4,
            size: 8,
        };
        let d = SyntheticSegmentation::new(cfg, 4);
        let b = d.materialize(&[0, 5]).unwrap();
        match &b.targets {
            Targets::Pixels(p) => assert_eq!(p.len(), 2 * 8 * 8),
            _ => panic!("expected pixel targets"),
        }
    }
}
