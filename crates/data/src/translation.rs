//! Synthetic machine-translation dataset (WMT16 EN–DE stand-in).
//!
//! The "translation" is a deterministic token-level cipher plus sequence
//! reversal: target token `t_i = π(s_{L−1−i})` for a fixed random
//! permutation π of the vocabulary. This gives the model a compositional
//! mapping to learn: embeddings must learn π (front-layer, task-agnostic
//! work) while attention must learn the reversed alignment (deep-layer,
//! task-specific work) — mirroring why front Transformer layers converge
//! first.

use crate::loader::Dataset;
use egeria_models::{Batch, Input, Targets};
use egeria_tensor::{Result, Rng};

/// Beginning-of-sequence token id (reserved).
pub const BOS: usize = 0;

/// Configuration of the synthetic translation dataset.
#[derive(Debug, Clone, Copy)]
pub struct TranslationConfig {
    /// Number of sentence pairs.
    pub samples: usize,
    /// Vocabulary size (id 0 is BOS).
    pub vocab: usize,
    /// Sentence length (fixed, no padding needed).
    pub len: usize,
}

impl Default for TranslationConfig {
    fn default() -> Self {
        TranslationConfig {
            samples: 512,
            vocab: 32,
            len: 10,
        }
    }
}

/// The synthetic parallel corpus.
pub struct SyntheticTranslation {
    cfg: TranslationConfig,
    seed: u64,
    /// The cipher permutation over content tokens `1..vocab`.
    cipher: Vec<usize>,
}

impl SyntheticTranslation {
    /// Creates the dataset.
    pub fn new(cfg: TranslationConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed).derive(0x7A);
        let mut cipher: Vec<usize> = (1..cfg.vocab).collect();
        rng.shuffle(&mut cipher);
        SyntheticTranslation { cfg, seed, cipher }
    }

    /// Source sentence of sample `idx` (content tokens only).
    pub fn source(&self, idx: usize) -> Vec<usize> {
        let mut rng = Rng::new(self.seed).derive(0x5000 + idx as u64);
        (0..self.cfg.len)
            .map(|_| 1 + rng.below(self.cfg.vocab - 1))
            .collect()
    }

    /// Reference target sentence: cipher applied to the reversed source.
    pub fn target(&self, idx: usize) -> Vec<usize> {
        let src = self.source(idx);
        src.iter().rev().map(|&s| self.cipher[s - 1]).collect()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.cfg.vocab
    }
}

impl Dataset for SyntheticTranslation {
    // `cfg.len` is the sequence length; the dataset's length is `samples`.
    #[allow(clippy::misnamed_getters)]
    fn len(&self) -> usize {
        self.cfg.samples
    }

    fn materialize(&self, indices: &[usize]) -> Result<Batch> {
        let mut src = Vec::with_capacity(indices.len());
        let mut dec_in = Vec::with_capacity(indices.len());
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            let s = self.source(i);
            let t = self.target(i);
            // Teacher forcing: decoder sees BOS + t[..len-1], predicts t.
            let mut din = vec![BOS];
            din.extend_from_slice(&t[..t.len() - 1]);
            src.push(s);
            dec_in.push(din);
            targets.push(t);
        }
        Ok(Batch {
            input: Input::Seq2Seq { src, tgt: dec_in },
            targets: Targets::TokenTargets(targets),
            sample_ids: indices.iter().map(|&i| i as u64).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_deterministic() {
        let d = SyntheticTranslation::new(TranslationConfig::default(), 1);
        assert_eq!(d.source(7), d.source(7));
        assert_eq!(d.target(7), d.target(7));
    }

    #[test]
    fn cipher_is_a_bijection_on_content_tokens() {
        let d = SyntheticTranslation::new(TranslationConfig::default(), 2);
        let mut sorted = d.cipher.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..32).collect::<Vec<_>>());
    }

    #[test]
    fn target_applies_cipher_to_reversed_source() {
        let cfg = TranslationConfig {
            samples: 4,
            vocab: 8,
            len: 4,
        };
        let d = SyntheticTranslation::new(cfg, 3);
        let s = d.source(0);
        let t = d.target(0);
        for i in 0..4 {
            assert_eq!(t[i], d.cipher[s[3 - i] - 1]);
        }
    }

    #[test]
    fn materialize_shifts_decoder_input() {
        let d = SyntheticTranslation::new(TranslationConfig::default(), 4);
        let b = d.materialize(&[0]).unwrap();
        let (tgt_in, targets) = match (&b.input, &b.targets) {
            (Input::Seq2Seq { tgt, .. }, Targets::TokenTargets(t)) => (tgt, t),
            _ => panic!("wrong batch kinds"),
        };
        assert_eq!(tgt_in[0][0], BOS);
        assert_eq!(&tgt_in[0][1..], &targets[0][..targets[0].len() - 1]);
    }

    #[test]
    fn tokens_never_use_bos_as_content() {
        let d = SyntheticTranslation::new(TranslationConfig::default(), 5);
        for i in 0..10 {
            assert!(d.source(i).iter().all(|&t| t != BOS));
            assert!(d.target(i).iter().all(|&t| t != BOS));
        }
    }
}
