//! Dataset trait and the known-future data loader.

use egeria_models::Batch;
use egeria_tensor::{Result, Rng};

/// A deterministic dataset that can materialize any subset of its samples
/// into a [`Batch`].
///
/// Implementations must be *stateless*: `materialize` called twice with the
/// same indices returns identical batches, including any augmentation.
pub trait Dataset: Send {
    /// Number of samples.
    fn len(&self) -> usize;

    /// Whether the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the batch for the given sample indices.
    fn materialize(&self, indices: &[usize]) -> Result<Batch>;
}

/// A mini-batch plan: the sample indices of one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Epoch the plan belongs to.
    pub epoch: usize,
    /// Iteration index within the epoch.
    pub step: usize,
    /// Dataset indices of the batch.
    pub indices: Vec<usize>,
}

/// Shuffling data loader with an up-front per-epoch order.
///
/// The entire epoch's batch sequence is derivable from `(seed, epoch)`, so
/// [`DataLoader::epoch_plan`] can be consulted by the activation prefetcher
/// arbitrarily far ahead of the training loop.
pub struct DataLoader {
    len: usize,
    batch_size: usize,
    seed: u64,
    drop_last: bool,
}

impl DataLoader {
    /// Creates a loader over a dataset of `len` samples.
    pub fn new(len: usize, batch_size: usize, seed: u64, drop_last: bool) -> Self {
        DataLoader {
            len,
            batch_size: batch_size.max(1),
            seed,
            drop_last,
        }
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        if self.drop_last {
            self.len / self.batch_size
        } else {
            self.len.div_ceil(self.batch_size)
        }
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Shuffle seed. Together with the epoch index this fully determines
    /// every batch plan, which is what makes checkpoint/resume exact: a
    /// resumed run rebuilds the identical plans without any cursor state.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full, deterministic batch plan of an epoch.
    pub fn epoch_plan(&self, epoch: usize) -> Vec<BatchPlan> {
        let mut rng = Rng::new(self.seed).derive(epoch as u64);
        let order = rng.permutation(self.len);
        let mut plans = Vec::with_capacity(self.batches_per_epoch());
        for (step, chunk) in order.chunks(self.batch_size).enumerate() {
            if self.drop_last && chunk.len() < self.batch_size {
                break;
            }
            plans.push(BatchPlan {
                epoch,
                step,
                indices: chunk.to_vec(),
            });
        }
        plans
    }

    /// The plans for a worker shard in data-parallel training: worker `w`
    /// of `n` takes every `n`-th batch.
    pub fn shard_plan(&self, epoch: usize, worker: usize, workers: usize) -> Vec<BatchPlan> {
        self.epoch_plan(epoch)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % workers.max(1) == worker)
            .map(|(_, p)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_plan_is_deterministic() {
        let l = DataLoader::new(100, 16, 7, true);
        assert_eq!(l.epoch_plan(3), l.epoch_plan(3));
        assert_ne!(l.epoch_plan(3), l.epoch_plan(4));
    }

    #[test]
    fn plan_covers_dataset_without_repeats() {
        let l = DataLoader::new(50, 8, 1, false);
        let plans = l.epoch_plan(0);
        let mut all: Vec<usize> = plans.iter().flat_map(|p| p.indices.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn drop_last_truncates_ragged_batch() {
        let l = DataLoader::new(50, 8, 1, true);
        assert_eq!(l.batches_per_epoch(), 6);
        assert!(l.epoch_plan(0).iter().all(|p| p.indices.len() == 8));
        let l2 = DataLoader::new(50, 8, 1, false);
        assert_eq!(l2.batches_per_epoch(), 7);
    }

    #[test]
    fn shards_partition_the_epoch() {
        let l = DataLoader::new(64, 8, 2, true);
        let a = l.shard_plan(0, 0, 2);
        let b = l.shard_plan(0, 1, 2);
        assert_eq!(a.len() + b.len(), l.batches_per_epoch());
        let steps_a: Vec<usize> = a.iter().map(|p| p.step).collect();
        assert!(steps_a.iter().all(|s| s % 2 == 0));
        let steps_b: Vec<usize> = b.iter().map(|p| p.step).collect();
        assert!(steps_b.iter().all(|s| s % 2 == 1));
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let l = DataLoader::new(32, 32, 5, true);
        let e0 = &l.epoch_plan(0)[0].indices;
        let e1 = &l.epoch_plan(1)[0].indices;
        assert_ne!(e0, e1);
    }
}
