//! Synthetic extractive question-answering dataset (SQuAD 1.0 stand-in).
//!
//! A sample is a token sequence of the form
//! `[query, filler…, MARK, answer tokens…, MARK, filler…]` where the query
//! token determines the answer class; the model must find the span between
//! the markers whose contents match the query's class. The gold span covers
//! the answer tokens (inclusive), so span F1 behaves like SQuAD evaluation.

use crate::loader::Dataset;
use egeria_models::{Batch, Input, Targets};
use egeria_tensor::{Result, Rng};

/// Configuration of the synthetic QA dataset.
#[derive(Debug, Clone, Copy)]
pub struct QaDataConfig {
    /// Number of samples.
    pub samples: usize,
    /// Vocabulary size; the top ids are reserved for query/marker tokens.
    pub vocab: usize,
    /// Sequence length.
    pub len: usize,
    /// Answer span length.
    pub answer_len: usize,
}

impl Default for QaDataConfig {
    fn default() -> Self {
        QaDataConfig {
            samples: 512,
            vocab: 24,
            len: 16,
            answer_len: 3,
        }
    }
}

/// The synthetic QA dataset.
pub struct SyntheticQa {
    cfg: QaDataConfig,
    seed: u64,
}

impl SyntheticQa {
    /// Creates the dataset.
    pub fn new(cfg: QaDataConfig, seed: u64) -> Self {
        SyntheticQa { cfg, seed }
    }

    /// The marker token id.
    fn marker(&self) -> usize {
        self.cfg.vocab - 1
    }

    /// Generates `(tokens, (start, end))` for sample `idx`.
    pub fn sample(&self, idx: usize) -> (Vec<usize>, (usize, usize)) {
        let mut rng = Rng::new(self.seed).derive(0x9A00 + idx as u64);
        let len = self.cfg.len;
        let ans = self.cfg.answer_len;
        let marker = self.marker();
        // Content tokens avoid the marker id.
        let content = |rng: &mut Rng| rng.below(self.cfg.vocab - 2);
        let mut tokens: Vec<usize> = (0..len).map(|_| content(&mut rng)).collect();
        // Answer position: leave room for marker + span + marker.
        let start = 2 + rng.below(len - ans - 4);
        tokens[start - 1] = marker;
        tokens[start + ans] = marker;
        // The query token (position 0) encodes the answer's first token so
        // the mapping is learnable.
        tokens[0] = tokens[start];
        (tokens, (start, start + ans - 1))
    }
}

impl Dataset for SyntheticQa {
    // `cfg.len` is the sequence length; the dataset's length is `samples`.
    #[allow(clippy::misnamed_getters)]
    fn len(&self) -> usize {
        self.cfg.samples
    }

    fn materialize(&self, indices: &[usize]) -> Result<Batch> {
        let mut tokens = Vec::with_capacity(indices.len());
        let mut spans = Vec::with_capacity(indices.len());
        for &i in indices {
            let (t, s) = self.sample(i);
            tokens.push(t);
            spans.push(s);
        }
        Ok(Batch {
            input: Input::Tokens(tokens),
            targets: Targets::Spans(spans),
            sample_ids: indices.iter().map(|&i| i as u64).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let d = SyntheticQa::new(QaDataConfig::default(), 1);
        assert_eq!(d.sample(3), d.sample(3));
    }

    #[test]
    fn span_is_bracketed_by_markers() {
        let d = SyntheticQa::new(QaDataConfig::default(), 2);
        for i in 0..20 {
            let (tokens, (s, e)) = d.sample(i);
            assert_eq!(tokens[s - 1], d.marker());
            assert_eq!(tokens[e + 1], d.marker());
            assert!(e < tokens.len());
            assert_eq!(e - s + 1, 3);
        }
    }

    #[test]
    fn query_token_matches_answer_head() {
        let d = SyntheticQa::new(QaDataConfig::default(), 3);
        for i in 0..20 {
            let (tokens, (s, _)) = d.sample(i);
            assert_eq!(tokens[0], tokens[s]);
        }
    }

    #[test]
    fn materialize_builds_span_targets() {
        let d = SyntheticQa::new(QaDataConfig::default(), 4);
        let b = d.materialize(&[0, 1]).unwrap();
        match (&b.input, &b.targets) {
            (Input::Tokens(t), Targets::Spans(s)) => {
                assert_eq!(t.len(), 2);
                assert_eq!(s.len(), 2);
            }
            _ => panic!("wrong kinds"),
        }
    }
}
