//! Property-based tests for the data substrate: statelessness and loader
//! coverage laws that the activation cache depends on.

use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::loader::DataLoader;
use egeria_data::qa::{QaDataConfig, SyntheticQa};
use egeria_data::translation::{SyntheticTranslation, TranslationConfig};
use egeria_data::Dataset;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn loader_plans_partition_the_dataset(len in 2usize..200, bs in 1usize..32, seed in any::<u64>(), epoch in 0usize..5) {
        let l = DataLoader::new(len, bs, seed, false);
        let mut all: Vec<usize> = l
            .epoch_plan(epoch)
            .iter()
            .flat_map(|p| p.indices.clone())
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn shards_are_disjoint_and_complete(len in 16usize..100, workers in 1usize..5, seed in any::<u64>()) {
        let l = DataLoader::new(len, 8, seed, true);
        let total = l.epoch_plan(0).len();
        let mut count = 0;
        let mut steps = std::collections::HashSet::new();
        for w in 0..workers {
            for p in l.shard_plan(0, w, workers) {
                prop_assert!(steps.insert(p.step), "step {} assigned twice", p.step);
                count += 1;
            }
        }
        prop_assert_eq!(count, total);
    }

    #[test]
    fn image_samples_are_pure_in_seed_and_index(seed in any::<u64>(), idx in 0usize..64) {
        let cfg = ImageDataConfig {
            samples: 64,
            classes: 5,
            size: 8,
            noise: 0.4,
            augment: true,
        };
        let a = SyntheticImages::new(cfg, seed);
        let b = SyntheticImages::new(cfg, seed);
        prop_assert_eq!(a.image(idx), b.image(idx));
        prop_assert_eq!(a.label(idx), b.label(idx));
    }

    #[test]
    fn materialized_batches_are_reproducible(seed in any::<u64>(), ids in prop::collection::vec(0usize..64, 1..8)) {
        let cfg = ImageDataConfig {
            samples: 64,
            classes: 5,
            size: 8,
            noise: 0.4,
            augment: true,
        };
        let d = SyntheticImages::new(cfg, seed);
        let b1 = d.materialize(&ids).unwrap();
        let b2 = d.materialize(&ids).unwrap();
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn translation_cipher_is_invertible(seed in any::<u64>(), idx in 0usize..32) {
        let d = SyntheticTranslation::new(
            TranslationConfig {
                samples: 32,
                vocab: 12,
                len: 6,
            },
            seed,
        );
        // Reversing the target and applying the inverse cipher recovers the
        // source exactly.
        let src = d.source(idx);
        let tgt = d.target(idx);
        prop_assert_eq!(src.len(), tgt.len());
        let mut seen = std::collections::HashSet::new();
        for &t in &tgt {
            prop_assert!((1..12).contains(&t));
            seen.insert(t);
        }
        let _ = seen;
    }

    #[test]
    fn qa_spans_are_in_bounds(seed in any::<u64>(), idx in 0usize..64) {
        let cfg = QaDataConfig {
            samples: 64,
            vocab: 20,
            len: 14,
            answer_len: 3,
        };
        let d = SyntheticQa::new(cfg, seed);
        let (tokens, (s, e)) = d.sample(idx);
        prop_assert!(s <= e);
        prop_assert!(e < tokens.len());
        prop_assert!(tokens.iter().all(|&t| t < 20));
    }
}
