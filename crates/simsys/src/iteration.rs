//! Per-iteration timing with freezing and cached-FP.

use crate::allreduce::ring_allreduce_time;
use crate::arch::ArchSpec;
use crate::device::ClusterSpec;
use crate::schedule::{simulate_iteration, CommOutcome};
pub use crate::schedule::CommPolicy;
use serde::Serialize;

/// The state of one training iteration.
#[derive(Debug, Clone, Copy)]
pub struct IterationSetting {
    /// Frozen-prefix length.
    pub frozen_prefix: usize,
    /// Whether the frozen prefix's forward pass is served from the cache.
    pub fp_cached: bool,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
}

/// Where the iteration's time went.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TimeBreakdown {
    /// Forward compute (seconds).
    pub fwd: f64,
    /// Backward compute.
    pub bwd: f64,
    /// Communication not hidden behind compute.
    pub comm_exposed: f64,
    /// Cache prefetch time not hidden behind compute.
    pub prefetch_exposed: f64,
    /// Total iteration time.
    pub total: f64,
}

/// Computes one iteration's time for a given freezing state.
///
/// Backward compute is modeled at 2× forward FLOPs (the standard
/// grad-weight + grad-input accounting).
pub fn iteration_time(
    arch: &ArchSpec,
    cluster: &ClusterSpec,
    setting: IterationSetting,
    policy: CommPolicy,
) -> TimeBreakdown {
    let n = arch.num_modules();
    let prefix = setting.frozen_prefix.min(n.saturating_sub(1));
    let b = setting.batch_size as f64;
    let gpu = cluster.gpu.flops_per_sec;
    let workers = cluster.workers();
    let net = cluster.sync_network();
    let mut fwd = vec![0.0f64; n];
    let mut bwd = vec![0.0f64; n];
    let mut comm = vec![0.0f64; n];
    for (i, m) in arch.modules.iter().enumerate() {
        let f = m.flops_fwd * b / gpu;
        let skip_fwd = setting.fp_cached && i < prefix;
        fwd[i] = if skip_fwd { 0.0 } else { f };
        if i >= prefix {
            bwd[i] = 2.0 * f;
            comm[i] = ring_allreduce_time(m.param_bytes, workers, net);
        }
    }
    let outcome: CommOutcome = simulate_iteration(&fwd, &bwd, &comm, prefix, policy);
    let t_fwd: f64 = fwd.iter().sum();
    let t_bwd: f64 = bwd.iter().sum();
    // Prefetch: the boundary activation streams from disk, overlapped with
    // the active compute; only the excess is exposed.
    let prefetch_exposed = if setting.fp_cached && prefix > 0 {
        let boundary = &arch.modules[prefix - 1];
        let bytes = boundary.act_bytes * b;
        let t_disk = bytes / cluster.disk.read_bps;
        (t_disk - (t_fwd + t_bwd)).max(0.0)
    } else {
        0.0
    };
    let comm_exposed = (outcome.iteration_time - t_fwd - t_bwd).max(0.0);
    TimeBreakdown {
        fwd: t_fwd,
        bwd: t_bwd,
        comm_exposed,
        prefetch_exposed,
        total: outcome.iteration_time + prefetch_exposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchSpec, FlopsModel, PaperScale};

    fn spec() -> ArchSpec {
        ArchSpec::scaled(
            "resnet50",
            &[100, 200, 400, 800],
            Some(&[4, 4, 4, 4]),
            FlopsModel::PerBlockUniform,
            PaperScale::resnet50_imagenet(),
        )
    }

    fn base_setting() -> IterationSetting {
        IterationSetting {
            frozen_prefix: 0,
            fp_cached: false,
            batch_size: 32,
        }
    }

    #[test]
    fn single_node_iteration_is_compute_dominated() {
        let cluster = ClusterSpec::v100_cluster(1);
        let t = iteration_time(&spec(), &cluster, base_setting(), CommPolicy::Vanilla);
        assert!(t.total > 0.0);
        assert!(t.bwd > t.fwd * 1.9 && t.bwd < t.fwd * 2.1);
        // ResNet-50 at batch 32 on a V100: tens of milliseconds.
        assert!(t.total > 0.01 && t.total < 1.0, "total {}", t.total);
    }

    #[test]
    fn freezing_reduces_iteration_time() {
        let cluster = ClusterSpec::v100_cluster(3);
        let full = iteration_time(&spec(), &cluster, base_setting(), CommPolicy::Vanilla);
        let frozen = iteration_time(
            &spec(),
            &cluster,
            IterationSetting {
                frozen_prefix: 2,
                ..base_setting()
            },
            CommPolicy::Vanilla,
        );
        assert!(frozen.total < full.total);
    }

    #[test]
    fn cached_fp_further_reduces_time() {
        let cluster = ClusterSpec::v100_cluster(1);
        let frozen = iteration_time(
            &spec(),
            &cluster,
            IterationSetting {
                frozen_prefix: 2,
                ..base_setting()
            },
            CommPolicy::Vanilla,
        );
        let cached = iteration_time(
            &spec(),
            &cluster,
            IterationSetting {
                frozen_prefix: 2,
                fp_cached: true,
                ..base_setting()
            },
            CommPolicy::Vanilla,
        );
        assert!(cached.total < frozen.total);
        assert!(cached.fwd < frozen.fwd);
    }

    #[test]
    fn multi_node_adds_exposed_communication() {
        let single = iteration_time(
            &spec(),
            &ClusterSpec::v100_cluster(1),
            base_setting(),
            CommPolicy::Vanilla,
        );
        let multi = iteration_time(
            &spec(),
            &ClusterSpec::v100_cluster(5),
            base_setting(),
            CommPolicy::Vanilla,
        );
        assert!(multi.comm_exposed >= single.comm_exposed);
    }

    #[test]
    fn frozen_modules_do_not_sync() {
        // Freezing removes the frozen prefix's gradient synchronization:
        // the iteration gets faster even though the surviving deep-module
        // transfer now has less backward compute to hide behind (its
        // *exposed* share may grow while the total shrinks).
        let cluster = ClusterSpec::v100_cluster(5);
        let full = iteration_time(&spec(), &cluster, base_setting(), CommPolicy::Vanilla);
        let frozen = iteration_time(
            &spec(),
            &cluster,
            IterationSetting {
                frozen_prefix: 3,
                ..base_setting()
            },
            CommPolicy::Vanilla,
        );
        assert!(frozen.total < full.total);
        assert!(frozen.bwd < full.bwd);
    }
}
