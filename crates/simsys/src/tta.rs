//! Time-to-accuracy accounting: converts training traces into simulated
//! wall-clock series (Figures 9/17–20, Table 1).

use crate::arch::ArchSpec;
use crate::device::ClusterSpec;
use crate::iteration::{iteration_time, CommPolicy, IterationSetting};
use std::collections::HashMap;

/// The cost-relevant facts of one training iteration (mirrors
/// `egeria_core::trainer::IterationRecord` without a crate dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IterTrace {
    /// Epoch the iteration belongs to.
    pub epoch: u32,
    /// Frozen-prefix length during the iteration.
    pub frozen_prefix: u16,
    /// Whether the frozen prefix's forward pass came from the cache.
    pub fp_cached: bool,
}

/// Cumulative simulated seconds at the end of each epoch.
///
/// Iteration timings are memoized per distinct `(prefix, cached)` state, so
/// costing a 10⁴-iteration trace is cheap.
pub fn epoch_times(
    arch: &ArchSpec,
    cluster: &ClusterSpec,
    trace: &[IterTrace],
    batch_size: usize,
    policy: CommPolicy,
) -> Vec<f64> {
    let mut memo: HashMap<(u16, bool), f64> = HashMap::new();
    let max_epoch = trace.iter().map(|t| t.epoch).max().map(|e| e as usize + 1).unwrap_or(0);
    let mut cum = vec![0.0f64; max_epoch];
    for t in trace {
        let dt = *memo.entry((t.frozen_prefix, t.fp_cached)).or_insert_with(|| {
            iteration_time(
                arch,
                cluster,
                IterationSetting {
                    frozen_prefix: t.frozen_prefix as usize,
                    fp_cached: t.fp_cached,
                    batch_size,
                },
                policy,
            )
            .total
        });
        cum[t.epoch as usize] += dt;
    }
    // Prefix-sum to cumulative time.
    for e in 1..cum.len() {
        cum[e] += cum[e - 1];
    }
    cum
}

/// Average training throughput in samples/second over a trace.
pub fn throughput(
    arch: &ArchSpec,
    cluster: &ClusterSpec,
    trace: &[IterTrace],
    batch_size: usize,
    policy: CommPolicy,
) -> f64 {
    let times = epoch_times(arch, cluster, trace, batch_size, policy);
    let total = times.last().copied().unwrap_or(0.0);
    if total <= 0.0 {
        return 0.0;
    }
    let samples = trace.len() as f64 * batch_size as f64 * cluster.workers() as f64;
    samples / total
}

/// The first simulated time at which the metric series reaches `target`.
///
/// `epoch_metrics[e]` is the validation metric at the end of epoch `e`
/// (`None` when not evaluated); `higher_is_better` selects the comparison
/// direction (accuracy/F1/mIoU vs. perplexity).
pub fn time_to_target(
    times: &[f64],
    epoch_metrics: &[Option<f32>],
    target: f32,
    higher_is_better: bool,
) -> Option<f64> {
    for (e, m) in epoch_metrics.iter().enumerate() {
        if let Some(v) = m {
            let hit = if higher_is_better { *v >= target } else { *v <= target };
            if hit {
                return times.get(e).copied();
            }
        }
    }
    None
}

/// TTA speedup of a treatment over a baseline, reported like the paper
/// ("28%" = baseline takes 28% longer ⇔ treatment is `1 − t/b` shorter).
pub fn tta_speedup(baseline_seconds: f64, treatment_seconds: f64) -> f64 {
    if baseline_seconds <= 0.0 {
        return 0.0;
    }
    1.0 - treatment_seconds / baseline_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{FlopsModel, PaperScale};

    fn spec() -> ArchSpec {
        ArchSpec::scaled(
            "m",
            &[100, 200, 400],
            None,
            FlopsModel::PerBlockUniform,
            PaperScale::resnet56_cifar(),
        )
    }

    fn trace(epochs: u32, iters: usize, prefix: u16, cached: bool) -> Vec<IterTrace> {
        (0..epochs)
            .flat_map(|e| {
                (0..iters).map(move |_| IterTrace {
                    epoch: e,
                    frozen_prefix: prefix,
                    fp_cached: cached,
                })
            })
            .collect()
    }

    #[test]
    fn cumulative_times_are_monotone() {
        let cluster = ClusterSpec::v100_cluster(1);
        let times = epoch_times(&spec(), &cluster, &trace(5, 10, 0, false), 32, CommPolicy::Vanilla);
        assert_eq!(times.len(), 5);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn frozen_trace_is_faster() {
        let cluster = ClusterSpec::v100_cluster(2);
        let slow = epoch_times(&spec(), &cluster, &trace(3, 10, 0, false), 32, CommPolicy::Vanilla);
        let fast = epoch_times(&spec(), &cluster, &trace(3, 10, 2, true), 32, CommPolicy::Vanilla);
        assert!(fast.last().unwrap() < slow.last().unwrap());
    }

    #[test]
    fn throughput_scales_with_workers() {
        // More workers process more samples per second, though not quite
        // linearly due to all-reduce cost.
        let t1 = throughput(
            &spec(),
            &ClusterSpec::v100_cluster(1),
            &trace(2, 10, 0, false),
            32,
            CommPolicy::Vanilla,
        );
        let t4 = throughput(
            &spec(),
            &ClusterSpec::v100_cluster(4),
            &trace(2, 10, 0, false),
            32,
            CommPolicy::Vanilla,
        );
        assert!(t4 > t1 * 2.0, "t1 {t1} t4 {t4}");
        assert!(t4 < t1 * 8.5);
    }

    #[test]
    fn time_to_target_direction_matters() {
        let times = vec![1.0, 2.0, 3.0];
        let acc = vec![Some(0.5), Some(0.7), Some(0.9)];
        assert_eq!(time_to_target(&times, &acc, 0.7, true), Some(2.0));
        assert_eq!(time_to_target(&times, &acc, 0.95, true), None);
        let ppl = vec![Some(10.0), Some(5.0), Some(4.0)];
        assert_eq!(time_to_target(&times, &ppl, 5.0, false), Some(2.0));
    }

    #[test]
    fn speedup_formula_matches_paper_convention() {
        assert!((tta_speedup(100.0, 72.0) - 0.28).abs() < 1e-9);
        assert_eq!(tta_speedup(0.0, 1.0), 0.0);
    }
}
