//! Hardware profiles of the paper's testbeds (§6.1).

/// A GPU profile with an effective (achieved, not peak) throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Device name.
    pub name: &'static str,
    /// Effective fp32 training throughput in FLOP/s. Peak numbers are
    /// derated to the ~30–40% utilization typical of convolution/attention
    /// training kernels.
    pub flops_per_sec: f64,
}

/// NVIDIA V100 (peak 15.7 TFLOPS fp32, ~35% achieved).
pub const V100: GpuProfile = GpuProfile {
    name: "V100",
    flops_per_sec: 5.5e12,
};

/// NVIDIA GeForce RTX 2080 Ti (peak 13.4 TFLOPS fp32, ~33% achieved).
pub const RTX_2080TI: GpuProfile = GpuProfile {
    name: "RTX2080Ti",
    flops_per_sec: 4.4e12,
};

/// A CPU profile for reference-model execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    /// Effective fp32 inference throughput (all cores available to the
    /// controller).
    pub flops_per_sec: f64,
    /// int8 speedup over f32 (Table 2 measures 3.59×).
    pub int8_speedup: f64,
}

/// A 40-core Xeon-class server CPU.
pub const SERVER_CPU: CpuProfile = CpuProfile {
    flops_per_sec: 2.0e11,
    int8_speedup: 3.59,
};

/// Network profile of the fabric between workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Per-link bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

/// The paper's 40 Gbps leaf–spine fabric (Mellanox CX-5 / SN2100).
pub const FABRIC_40G: NetworkProfile = NetworkProfile {
    bandwidth_bps: 40.0e9 / 8.0,
    latency_s: 10e-6,
};

/// Intra-node interconnect (PCIe/NVLink-class) for single-node multi-GPU.
pub const INTRA_NODE: NetworkProfile = NetworkProfile {
    bandwidth_bps: 12.0e9,
    latency_s: 3e-6,
};

/// Local SSD profile for the activation cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sequential read bandwidth, bytes/second.
    pub read_bps: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bps: f64,
}

/// NVMe-class local storage.
pub const NVME: DiskProfile = DiskProfile {
    read_bps: 2.5e9,
    write_bps: 1.5e9,
};

/// A training cluster: `nodes × gpus_per_node` workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of machines.
    pub nodes: usize,
    /// GPUs per machine (one worker process per GPU).
    pub gpus_per_node: usize,
    /// GPU profile.
    pub gpu: GpuProfile,
    /// CPU profile (reference execution).
    pub cpu: CpuProfile,
    /// Inter-node network.
    pub network: NetworkProfile,
    /// Intra-node interconnect.
    pub intra: NetworkProfile,
    /// Local disk.
    pub disk: DiskProfile,
}

impl ClusterSpec {
    /// The paper's V100 cluster: `nodes` machines × 2 V100s on 40 Gbps.
    pub fn v100_cluster(nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            gpus_per_node: 2,
            gpu: V100,
            cpu: SERVER_CPU,
            network: FABRIC_40G,
            intra: INTRA_NODE,
            disk: NVME,
        }
    }

    /// The paper's single node with 8 RTX 2080 Ti GPUs.
    pub fn rtx_single_node() -> Self {
        ClusterSpec {
            nodes: 1,
            gpus_per_node: 8,
            gpu: RTX_2080TI,
            cpu: SERVER_CPU,
            network: INTRA_NODE,
            intra: INTRA_NODE,
            disk: NVME,
        }
    }

    /// Total data-parallel workers.
    pub fn workers(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The effective network for parameter synchronization: the inter-node
    /// fabric when more than one machine is involved, otherwise the
    /// intra-node interconnect.
    pub fn sync_network(&self) -> NetworkProfile {
        if self.nodes > 1 {
            self.network
        } else {
            self.intra
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_worker_counts() {
        assert_eq!(ClusterSpec::v100_cluster(5).workers(), 10);
        assert_eq!(ClusterSpec::rtx_single_node().workers(), 8);
    }

    #[test]
    fn multi_node_uses_fabric() {
        assert_eq!(ClusterSpec::v100_cluster(2).sync_network(), FABRIC_40G);
        assert_eq!(ClusterSpec::v100_cluster(1).sync_network(), INTRA_NODE);
        assert_eq!(ClusterSpec::rtx_single_node().sync_network(), INTRA_NODE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn profiles_are_physically_sensible() {
        assert!(V100.flops_per_sec > RTX_2080TI.flops_per_sec);
        assert!(SERVER_CPU.flops_per_sec < V100.flops_per_sec / 10.0);
        assert!(FABRIC_40G.bandwidth_bps < INTRA_NODE.bandwidth_bps * 3.0);
        assert!(SERVER_CPU.int8_speedup > 3.0);
    }
}
