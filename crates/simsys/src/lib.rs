//! Event-driven performance simulator for the paper's testbeds.
//!
//! The reproduction trains width-reduced models on CPU, so wall-clock
//! numbers cannot come from the host machine. Instead, the *real* freezing
//! decision traces from `egeria-core` are costed against the paper's
//! hardware:
//!
//! - [`device`]: V100 / RTX-2080Ti GPU profiles, CPU int8 inference, disk,
//!   and the 40 Gbps leaf–spine fabric of §6.1,
//! - [`arch`]: paper-scale per-module FLOP/parameter/activation profiles of
//!   all seven Table 1 models, computed from the architectures' actual
//!   dimensions (ImageNet-scale ResNet-50, WMT-scale Transformer, …),
//! - [`allreduce`]: ring all-reduce cost,
//! - [`schedule`]: a NIC-queue simulation of gradient communication under
//!   FIFO (vanilla PyTorch, deep-layers-first) and priority (ByteScheduler,
//!   front-layers-first with cross-iteration overlap) policies,
//! - [`iteration`]: per-iteration timing with freezing and cached-FP,
//! - [`tta`]: converts a `TrainReport` into time-to-accuracy series and
//!   speedups (the Figure 9/17–20 and Table 1 numbers).

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod allreduce;
pub mod arch;
pub mod calibration;
pub mod device;
pub mod iteration;
pub mod schedule;
pub mod tta;

pub use arch::ArchSpec;
pub use calibration::{calibrate, CalibrationReport, ObservedSplit};
pub use device::ClusterSpec;
pub use iteration::{iteration_time, CommPolicy, IterationSetting, TimeBreakdown};
