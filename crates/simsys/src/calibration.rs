//! Calibration check: recorded trace timelines vs the simulator's model.
//!
//! The reproduction trains width-reduced models on CPU, so absolute
//! iteration times cannot be compared against the simulated V100 numbers.
//! What *can* be compared is the shape of the iteration-time split: how
//! much faster an iteration gets when a prefix is frozen, and faster still
//! when the frozen prefix's forward pass is served from the cache. The
//! telemetry layer records observed per-`(frozen_prefix, fp_cached)` mean
//! step durations; this module costs the same settings through
//! [`iteration_time`](crate::iteration::iteration_time) and reports the
//! relative disagreement.

use crate::arch::ArchSpec;
use crate::device::ClusterSpec;
use crate::iteration::{iteration_time, CommPolicy, IterationSetting};
use serde::Serialize;

/// One observed iteration-split bucket, extracted from a recorded trace
/// (mean duration of `train_step` spans sharing a freezing state).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ObservedSplit {
    /// Frozen-prefix length during these steps.
    pub frozen_prefix: usize,
    /// Whether the frozen prefix's forward pass came from the cache.
    pub fp_cached: bool,
    /// Number of steps observed in this state.
    pub steps: usize,
    /// Mean observed step duration (seconds).
    pub mean_seconds: f64,
}

/// Predicted-vs-observed comparison for one freezing state.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CalibrationRow {
    /// Frozen-prefix length.
    pub frozen_prefix: usize,
    /// Whether cached-FP was active.
    pub fp_cached: bool,
    /// Steps observed in this state.
    pub steps: usize,
    /// Observed step time relative to the baseline state.
    pub observed_ratio: f64,
    /// Simulated step time relative to the baseline state.
    pub predicted_ratio: f64,
    /// `|observed - predicted| / predicted`.
    pub rel_error: f64,
}

/// The full calibration comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationReport {
    /// The baseline state ratios are taken against (least-frozen split).
    pub baseline_prefix: usize,
    /// Whether the baseline state had cached-FP active.
    pub baseline_cached: bool,
    /// Per-state comparisons, baseline first.
    pub rows: Vec<CalibrationRow>,
    /// Largest relative error across non-baseline rows (0 when there is
    /// nothing to compare).
    pub max_rel_error: f64,
}

impl CalibrationReport {
    /// Renders the comparison as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== calibration: observed vs simulated iteration split ==\n");
        out.push_str(&format!(
            "baseline: prefix {} cached {}\n",
            self.baseline_prefix, self.baseline_cached
        ));
        out.push_str("prefix cached  steps  observed  predicted  rel_error\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>6} {:>6} {:>6}  {:>8.4}  {:>9.4}  {:>9.4}\n",
                r.frozen_prefix, r.fp_cached, r.steps, r.observed_ratio, r.predicted_ratio,
                r.rel_error
            ));
        }
        out.push_str(&format!("max_rel_error: {:.4}\n", self.max_rel_error));
        out
    }
}

/// Compares observed split timings against the simulator's prediction for
/// the same architecture and cluster.
///
/// Ratios are taken against the least-frozen observed state (ties broken
/// toward uncached), which makes the comparison robust to the absolute
/// speed difference between the measurement host and the simulated
/// testbed. Returns `None` when `observed` is empty or the baseline mean
/// is not positive.
pub fn calibrate(
    arch: &ArchSpec,
    cluster: &ClusterSpec,
    batch_size: usize,
    policy: CommPolicy,
    observed: &[ObservedSplit],
) -> Option<CalibrationReport> {
    let mut splits: Vec<ObservedSplit> = observed
        .iter()
        .copied()
        .filter(|s| s.steps > 0 && s.mean_seconds.is_finite() && s.mean_seconds > 0.0)
        .collect();
    if splits.is_empty() {
        return None;
    }
    splits.sort_by_key(|s| (s.frozen_prefix, s.fp_cached));
    let base = splits[0];
    let predict = |s: &ObservedSplit| {
        iteration_time(
            arch,
            cluster,
            IterationSetting {
                frozen_prefix: s.frozen_prefix,
                fp_cached: s.fp_cached,
                batch_size,
            },
            policy,
        )
        .total
    };
    let base_pred = predict(&base);
    if base_pred <= 0.0 {
        return None;
    }
    let mut rows = Vec::with_capacity(splits.len());
    let mut max_rel_error = 0.0f64;
    for s in &splits {
        let observed_ratio = s.mean_seconds / base.mean_seconds;
        let predicted_ratio = predict(s) / base_pred;
        let rel_error = if predicted_ratio > 0.0 {
            (observed_ratio - predicted_ratio).abs() / predicted_ratio
        } else {
            f64::INFINITY
        };
        if !(s.frozen_prefix == base.frozen_prefix && s.fp_cached == base.fp_cached)
            && rel_error > max_rel_error
        {
            max_rel_error = rel_error;
        }
        rows.push(CalibrationRow {
            frozen_prefix: s.frozen_prefix,
            fp_cached: s.fp_cached,
            steps: s.steps,
            observed_ratio,
            predicted_ratio,
            rel_error,
        });
    }
    Some(CalibrationReport {
        baseline_prefix: base.frozen_prefix,
        baseline_cached: base.fp_cached,
        rows,
        max_rel_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{FlopsModel, PaperScale};

    fn spec() -> ArchSpec {
        ArchSpec::scaled(
            "resnet50",
            &[100, 200, 400, 800],
            Some(&[4, 4, 4, 4]),
            FlopsModel::PerBlockUniform,
            PaperScale::resnet50_imagenet(),
        )
    }

    fn obs(prefix: usize, cached: bool, steps: usize, mean: f64) -> ObservedSplit {
        ObservedSplit {
            frozen_prefix: prefix,
            fp_cached: cached,
            steps,
            mean_seconds: mean,
        }
    }

    #[test]
    fn empty_observations_yield_none() {
        let r = calibrate(
            &spec(),
            &ClusterSpec::v100_cluster(1),
            32,
            CommPolicy::Vanilla,
            &[],
        );
        assert!(r.is_none());
        let r = calibrate(
            &spec(),
            &ClusterSpec::v100_cluster(1),
            32,
            CommPolicy::Vanilla,
            &[obs(0, false, 0, 1.0), obs(0, false, 4, 0.0)],
        );
        assert!(r.is_none());
    }

    #[test]
    fn perfectly_matching_observations_have_zero_error() {
        // Feed the simulator's own predictions back as observations: every
        // ratio must match exactly.
        let arch = spec();
        let cluster = ClusterSpec::v100_cluster(1);
        let settings = [(0usize, false), (2, false), (2, true)];
        let observed: Vec<ObservedSplit> = settings
            .iter()
            .map(|&(p, c)| {
                let t = iteration_time(
                    &arch,
                    &cluster,
                    IterationSetting {
                        frozen_prefix: p,
                        fp_cached: c,
                        batch_size: 32,
                    },
                    CommPolicy::Vanilla,
                );
                obs(p, c, 10, t.total)
            })
            .collect();
        let r = calibrate(&arch, &cluster, 32, CommPolicy::Vanilla, &observed).unwrap();
        assert_eq!(r.baseline_prefix, 0);
        assert!(!r.baseline_cached);
        assert_eq!(r.rows.len(), 3);
        assert!(r.max_rel_error < 1e-12, "max_rel_error {}", r.max_rel_error);
        for row in &r.rows {
            assert!((row.observed_ratio - row.predicted_ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn disagreement_is_reported_relative_to_prediction() {
        let arch = spec();
        let cluster = ClusterSpec::v100_cluster(1);
        let base = iteration_time(
            &arch,
            &cluster,
            IterationSetting {
                frozen_prefix: 0,
                fp_cached: false,
                batch_size: 32,
            },
            CommPolicy::Vanilla,
        )
        .total;
        let frozen_pred = iteration_time(
            &arch,
            &cluster,
            IterationSetting {
                frozen_prefix: 2,
                fp_cached: false,
                batch_size: 32,
            },
            CommPolicy::Vanilla,
        )
        .total;
        // Observe the frozen state 50% slower than the model predicts.
        let observed = [
            obs(0, false, 10, base),
            obs(2, false, 10, frozen_pred * 1.5),
        ];
        let r = calibrate(&arch, &cluster, 32, CommPolicy::Vanilla, &observed).unwrap();
        assert!((r.max_rel_error - 0.5).abs() < 1e-9, "{}", r.max_rel_error);
        let rendered = r.render();
        assert!(rendered.contains("max_rel_error"));
        assert!(rendered.contains("observed"));
    }

    #[test]
    fn baseline_is_least_frozen_uncached_state() {
        let arch = spec();
        let cluster = ClusterSpec::v100_cluster(1);
        let observed = [
            obs(2, true, 5, 0.5),
            obs(1, false, 5, 0.9),
            obs(1, true, 5, 0.7),
        ];
        let r = calibrate(&arch, &cluster, 32, CommPolicy::Vanilla, &observed).unwrap();
        assert_eq!(r.baseline_prefix, 1);
        assert!(!r.baseline_cached);
        assert!((r.rows[0].observed_ratio - 1.0).abs() < 1e-12);
    }
}
