//! Paper-scale architecture cost profiles.
//!
//! The reproduction trains width-reduced models, so per-module *relative*
//! sizes come from the live model while *absolute* costs come from the
//! paper-scale architecture. [`ArchSpec::scaled`] combines the two: the
//! live model's module parameter counts fix the distribution, and a
//! [`PaperScale`] fixes the totals (computed from the published
//! architectures' dimensions).

use serde::Serialize;

/// Per-module cost profile (per training sample where applicable).
#[derive(Debug, Clone, Serialize)]
pub struct ModuleCost {
    /// Module name.
    pub name: String,
    /// Forward FLOPs per sample.
    pub flops_fwd: f64,
    /// Parameter payload in bytes (gradient sync volume).
    pub param_bytes: f64,
    /// Output activation size per sample in bytes (cache traffic).
    pub act_bytes: f64,
}

/// A whole-model cost profile.
#[derive(Debug, Clone, Serialize)]
pub struct ArchSpec {
    /// Model name.
    pub name: String,
    /// Modules in forward order.
    pub modules: Vec<ModuleCost>,
    /// Input size per sample in bytes.
    pub input_bytes: f64,
}

/// How forward FLOPs distribute across modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlopsModel {
    /// FLOPs proportional to the module's parameter count (Transformers,
    /// whose per-block cost tracks per-block parameters).
    ProportionalToParams,
    /// FLOPs proportional to the module's *block* count (ResNet-style CNNs:
    /// channel doubling cancels spatial halving, so per-block FLOPs are
    /// roughly constant while parameters grow toward the back).
    PerBlockUniform,
}

/// Paper-scale totals for one Table 1 workload.
#[derive(Debug, Clone, Copy)]
pub struct PaperScale {
    /// Total forward FLOPs per sample.
    pub total_flops_fwd: f64,
    /// Total parameter bytes.
    pub total_param_bytes: f64,
    /// Input bytes per sample.
    pub input_bytes: f64,
    /// Activation-to-input size ratio at the first module boundary (the
    /// paper reports 1.5×–5.3× of input for ResNet-50; activations shrink
    /// toward the back).
    pub act_ratio_front: f64,
    /// Activation-to-input ratio at the last module boundary.
    pub act_ratio_back: f64,
}

impl PaperScale {
    /// ResNet-50 on ImageNet (224², 25.6 M params, ≈4.1 GFLOPs forward).
    pub fn resnet50_imagenet() -> Self {
        PaperScale {
            total_flops_fwd: 4.1e9,
            total_param_bytes: 25.6e6 * 4.0,
            input_bytes: 224.0 * 224.0 * 3.0 * 4.0,
            act_ratio_front: 5.3,
            act_ratio_back: 1.5,
        }
    }

    /// MobileNetV2 on CIFAR-10 (32², ≈2.3 M params, ≈90 MFLOPs).
    pub fn mobilenet_v2_cifar() -> Self {
        PaperScale {
            total_flops_fwd: 9.0e7,
            total_param_bytes: 2.3e6 * 4.0,
            input_bytes: 32.0 * 32.0 * 3.0 * 4.0,
            act_ratio_front: 4.0,
            act_ratio_back: 1.0,
        }
    }

    /// ResNet-56 on CIFAR-10 (32², 0.85 M params, ≈125 MFLOPs).
    pub fn resnet56_cifar() -> Self {
        PaperScale {
            total_flops_fwd: 1.25e8,
            total_param_bytes: 0.85e6 * 4.0,
            input_bytes: 32.0 * 32.0 * 3.0 * 4.0,
            act_ratio_front: 5.3,
            act_ratio_back: 1.3,
        }
    }

    /// DeepLabv3 (ResNet-50 backbone) on VOC at 513² crops (≈39 M params,
    /// ≈80 GFLOPs forward).
    pub fn deeplabv3_voc() -> Self {
        PaperScale {
            total_flops_fwd: 8.0e10,
            total_param_bytes: 39.0e6 * 4.0,
            input_bytes: 513.0 * 513.0 * 3.0 * 4.0,
            act_ratio_front: 5.3,
            act_ratio_back: 2.0,
        }
    }

    /// Transformer-Base on WMT16 EN-DE (≈65 M params, ≈5 GFLOPs per
    /// sentence pair at typical lengths).
    pub fn transformer_base_wmt() -> Self {
        PaperScale {
            total_flops_fwd: 5.0e9,
            total_param_bytes: 65.0e6 * 4.0,
            input_bytes: 2.0 * 25.0 * 4.0, // Token ids, tiny next to CV.
            act_ratio_front: 400.0,        // d_model × tokens dominates ids.
            act_ratio_back: 400.0,
        }
    }

    /// Transformer-Tiny (2+2 blocks, ≈15 M params).
    pub fn transformer_tiny_wmt() -> Self {
        PaperScale {
            total_flops_fwd: 1.2e9,
            total_param_bytes: 15.0e6 * 4.0,
            input_bytes: 2.0 * 25.0 * 4.0,
            act_ratio_front: 200.0,
            act_ratio_back: 200.0,
        }
    }

    /// BERT-Base fine-tuning on SQuAD at sequence length 384 (110 M
    /// params, ≈85 GFLOPs forward per sample).
    pub fn bert_base_squad() -> Self {
        PaperScale {
            total_flops_fwd: 8.5e10,
            total_param_bytes: 110.0e6 * 4.0,
            input_bytes: 384.0 * 4.0,
            act_ratio_front: 768.0,
            act_ratio_back: 768.0,
        }
    }
}

impl ArchSpec {
    /// Builds a paper-scale spec from the live model's module layout.
    ///
    /// `module_params` are the live model's per-module parameter counts;
    /// `blocks_per_module` supplies block counts for the
    /// [`FlopsModel::PerBlockUniform`] distribution (ignored otherwise, and
    /// defaulting to "one block each" if absent).
    pub fn scaled(
        name: impl Into<String>,
        module_params: &[usize],
        blocks_per_module: Option<&[usize]>,
        flops_model: FlopsModel,
        paper: PaperScale,
    ) -> ArchSpec {
        let n = module_params.len();
        let total_params: f64 = module_params.iter().map(|&p| p as f64).sum::<f64>().max(1.0);
        let default_blocks = vec![1usize; n];
        let blocks = blocks_per_module.unwrap_or(&default_blocks);
        let total_blocks: f64 = blocks.iter().map(|&b| b as f64).sum::<f64>().max(1.0);
        let modules = (0..n)
            .map(|i| {
                let param_share = module_params[i] as f64 / total_params;
                let flop_share = match flops_model {
                    FlopsModel::ProportionalToParams => param_share,
                    FlopsModel::PerBlockUniform => blocks[i] as f64 / total_blocks,
                };
                // Activation ratio interpolates front→back across module
                // boundaries.
                let frac = if n <= 1 { 0.0 } else { i as f64 / (n - 1) as f64 };
                let act_ratio =
                    paper.act_ratio_front + (paper.act_ratio_back - paper.act_ratio_front) * frac;
                ModuleCost {
                    name: format!("module{i}"),
                    flops_fwd: paper.total_flops_fwd * flop_share,
                    param_bytes: paper.total_param_bytes * param_share,
                    act_bytes: paper.input_bytes * act_ratio,
                }
            })
            .collect();
        ArchSpec {
            name: name.into(),
            modules,
            input_bytes: paper.input_bytes,
        }
    }

    /// Total forward FLOPs per sample.
    pub fn total_flops_fwd(&self) -> f64 {
        self.modules.iter().map(|m| m.flops_fwd).sum()
    }

    /// Total parameter bytes.
    pub fn total_param_bytes(&self) -> f64 {
        self.modules.iter().map(|m| m.param_bytes).sum()
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preserves_totals() {
        let spec = ArchSpec::scaled(
            "m",
            &[100, 300, 600],
            None,
            FlopsModel::ProportionalToParams,
            PaperScale::resnet56_cifar(),
        );
        let p = PaperScale::resnet56_cifar();
        assert!((spec.total_flops_fwd() - p.total_flops_fwd).abs() / p.total_flops_fwd < 1e-9);
        assert!((spec.total_param_bytes() - p.total_param_bytes).abs() / p.total_param_bytes < 1e-9);
    }

    #[test]
    fn per_block_uniform_decouples_flops_from_params() {
        // Back-heavy params but uniform blocks: FLOPs stay uniform.
        let spec = ArchSpec::scaled(
            "m",
            &[100, 1000],
            Some(&[5, 5]),
            FlopsModel::PerBlockUniform,
            PaperScale::resnet56_cifar(),
        );
        assert!((spec.modules[0].flops_fwd - spec.modules[1].flops_fwd).abs() < 1.0);
        assert!(spec.modules[1].param_bytes > spec.modules[0].param_bytes * 5.0);
    }

    #[test]
    fn activation_ratio_interpolates_front_to_back() {
        let spec = ArchSpec::scaled(
            "m",
            &[1, 1, 1],
            None,
            FlopsModel::ProportionalToParams,
            PaperScale::resnet50_imagenet(),
        );
        let front = spec.modules.first().unwrap().act_bytes / spec.input_bytes;
        let back = spec.modules.last().unwrap().act_bytes / spec.input_bytes;
        assert!((front - 5.3).abs() < 1e-6);
        assert!((back - 1.5).abs() < 1e-6);
    }

    #[test]
    fn paper_scales_are_plausible() {
        assert!(PaperScale::bert_base_squad().total_param_bytes
            > PaperScale::transformer_base_wmt().total_param_bytes);
        assert!(PaperScale::resnet50_imagenet().total_flops_fwd
            > PaperScale::resnet56_cifar().total_flops_fwd * 10.0);
    }
}
