//! NIC-queue simulation of gradient communication under different
//! scheduling policies (§2.2 / Figure 11 baselines).

/// The communication scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPolicy {
    /// Baseline frameworks: transfers issue in gradient-ready order (deep
    /// layers first, as backward proceeds back-to-front) and the next
    /// iteration starts after the full synchronization barrier.
    Vanilla,
    /// ByteScheduler-style priority scheduling: front modules are
    /// prioritized among ready transfers and the next iteration's forward
    /// pass starts as soon as each module's parameters have arrived,
    /// overlapping remaining communication with forward compute.
    ByteScheduler,
}

/// Outcome of simulating one iteration's communication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommOutcome {
    /// Time (relative to backward start) when the last transfer completes.
    pub comm_finish: f64,
    /// Effective iteration time: forward + backward + exposed
    /// communication (+ scheduling overhead).
    pub iteration_time: f64,
}

/// Simulates one data-parallel iteration's gradient communication.
///
/// `fwd` and `bwd` are per-module compute times in *forward order*;
/// `comm` are per-module all-reduce durations (0 for frozen modules);
/// `active_from` is the frozen-prefix length (modules before it have no
/// backward or communication). Returns the steady-state iteration time.
pub fn simulate_iteration(
    fwd: &[f64],
    bwd: &[f64],
    comm: &[f64],
    active_from: usize,
    policy: CommPolicy,
) -> CommOutcome {
    let n = fwd.len();
    assert_eq!(bwd.len(), n);
    assert_eq!(comm.len(), n);
    let t_fwd: f64 = fwd.iter().sum();
    // Backward runs deep→front over the active suffix; module i's gradient
    // becomes ready when its backward completes.
    let mut ready = vec![f64::INFINITY; n];
    let mut t = t_fwd;
    for i in (active_from..n).rev() {
        t += bwd[i];
        ready[i] = t;
    }
    let bwd_end = t;
    // Serve the NIC: one transfer at a time, picking among ready modules.
    let mut finish = vec![0.0f64; n];
    let mut pending: Vec<usize> = (active_from..n).filter(|&i| comm[i] > 0.0).collect();
    let mut clock = bwd_end.min(
        pending
            .iter()
            .map(|&i| ready[i])
            .fold(f64::INFINITY, f64::min),
    );
    let mut comm_finish = bwd_end;
    while !pending.is_empty() {
        // Transfers whose gradients are ready at the current clock.
        let available: Vec<usize> = pending.iter().copied().filter(|&i| ready[i] <= clock).collect();
        let next = if available.is_empty() {
            // Jump to the earliest upcoming readiness.
            clock = pending.iter().map(|&i| ready[i]).fold(f64::INFINITY, f64::min);
            continue;
        } else {
            match policy {
                // Ready order == arrival order; deepest became ready first.
                CommPolicy::Vanilla => *available
                    .iter()
                    .max_by(|&&a, &&b| {
                        ready[b].partial_cmp(&ready[a]).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty"),
                // Front module first.
                CommPolicy::ByteScheduler => *available.iter().min().expect("non-empty"),
            }
        };
        pending.retain(|&i| i != next);
        clock = clock.max(ready[next]) + comm[next];
        finish[next] = clock;
        comm_finish = comm_finish.max(clock);
    }
    let iteration_time = match policy {
        CommPolicy::Vanilla => {
            // Barrier: next forward starts only when all communication is
            // done.
            t_fwd + (bwd_end - t_fwd) + (comm_finish - bwd_end).max(0.0)
        }
        CommPolicy::ByteScheduler => {
            // Next iteration's forward proceeds module by module, gated on
            // each module's parameter arrival.
            let mut fp = bwd_end;
            for i in 0..n {
                let gate = if comm[i] > 0.0 { finish[i] } else { 0.0 };
                fp = fp.max(gate) + fwd[i];
            }
            // Steady-state iteration length: next-forward end minus this
            // iteration's forward end, plus this forward. A small constant
            // overhead reflects ByteScheduler's credit-based engine (§6.3
            // observes a slight drop when communication is not the
            // bottleneck).
            let base = (fp - t_fwd - (bwd_end - t_fwd)).max(t_fwd) + (bwd_end - t_fwd);
            base * 1.01
        }
    };
    CommOutcome {
        comm_finish,
        iteration_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_comm_means_compute_bound() {
        let fwd = [1.0, 1.0, 1.0];
        let bwd = [2.0, 2.0, 2.0];
        let comm = [0.0, 0.0, 0.0];
        let o = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::Vanilla);
        assert!((o.iteration_time - 9.0).abs() < 1e-9);
    }

    #[test]
    fn comm_overlaps_with_backward() {
        // Deep module's comm runs while front modules still backprop.
        let fwd = [1.0, 1.0, 1.0];
        let bwd = [2.0, 2.0, 2.0];
        let comm = [0.5, 0.5, 0.5];
        let o = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::Vanilla);
        // Deep comms overlap fully; only the front module's 0.5 is exposed.
        assert!(o.iteration_time < 9.0 + 3.0 * 0.5);
        assert!(o.iteration_time >= 9.0);
    }

    #[test]
    fn bytescheduler_beats_vanilla_when_comm_heavy() {
        let fwd = [1.0, 1.0, 1.0, 1.0];
        let bwd = [2.0, 2.0, 2.0, 2.0];
        let comm = [3.0, 3.0, 3.0, 3.0];
        let v = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::Vanilla);
        let b = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::ByteScheduler);
        assert!(
            b.iteration_time < v.iteration_time,
            "BS {} vs vanilla {}",
            b.iteration_time,
            v.iteration_time
        );
    }

    #[test]
    fn bytescheduler_slightly_slower_when_compute_bound() {
        // §6.3: "A slight throughput drop when communication is not the
        // bottleneck is normal for ByteScheduler".
        let fwd = [1.0, 1.0];
        let bwd = [2.0, 2.0];
        let comm = [0.01, 0.01];
        let v = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::Vanilla);
        let b = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::ByteScheduler);
        assert!(b.iteration_time >= v.iteration_time);
        assert!(b.iteration_time < v.iteration_time * 1.05);
    }

    #[test]
    fn freezing_removes_backward_and_comm() {
        let fwd = [1.0, 1.0, 1.0];
        let bwd = [2.0, 2.0, 2.0];
        let comm = [1.0, 1.0, 1.0];
        let full = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::Vanilla);
        let frozen = simulate_iteration(&fwd, &bwd, &comm, 2, CommPolicy::Vanilla);
        assert!(frozen.iteration_time < full.iteration_time);
        // Frozen variant: fwd 3 + bwd 2 + exposed comm.
        assert!(frozen.iteration_time >= 5.0);
    }

    #[test]
    fn vanilla_serves_deepest_ready_first() {
        // Two modules ready simultaneously: vanilla picks the deeper one,
        // so the front module's (last-needed-first-ready) transfer is the
        // exposed tail.
        let fwd = [0.0, 0.0];
        let bwd = [0.0, 0.0];
        let comm = [1.0, 2.0];
        let o = simulate_iteration(&fwd, &bwd, &comm, 0, CommPolicy::Vanilla);
        assert!((o.comm_finish - 3.0).abs() < 1e-9);
    }
}
