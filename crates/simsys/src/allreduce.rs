//! Ring all-reduce cost model.

use crate::device::NetworkProfile;

/// Time to ring-all-reduce `bytes` across `workers` peers.
///
/// The standard ring moves `2·(n−1)/n · bytes` per worker over its link,
/// in `2·(n−1)` latency-bound steps.
pub fn ring_allreduce_time(bytes: f64, workers: usize, net: NetworkProfile) -> f64 {
    if workers <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let n = workers as f64;
    2.0 * (n - 1.0) / n * bytes / net.bandwidth_bps + 2.0 * (n - 1.0) * net.latency_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FABRIC_40G;

    #[test]
    fn single_worker_costs_nothing() {
        assert_eq!(ring_allreduce_time(1e9, 1, FABRIC_40G), 0.0);
        assert_eq!(ring_allreduce_time(0.0, 8, FABRIC_40G), 0.0);
    }

    #[test]
    fn bandwidth_term_saturates_with_workers() {
        // 2(n−1)/n → 2: doubling workers beyond a few barely changes the
        // bandwidth term.
        let t4 = ring_allreduce_time(1e9, 4, FABRIC_40G);
        let t16 = ring_allreduce_time(1e9, 16, FABRIC_40G);
        assert!(t16 < t4 * 1.5);
        assert!(t16 > t4, "latency term still grows");
    }

    #[test]
    fn scales_linearly_in_bytes() {
        let t1 = ring_allreduce_time(1e8, 4, FABRIC_40G);
        let t2 = ring_allreduce_time(2e8, 4, FABRIC_40G);
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn matches_hand_computation() {
        // 100 MB over 4 workers at 5 GB/s: 2*(3/4)*1e8/5e9 = 30 ms + 6*10 µs.
        let net = NetworkProfile {
            bandwidth_bps: 5e9,
            latency_s: 10e-6,
        };
        let t = ring_allreduce_time(1e8, 4, net);
        assert!((t - (0.03 + 6e-5)).abs() < 1e-9);
    }
}
