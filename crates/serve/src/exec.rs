//! Request coalescing: merge compatible probe batches into one forward,
//! split the activation back per request.
//!
//! The determinism contract (DESIGN.md §5b/§5e) requires the coalesced
//! path to be **bit-identical** to executing each request alone. That
//! holds because `capture_activation` runs the model in eval mode, where
//! every row of the batch is computed independently (no batch-norm batch
//! statistics, no cross-sample reductions) and the tensor kernels
//! partition work by fixed geometry. This module additionally guarantees
//! the contract *by construction*: any group that cannot be merged or
//! whose output cannot be split cleanly degrades to per-request singleton
//! forwards instead of erroring the whole group.
//!
//! Only image batches coalesce (one `Tensor::concat` along the batch
//! axis). Token and seq2seq inputs are ragged; the engine keys them so
//! they never group, and this module executes them singleton.

use crate::error::ServeResult;
use egeria_models::model::Model;
use egeria_models::{Batch, Input, Targets};
use egeria_tensor::Tensor;

/// Concatenates probe batches along the sample axis. Returns `None` when
/// the parts are not mergeable (non-image inputs, mixed target kinds, or
/// tensor-shape mismatch) — the caller then falls back to singleton
/// execution.
pub fn merge_batches(parts: &[&Batch]) -> Option<Batch> {
    if parts.len() < 2 {
        return None;
    }
    let images: Vec<&Tensor> = parts
        .iter()
        .map(|b| match &b.input {
            Input::Image(t) => Some(t),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    let input = Input::Image(Tensor::concat(&images, 0).ok()?);

    let targets = match parts[0].targets {
        Targets::Classes(_) => {
            let mut all = Vec::new();
            for b in parts {
                match &b.targets {
                    Targets::Classes(c) => all.extend_from_slice(c),
                    _ => return None,
                }
            }
            Targets::Classes(all)
        }
        Targets::Pixels(_) => {
            let mut all = Vec::new();
            for b in parts {
                match &b.targets {
                    Targets::Pixels(p) => all.extend_from_slice(p),
                    _ => return None,
                }
            }
            Targets::Pixels(all)
        }
        // Ragged target kinds never merge.
        Targets::TokenTargets(_) | Targets::Spans(_) => return None,
    };

    let sample_ids = parts.iter().flat_map(|b| b.sample_ids.iter().copied()).collect();
    Some(Batch { input, targets, sample_ids })
}

/// Splits a coalesced activation back into per-request tensors by row
/// counts. Returns `None` if the activation's leading axis does not match
/// the requested partition (the caller falls back to singletons).
pub fn split_activation(activation: &Tensor, sizes: &[usize]) -> Option<Vec<Tensor>> {
    let total: usize = sizes.iter().sum();
    if activation.rank() == 0 || activation.shape().dims()[0] != total {
        return None;
    }
    let mut out = Vec::with_capacity(sizes.len());
    let mut start = 0;
    for &len in sizes {
        out.push(activation.narrow(0, start, len).ok()?);
        start += len;
    }
    Some(out)
}

/// Runs one coalesced group: merge → single forward → split, falling back
/// to per-request singleton forwards whenever merge or split is not
/// possible. Returns one activation per input batch, in order.
///
/// `merged_out` reports whether the group actually executed as one
/// forward (for the `serve.batches_coalesced` counter / span arg).
pub fn execute_group(
    model: &mut dyn Model,
    module: usize,
    parts: &[&Batch],
    merged_out: &mut bool,
) -> ServeResult<Vec<Tensor>> {
    *merged_out = false;
    if let Some(merged) = merge_batches(parts) {
        let activation = model.capture_activation(&merged, module)?;
        let sizes: Vec<usize> = parts.iter().map(|b| b.sample_ids.len()).collect();
        if let Some(split) = split_activation(&activation, &sizes) {
            *merged_out = true;
            return Ok(split);
        }
    }
    // Singleton fallback: bit-identity holds trivially.
    let mut out = Vec::with_capacity(parts.len());
    for b in parts {
        out.push(model.capture_activation(b, module)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_tensor::Rng;

    fn model() -> impl Model {
        resnet_cifar(
            ResNetCifarConfig { n: 2, width: 4, classes: 4, ..Default::default() },
            99,
        )
    }

    fn image_batch(seed: u64, n: usize) -> Batch {
        let mut rng = Rng::new(seed);
        Batch {
            input: Input::Image(Tensor::randn(&[n, 3, 8, 8], &mut rng)),
            targets: Targets::Classes((0..n).map(|i| i % 4).collect()),
            sample_ids: (0..n as u64).map(|i| seed * 100 + i).collect(),
        }
    }

    fn token_batch(n: usize) -> Batch {
        Batch {
            input: Input::Tokens((0..n).map(|i| vec![i, i + 1, i + 2]).collect()),
            targets: Targets::Spans((0..n).map(|_| (0, 1)).collect()),
            sample_ids: (0..n as u64).collect(),
        }
    }

    #[test]
    fn merge_concatenates_images_targets_and_ids() {
        let a = image_batch(1, 2);
        let b = image_batch(2, 3);
        let merged = merge_batches(&[&a, &b]).expect("image batches merge");
        match &merged.input {
            Input::Image(t) => assert_eq!(t.shape().dims()[0], 5),
            other => panic!("expected image input, got {other:?}"),
        }
        match &merged.targets {
            Targets::Classes(c) => assert_eq!(c.len(), 5),
            other => panic!("expected class targets, got {other:?}"),
        }
        assert_eq!(merged.sample_ids.len(), 5);
        assert_eq!(merged.sample_ids[0], 100);
        assert_eq!(merged.sample_ids[2], 200);
    }

    #[test]
    fn ragged_inputs_do_not_merge() {
        let a = token_batch(2);
        let b = token_batch(2);
        assert!(merge_batches(&[&a, &b]).is_none());
        // Mixed input kinds don't merge either.
        let img = image_batch(1, 2);
        assert!(merge_batches(&[&img, &a]).is_none());
    }

    #[test]
    fn split_rejects_mismatched_row_counts() {
        let mut rng = Rng::new(3);
        let t = Tensor::randn(&[5, 4], &mut rng);
        assert!(split_activation(&t, &[2, 2]).is_none());
        let parts = split_activation(&t, &[2, 3]).unwrap();
        assert_eq!(parts[0].shape().dims(), &[2, 4]);
        assert_eq!(parts[1].shape().dims(), &[3, 4]);
    }

    #[test]
    fn coalesced_execution_is_bit_identical_to_singleton() {
        let parts = [image_batch(1, 1), image_batch(2, 2), image_batch(3, 2)];
        let refs: Vec<&Batch> = parts.iter().collect();
        for module in 0..3 {
            let mut merged = false;
            let mut m = model();
            let grouped = execute_group(&mut m, module, &refs, &mut merged).unwrap();
            assert!(merged, "image group should coalesce");
            let mut m2 = model();
            for (part, got) in refs.iter().zip(&grouped) {
                let want = m2.capture_activation(part, module).unwrap();
                assert_eq!(got.shape(), want.shape());
                assert_eq!(got.data(), want.data(), "module {module} not bit-identical");
            }
        }
    }

    #[test]
    fn unmergeable_group_degrades_to_singletons() {
        // Different spatial dims: concat fails, so the group must fall
        // back to singleton forwards and still succeed.
        let mut rng = Rng::new(9);
        let a = image_batch(1, 2);
        let b = Batch {
            input: Input::Image(Tensor::randn(&[1, 3, 16, 16], &mut rng)),
            targets: Targets::Classes(vec![0]),
            sample_ids: vec![7],
        };
        let refs = [&a, &b];
        let mut merged = false;
        let mut m = model();
        let out = execute_group(&mut m, 0, &refs, &mut merged).unwrap();
        assert!(!merged);
        assert_eq!(out.len(), 2);
    }
}
