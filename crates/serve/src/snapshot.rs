//! Immutable, versioned model snapshots and the registry that publishes
//! them.
//!
//! The trainer publishes a new snapshot whenever the reference model is
//! regenerated (`EgeriaConfig::reference_update_every`); the registry
//! assigns a monotonically increasing version and swaps the shared
//! `Arc<ModelSnapshot>` atomically, so concurrently admitted requests
//! either see the old snapshot or the new one — never a half-published
//! model. In-flight requests pin the `Arc` they were admitted under and
//! keep executing against that version even across a publish.
//!
//! A snapshot's parameters are never mutated after publish. Because
//! `Model::capture_activation` takes `&mut self` (models keep scratch
//! buffers), execution goes through [`ModelSnapshot::clone_executor`]:
//! workers clone the model once per (worker, version) and reuse the clone,
//! leaving the published master untouched.

use crate::clock::Clock;
use crate::error::{ServeError, ServeResult};
use egeria_models::model::Model;
use egeria_quant::model::{quantize_reference, Precision};
use std::sync::{Arc, Mutex};

/// One published, immutable version of the reference model.
pub struct ModelSnapshot {
    version: u64,
    precision: Precision,
    published_at_us: u64,
    // The master copy. Only locked briefly to clone an executor; capture
    // runs on the clones, never on the master.
    master: Mutex<Box<dyn Model>>,
}

impl ModelSnapshot {
    /// The registry-assigned version (1-based, monotonically increasing).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The numeric precision the snapshot was quantized to.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// When the snapshot was published (µs on the engine clock).
    pub fn published_at_us(&self) -> u64 {
        self.published_at_us
    }

    /// Clones the master into a private executor a worker may mutate
    /// (scratch state) without affecting the published snapshot.
    pub fn clone_executor(&self) -> Box<dyn Model> {
        self.master
            .lock()
            .expect("snapshot master poisoned")
            .clone_boxed()
    }
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("version", &self.version)
            .field("precision", &self.precision)
            .field("published_at_us", &self.published_at_us)
            .finish()
    }
}

/// The publish/subscribe point between the trainer and the serve engine.
///
/// `latest()` is wait-free for practical purposes (one short mutex-guarded
/// `Arc` clone); `publish` quantizes outside the lock and swaps inside it.
pub struct SnapshotRegistry {
    current: Mutex<Option<Arc<ModelSnapshot>>>,
    next_version: Mutex<u64>,
}

impl SnapshotRegistry {
    /// An empty registry: requests admitted now fail with
    /// [`ServeError::NoSnapshot`].
    pub fn new() -> Self {
        SnapshotRegistry {
            current: Mutex::new(None),
            next_version: Mutex::new(1),
        }
    }

    /// Quantizes `model` to `precision` and publishes it as the next
    /// version. Returns the assigned version.
    pub fn publish(
        &self,
        model: &dyn Model,
        precision: Precision,
        clock: &dyn Clock,
    ) -> ServeResult<u64> {
        let quantized = quantize_reference(model, precision).map_err(ServeError::Model)?;
        Ok(self.publish_prequantized(quantized, precision, clock))
    }

    /// Publishes a model that is already at its serving precision (e.g.
    /// the trainer's freshly generated reference copy). Returns the
    /// assigned version.
    pub fn publish_prequantized(
        &self,
        model: Box<dyn Model>,
        precision: Precision,
        clock: &dyn Clock,
    ) -> u64 {
        let version = {
            let mut next = self.next_version.lock().expect("registry poisoned");
            let v = *next;
            *next += 1;
            v
        };
        let snapshot = Arc::new(ModelSnapshot {
            version,
            precision,
            published_at_us: clock.now_us(),
            master: Mutex::new(model),
        });
        *self.current.lock().expect("registry poisoned") = Some(snapshot);
        version
    }

    /// The latest published snapshot, if any. The caller holds the `Arc`
    /// and is isolated from later publishes.
    pub fn latest(&self) -> Option<Arc<ModelSnapshot>> {
        self.current.lock().expect("registry poisoned").clone()
    }

    /// The latest published version, or 0 if nothing was published yet.
    pub fn version(&self) -> u64 {
        self.latest().map(|s| s.version()).unwrap_or(0)
    }
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};

    fn model() -> Box<dyn Model> {
        Box::new(resnet_cifar(
            ResNetCifarConfig { n: 2, width: 4, classes: 4, ..Default::default() },
            99,
        ))
    }

    #[test]
    fn empty_registry_has_no_snapshot() {
        let r = SnapshotRegistry::new();
        assert!(r.latest().is_none());
        assert_eq!(r.version(), 0);
    }

    #[test]
    fn publish_assigns_monotonic_versions() {
        let clock = VirtualClock::new();
        let r = SnapshotRegistry::new();
        let m = model();
        let v1 = r.publish(m.as_ref(), Precision::F32, &clock).unwrap();
        clock.advance_us(10);
        let v2 = r.publish(m.as_ref(), Precision::Int8, &clock).unwrap();
        assert_eq!((v1, v2), (1, 2));
        let latest = r.latest().unwrap();
        assert_eq!(latest.version(), 2);
        assert_eq!(latest.precision(), Precision::Int8);
        assert_eq!(latest.published_at_us(), 10);
    }

    #[test]
    fn inflight_arc_survives_a_publish() {
        let clock = VirtualClock::new();
        let r = SnapshotRegistry::new();
        let m = model();
        r.publish(m.as_ref(), Precision::F32, &clock).unwrap();
        let pinned = r.latest().unwrap();
        r.publish(m.as_ref(), Precision::F32, &clock).unwrap();
        // The pinned snapshot still answers with its own version and can
        // still hand out executors.
        assert_eq!(pinned.version(), 1);
        let _executor = pinned.clone_executor();
        assert_eq!(r.version(), 2);
    }
}
