//! The [`ServeEngine`]: admission control, dispatch, and the
//! forward-execution worker pool.
//!
//! Topology (one engine):
//!
//! ```text
//!  submit() ──try_send──▶ bounded submission queue ──▶ dispatcher thread
//!      │ (Full ⇒ Overloaded shed)                        │ drives BatcherCore
//!      ▼                                                 ▼
//!  ProbeTicket ◀──reply channel── worker pool ◀── bounded work queue
//! ```
//!
//! - Admission is non-blocking: a full submission queue sheds the request
//!   with [`ServeError::Overloaded`] instead of stalling the trainer.
//! - The dispatcher owns the [`BatcherCore`] and turns its policy
//!   decisions (flush-on-full / flush-on-deadline / shed-on-overflow)
//!   into work items. All policy time comes from the engine's [`Clock`].
//! - Workers clone a private executor per snapshot version (models carry
//!   scratch state, so the published master is never mutated) and run
//!   each group through [`exec::execute_group`], which is bit-identical
//!   to singleton execution by construction.
//! - Expired deadlines are failed with [`ServeError::DeadlineExceeded`]
//!   *before* execution, so a late probe never burns a forward.
//! - Dropping the engine resolves every still-pending ticket with
//!   [`ServeError::Shutdown`] and joins its threads with a bounded wait.
//!
//! Every executed group emits one `serve_batch` span (module, snapshot
//! version, request count, coalesced rows, queue wait) plus `serve.*`
//! counters/histograms; `trace_report` renders these in its serving
//! section.

use crate::batcher::{BatcherCore, Push, ReadyBatch};
use crate::clock::Clock;
use crate::error::{ServeError, ServeResult};
use crate::exec;
use crate::snapshot::{ModelSnapshot, SnapshotRegistry};
use crate::ServeConfig;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use egeria_models::model::Model;
use egeria_models::{Batch, Input};
use egeria_obs::telemetry::Telemetry;
use egeria_quant::model::Precision;
use egeria_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One plasticity-probe inference request.
pub struct ProbeRequest {
    /// The input batch to run forward (eval mode).
    pub batch: Batch,
    /// Which module boundary's activation to capture.
    pub module: usize,
    /// Optional per-request deadline, measured from admission; expired
    /// requests fail with [`ServeError::DeadlineExceeded`] without
    /// executing. `None` falls back to the engine's default deadline.
    pub deadline: Option<Duration>,
}

/// A completed probe.
#[derive(Debug)]
pub struct ProbeResponse {
    /// The captured activation for this request's rows only.
    pub activation: Tensor,
    /// Snapshot version the probe executed against.
    pub snapshot_version: u64,
    /// Precision of that snapshot.
    pub precision: Precision,
    /// How many requests were coalesced into the executed batch.
    pub batch_size: usize,
    /// Time spent between admission and execution start (µs).
    pub queue_wait_us: u64,
    /// Execution time of the (possibly coalesced) forward (µs).
    pub exec_us: u64,
}

/// A handle to a submitted probe; resolves exactly once.
pub struct ProbeTicket {
    rx: Receiver<ServeResult<ProbeResponse>>,
}

impl ProbeTicket {
    /// Blocks until the probe resolves. A torn-down engine resolves as
    /// [`ServeError::Shutdown`].
    pub fn wait(self) -> ServeResult<ProbeResponse> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Shutdown),
        }
    }
}

/// Coalescing key: requests group only when batched execution is exactly
/// equivalent to singleton execution *and* mergeable (same snapshot
/// version, same module, same per-sample image geometry, same target
/// kind). Ragged inputs get a unique key so they never group.
#[derive(Clone, PartialEq)]
enum GroupKey {
    Image {
        version: u64,
        module: usize,
        sample_dims: Vec<usize>,
        target_kind: u8,
    },
    Singleton(u64),
}

struct PendingProbe {
    batch: Batch,
    module: usize,
    snapshot: Arc<ModelSnapshot>,
    submitted_us: u64,
    deadline_us: Option<u64>,
    reply: Sender<ServeResult<ProbeResponse>>,
}

enum Msg {
    // Boxed so the channel slots (and `Flush`) don't carry the full
    // probe payload inline.
    Probe(GroupKey, Box<PendingProbe>),
    Flush,
}

/// The serving engine. See the module docs for the topology.
pub struct ServeEngine {
    registry: Arc<SnapshotRegistry>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    default_deadline: Option<Duration>,
    submit_tx: Option<Sender<Msg>>,
    queued: Arc<AtomicUsize>,
    singleton_seq: AtomicU64,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Builds an engine with its dispatcher and worker threads running.
    /// The engine starts with an empty [`SnapshotRegistry`]; probes fail
    /// with [`ServeError::NoSnapshot`] until a model is published.
    pub fn new(cfg: ServeConfig, clock: Arc<dyn Clock>, telemetry: Telemetry) -> Self {
        let registry = Arc::new(SnapshotRegistry::new());
        let (submit_tx, submit_rx) = bounded::<Msg>(cfg.queue_depth.max(1));
        let workers_n = cfg.workers.max(1);
        let (work_tx, work_rx) = bounded::<ReadyBatch<GroupKey, PendingProbe>>(workers_n * 2);
        let queued = Arc::new(AtomicUsize::new(0));

        let dispatcher = {
            let clock = Arc::clone(&clock);
            let telemetry = telemetry.clone();
            let queued = Arc::clone(&queued);
            let max_batch = cfg.max_batch.max(1);
            let max_wait_us = cfg.max_wait.as_micros() as u64;
            let pending_budget = cfg.queue_depth.max(1) * 2;
            std::thread::Builder::new()
                .name("egeria-serve-dispatch".into())
                .spawn(move || {
                    dispatcher_loop(
                        submit_rx,
                        work_tx,
                        clock,
                        telemetry,
                        queued,
                        max_batch,
                        max_wait_us,
                        pending_budget,
                    )
                })
                .expect("spawn serve dispatcher")
        };

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let work_rx = work_rx.clone();
            let clock = Arc::clone(&clock);
            let telemetry = telemetry.clone();
            let h = std::thread::Builder::new()
                .name(format!("egeria-serve-worker-{i}"))
                .spawn(move || worker_loop(work_rx, clock, telemetry))
                .expect("spawn serve worker");
            workers.push(h);
        }

        ServeEngine {
            registry,
            clock,
            telemetry,
            default_deadline: cfg.default_deadline,
            submit_tx: Some(submit_tx),
            queued,
            singleton_seq: AtomicU64::new(0),
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// The snapshot registry this engine serves from (shared with the
    /// trainer, which publishes into it).
    pub fn registry(&self) -> Arc<SnapshotRegistry> {
        Arc::clone(&self.registry)
    }

    /// Quantizes and publishes `model` as the next snapshot version.
    pub fn publish(&self, model: &dyn Model, precision: Precision) -> ServeResult<u64> {
        let v = self.registry.publish(model, precision, self.clock.as_ref())?;
        self.telemetry.counter("serve.snapshots_published").inc();
        Ok(v)
    }

    /// Publishes a model already at serving precision.
    pub fn publish_prequantized(&self, model: Box<dyn Model>, precision: Precision) -> u64 {
        let v = self
            .registry
            .publish_prequantized(model, precision, self.clock.as_ref());
        self.telemetry.counter("serve.snapshots_published").inc();
        v
    }

    /// Admits a probe. Non-blocking: a full submission queue sheds with
    /// [`ServeError::Overloaded`]; no published snapshot fails with
    /// [`ServeError::NoSnapshot`].
    pub fn submit(&self, req: ProbeRequest) -> ServeResult<ProbeTicket> {
        let tx = self.submit_tx.as_ref().ok_or(ServeError::Shutdown)?;
        let snapshot = self.registry.latest().ok_or(ServeError::NoSnapshot)?;
        let now = self.clock.now_us();
        let deadline = req.deadline.or(self.default_deadline);
        let deadline_us = deadline.map(|d| now + d.as_micros() as u64);
        let key = self.group_key(&req, snapshot.version());
        let (reply_tx, reply_rx) = bounded(1);
        let probe = PendingProbe {
            batch: req.batch,
            module: req.module,
            snapshot,
            submitted_us: now,
            deadline_us,
            reply: reply_tx,
        };
        self.telemetry.counter("serve.requests").inc();
        // Count before sending: the dispatcher decrements on receipt, so
        // incrementing after a successful send could race below zero.
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(Msg::Probe(key, Box::new(probe))) {
            Ok(()) => {
                self.telemetry.gauge("serve.queue_depth").set(depth as f64);
                Ok(ProbeTicket { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.telemetry.counter("serve.shed").inc();
                Err(ServeError::Overloaded {
                    queue_depth: self.queued.load(Ordering::Relaxed),
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                Err(ServeError::Shutdown)
            }
        }
    }

    /// Asks the dispatcher to flush every pending group now, regardless
    /// of batch size or deadline. Blocks for queue space if the
    /// submission queue is momentarily full: a dropped flush would leave
    /// already-admitted probes waiting out their full `max_wait`, which
    /// under a stalled virtual clock (or an hour-scale `max_wait`) is
    /// forever. The dispatcher always drains, so the wait is bounded.
    pub fn flush(&self) {
        if let Some(tx) = &self.submit_tx {
            let _ = tx.send(Msg::Flush);
        }
    }

    /// Submits, flushes, and waits: the synchronous path the reference
    /// manager uses for its own probes.
    pub fn probe_blocking(&self, batch: &Batch, module: usize) -> ServeResult<ProbeResponse> {
        let ticket = self.submit(ProbeRequest {
            batch: batch.clone(),
            module,
            deadline: None,
        })?;
        self.flush();
        ticket.wait()
    }

    fn group_key(&self, req: &ProbeRequest, version: u64) -> GroupKey {
        match &req.batch.input {
            Input::Image(t) if t.rank() >= 1 => GroupKey::Image {
                version,
                module: req.module,
                sample_dims: t.shape().dims()[1..].to_vec(),
                target_kind: target_kind(&req.batch),
            },
            _ => GroupKey::Singleton(self.singleton_seq.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

impl Drop for ServeEngine {
    /// Bounded shutdown: pending tickets resolve with
    /// [`ServeError::Shutdown`], dispatched work drains, and threads are
    /// joined with a bounded wait (detach rather than hang the trainer).
    fn drop(&mut self) {
        // Disconnect the submission queue; the dispatcher drains it, fails
        // still-pending probes with Shutdown, and closes the work queue.
        self.submit_tx = None;
        let mut handles: Vec<JoinHandle<()>> = self.dispatcher.take().into_iter().collect();
        handles.append(&mut self.workers);
        for h in handles {
            // ~1.5 s bound per thread without reading the wall clock.
            let mut spins = 0u32;
            while !h.is_finished() && spins < 300 {
                std::thread::sleep(Duration::from_millis(5));
                spins += 1;
            }
            if h.is_finished() {
                let _ = h.join();
            } else {
                eprintln!("egeria-serve: thread unresponsive at shutdown; detaching");
            }
        }
    }
}

fn target_kind(batch: &Batch) -> u8 {
    match &batch.targets {
        egeria_models::Targets::Classes(_) => 0,
        egeria_models::Targets::Pixels(_) => 1,
        egeria_models::Targets::TokenTargets(_) => 2,
        egeria_models::Targets::Spans(_) => 3,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatcher_loop(
    submit_rx: Receiver<Msg>,
    work_tx: Sender<ReadyBatch<GroupKey, PendingProbe>>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    queued: Arc<AtomicUsize>,
    max_batch: usize,
    max_wait_us: u64,
    pending_budget: usize,
) {
    let mut batcher: BatcherCore<GroupKey, PendingProbe> =
        BatcherCore::new(max_batch, max_wait_us, pending_budget);
    let shed = telemetry.counter("serve.shed");
    let depth_gauge = telemetry.gauge("serve.queue_depth");
    let dispatch = |rb: ReadyBatch<GroupKey, PendingProbe>| {
        // Blocking send: backpressure onto the batcher, never unbounded.
        if let Err(e) = work_tx.send(rb) {
            for p in e.0.requests {
                let _ = p.reply.send(Err(ServeError::Shutdown));
            }
        }
    };
    loop {
        let msg = match batcher.next_flush_us() {
            None => match submit_rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
            Some(due) => {
                let now = clock.now_us();
                if now >= due {
                    None
                } else {
                    // The timeout is a wakeup hint; the flush decision
                    // below is made on the engine clock, so a virtual
                    // clock stays authoritative. Capped so a stalled
                    // virtual clock re-checks promptly.
                    let wait = (due - now).min(5_000);
                    match submit_rx.recv_timeout(Duration::from_micros(wait)) {
                        Ok(m) => Some(m),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };
        match msg {
            Some(Msg::Probe(key, probe)) => {
                queued.fetch_sub(1, Ordering::Relaxed);
                match batcher.push(key, *probe, clock.now_us()) {
                    Push::Queued => {}
                    Push::Ready(rb) => dispatch(rb),
                    Push::Shed(probe, pending) => {
                        shed.inc();
                        let _ = probe
                            .reply
                            .send(Err(ServeError::Overloaded { queue_depth: pending }));
                    }
                }
            }
            Some(Msg::Flush) => {
                for rb in batcher.flush_all() {
                    dispatch(rb);
                }
            }
            None => {}
        }
        for rb in batcher.poll(clock.now_us()) {
            dispatch(rb);
        }
        depth_gauge.set((queued.load(Ordering::Relaxed) + batcher.pending()) as f64);
    }
    // Shutdown: whatever is still pending never executes.
    for rb in batcher.flush_all() {
        for p in rb.requests {
            let _ = p.reply.send(Err(ServeError::Shutdown));
        }
    }
    // Dropping work_tx lets the workers drain and exit.
}

fn worker_loop(
    work_rx: Receiver<ReadyBatch<GroupKey, PendingProbe>>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
) {
    // Executor clones keyed by snapshot version; models carry scratch
    // state, so the published master is never run directly. Capped so a
    // publish-heavy trainer can't accumulate stale clones.
    let mut executors: BTreeMap<u64, Box<dyn Model>> = BTreeMap::new();
    let batches = telemetry.counter("serve.batches");
    let coalesced = telemetry.counter("serve.batches_coalesced");
    let responses = telemetry.counter("serve.responses");
    let errors = telemetry.counter("serve.errors");
    let missed = telemetry.counter("serve.deadline_missed");
    let batch_size_h = telemetry.histogram("serve.batch_size");
    let queue_wait_h = telemetry.histogram("serve.queue_wait_us");
    let exec_h = telemetry.histogram("serve.exec_us");

    while let Ok(rb) = work_rx.recv() {
        let now = clock.now_us();
        let mut live = Vec::with_capacity(rb.requests.len());
        for p in rb.requests {
            match p.deadline_us {
                Some(d) if now > d => {
                    missed.inc();
                    let _ = p.reply.send(Err(ServeError::DeadlineExceeded {
                        waited_us: now.saturating_sub(p.submitted_us),
                    }));
                }
                _ => live.push(p),
            }
        }
        let Some(first) = live.first() else { continue };
        let snapshot = Arc::clone(&first.snapshot);
        let version = snapshot.version();
        let module = first.module;
        let executor = executors
            .entry(version)
            .or_insert_with(|| snapshot.clone_executor());

        let parts: Vec<&Batch> = live.iter().map(|p| &p.batch).collect();
        let rows: usize = parts.iter().map(|b| b.sample_ids.len()).sum();
        let leader_wait = now.saturating_sub(rb.formed_at_us.min(now));
        let t0 = clock.now_us();
        let mut merged = false;
        let result = {
            let _span = telemetry
                .span("serve_batch")
                .module(module as u64)
                .arg("version", version)
                .arg("requests", live.len())
                .arg("rows", rows)
                .arg("queue_wait_us", leader_wait);
            exec::execute_group(executor.as_mut(), module, &parts, &mut merged)
        };
        let exec_us = clock.now_us().saturating_sub(t0);
        batches.inc();
        if merged {
            coalesced.inc();
        }
        batch_size_h.observe(live.len() as u64);
        exec_h.observe(exec_us);

        let request_count = live.len();
        match result {
            Ok(acts) => {
                for (p, act) in live.into_iter().zip(acts) {
                    let wait = t0.saturating_sub(p.submitted_us);
                    queue_wait_h.observe(wait);
                    responses.inc();
                    let _ = p.reply.send(Ok(ProbeResponse {
                        activation: act,
                        snapshot_version: version,
                        precision: snapshot.precision(),
                        batch_size: request_count,
                        queue_wait_us: wait,
                        exec_us,
                    }));
                }
            }
            Err(e) => {
                // A failed executor clone may be wedged; rebuild next use.
                executors.remove(&version);
                for p in live {
                    errors.inc();
                    let _ = p.reply.send(Err(e.clone()));
                }
            }
        }
        // Evict the oldest versions beyond the cache cap.
        while executors.len() > 2 {
            let oldest = *executors.keys().next().expect("non-empty");
            executors.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::RealClock;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::Targets;
    use egeria_tensor::Rng;

    fn model() -> impl Model {
        resnet_cifar(
            ResNetCifarConfig { n: 2, width: 4, classes: 4, ..Default::default() },
            99,
        )
    }

    fn image_batch(seed: u64, n: usize) -> Batch {
        let mut rng = Rng::new(seed);
        Batch {
            input: Input::Image(Tensor::randn(&[n, 3, 8, 8], &mut rng)),
            targets: Targets::Classes((0..n).map(|i| i % 4).collect()),
            sample_ids: (0..n as u64).map(|i| seed * 100 + i).collect(),
        }
    }

    fn engine(cfg: ServeConfig) -> ServeEngine {
        ServeEngine::new(cfg, RealClock::shared(), Telemetry::disabled())
    }

    #[test]
    fn probe_without_snapshot_fails_typed() {
        let e = engine(ServeConfig::default());
        let err = e.probe_blocking(&image_batch(1, 2), 0).unwrap_err();
        assert_eq!(err, ServeError::NoSnapshot);
    }

    #[test]
    fn probe_blocking_matches_inline_capture() {
        let e = engine(ServeConfig::default());
        let m = model();
        e.publish(&m, Precision::Int8).unwrap();
        let batch = image_batch(5, 3);
        let resp = e.probe_blocking(&batch, 1).unwrap();
        assert_eq!(resp.snapshot_version, 1);
        assert_eq!(resp.precision, Precision::Int8);
        let mut inline = egeria_quant::model::quantize_reference(&m, Precision::Int8).unwrap();
        let want = inline.capture_activation(&batch, 1).unwrap();
        assert_eq!(resp.activation.data(), want.data());
    }

    #[test]
    fn probes_execute_against_their_admission_snapshot() {
        let e = engine(ServeConfig { max_batch: 4, ..ServeConfig::default() });
        let m = model();
        e.publish(&m, Precision::F32).unwrap();
        let t = e
            .submit(ProbeRequest { batch: image_batch(2, 2), module: 0, deadline: None })
            .unwrap();
        // Publish a new version while the first probe is still queued.
        e.publish(&m, Precision::F32).unwrap();
        e.flush();
        assert_eq!(t.wait().unwrap().snapshot_version, 1);
        assert_eq!(e.probe_blocking(&image_batch(2, 2), 0).unwrap().snapshot_version, 2);
    }

    #[test]
    fn expired_deadline_fails_without_executing() {
        let e = engine(ServeConfig::default());
        e.publish(&model(), Precision::F32).unwrap();
        let t = e
            .submit(ProbeRequest {
                batch: image_batch(3, 1),
                module: 0,
                deadline: Some(Duration::from_micros(0)),
            })
            .unwrap();
        // Let real time pass so the zero deadline is unambiguously gone.
        std::thread::sleep(Duration::from_millis(2));
        e.flush();
        match t.wait().unwrap_err() {
            ServeError::DeadlineExceeded { .. } => {}
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
    }

    #[test]
    fn flush_on_full_coalesces_a_group() {
        let e = engine(ServeConfig {
            max_batch: 3,
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        e.publish(&model(), Precision::F32).unwrap();
        let tickets: Vec<ProbeTicket> = (0..3)
            .map(|i| {
                e.submit(ProbeRequest {
                    batch: image_batch(10 + i, 2),
                    module: 1,
                    deadline: None,
                })
                .unwrap()
            })
            .collect();
        // No flush() call: the third probe fills the group.
        for t in tickets {
            let r = t.wait().unwrap();
            assert_eq!(r.batch_size, 3, "group should have coalesced all three");
        }
    }

    #[test]
    fn drop_resolves_pending_tickets_with_shutdown() {
        let e = engine(ServeConfig {
            max_wait: Duration::from_secs(60),
            max_batch: 64,
            ..ServeConfig::default()
        });
        e.publish(&model(), Precision::F32).unwrap();
        let t = e
            .submit(ProbeRequest { batch: image_batch(4, 1), module: 0, deadline: None })
            .unwrap();
        drop(e);
        assert_eq!(t.wait().unwrap_err(), ServeError::Shutdown);
    }
}
