//! The [`ServeEngine`]: admission control, dispatch, and the
//! forward-execution worker pool.
//!
//! Topology (one engine):
//!
//! ```text
//!  submit() ──try_send──▶ bounded submission queue ──▶ dispatcher thread
//!      │ (Full ⇒ Overloaded shed)                        │ drives BatcherCore
//!      ▼                                                 ▼
//!  ProbeTicket ◀──reply channel── worker pool ◀── bounded work queue
//! ```
//!
//! - Admission is non-blocking: a full submission queue sheds the request
//!   with [`ServeError::Overloaded`] instead of stalling the trainer.
//! - The dispatcher owns the [`BatcherCore`] and turns its policy
//!   decisions (flush-on-full / flush-on-deadline / shed-on-overflow)
//!   into work items. All policy time comes from the engine's [`Clock`].
//! - Workers clone a private executor per snapshot version (models carry
//!   scratch state, so the published master is never mutated) and run
//!   each group through [`exec::execute_group`], which is bit-identical
//!   to singleton execution by construction.
//! - Expired deadlines are failed with [`ServeError::DeadlineExceeded`]
//!   *before* execution, so a late probe never burns a forward.
//! - Dropping the engine resolves every still-pending ticket with
//!   [`ServeError::Shutdown`] and joins its threads with a bounded wait.
//!
//! Every executed group emits one `serve_batch` span (module, snapshot
//! version, request count, coalesced rows, queue wait) plus `serve.*`
//! counters/histograms; `trace_report` renders these in its serving
//! section.

use crate::batcher::{BatcherCore, Push, ReadyBatch};
use crate::clock::Clock;
use crate::error::{ServeError, ServeResult};
use crate::exec;
use crate::snapshot::{ModelSnapshot, SnapshotRegistry};
use crate::ServeConfig;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use egeria_models::model::Model;
use egeria_models::{Batch, Input};
use egeria_obs::telemetry::Telemetry;
use egeria_quant::model::Precision;
use egeria_resil::fault::{FaultInjector, FaultSite};
use egeria_resil::health::HealthMonitor;
use egeria_resil::supervise::Watchdog;
use egeria_tensor::{Tensor, TensorError};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One plasticity-probe inference request.
pub struct ProbeRequest {
    /// The input batch to run forward (eval mode).
    pub batch: Batch,
    /// Which module boundary's activation to capture.
    pub module: usize,
    /// Optional per-request deadline, measured from admission; expired
    /// requests fail with [`ServeError::DeadlineExceeded`] without
    /// executing. `None` falls back to the engine's default deadline.
    pub deadline: Option<Duration>,
}

/// A completed probe.
#[derive(Debug)]
pub struct ProbeResponse {
    /// The captured activation for this request's rows only.
    pub activation: Tensor,
    /// Snapshot version the probe executed against.
    pub snapshot_version: u64,
    /// Precision of that snapshot.
    pub precision: Precision,
    /// How many requests were coalesced into the executed batch.
    pub batch_size: usize,
    /// Time spent between admission and execution start (µs).
    pub queue_wait_us: u64,
    /// Execution time of the (possibly coalesced) forward (µs).
    pub exec_us: u64,
}

/// A handle to a submitted probe; resolves exactly once.
pub struct ProbeTicket {
    rx: Receiver<ServeResult<ProbeResponse>>,
}

impl ProbeTicket {
    /// Blocks until the probe resolves. A torn-down engine resolves as
    /// [`ServeError::Shutdown`].
    pub fn wait(self) -> ServeResult<ProbeResponse> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Shutdown),
        }
    }
}

/// Coalescing key: requests group only when batched execution is exactly
/// equivalent to singleton execution *and* mergeable (same snapshot
/// version, same module, same per-sample image geometry, same target
/// kind). Ragged inputs get a unique key so they never group.
#[derive(Clone, PartialEq)]
enum GroupKey {
    Image {
        version: u64,
        module: usize,
        sample_dims: Vec<usize>,
        target_kind: u8,
    },
    Singleton(u64),
}

struct PendingProbe {
    batch: Batch,
    module: usize,
    snapshot: Arc<ModelSnapshot>,
    submitted_us: u64,
    deadline_us: Option<u64>,
    reply: Sender<ServeResult<ProbeResponse>>,
}

enum Msg {
    // Boxed so the channel slots (and `Flush`) don't carry the full
    // probe payload inline.
    Probe(GroupKey, Box<PendingProbe>),
    Flush,
}

/// Shared state a worker needs to replace itself when it dies. Bundled
/// behind an `Arc` so the panic guard running on the dying thread can
/// respawn (or declare exhaustion) without a reference to the engine.
struct WorkerCtx {
    work_rx: Receiver<ReadyBatch<GroupKey, PendingProbe>>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    faults: Option<Arc<FaultInjector>>,
    /// Respawn budget, shared by every worker death however detected.
    watchdog: Watchdog,
    /// Workers currently believed alive (spawned minus guard exits).
    live: AtomicUsize,
    /// Set once the last worker has died with the respawn budget spent.
    /// From then on nothing can ever drain the work queue, so the
    /// dispatcher fails groups instead of enqueueing them and `submit`
    /// sheds at admission.
    exhausted: AtomicBool,
    /// Serializes the dispatcher's queue pushes against the exhaustion
    /// drain: every enqueue happens gate-held after an `exhausted`
    /// check, and the drain sets the flag gate-held before draining, so
    /// no batch can slip into the queue behind the drain and strand its
    /// tickets.
    dispatch_gate: Mutex<()>,
    /// Join handles for every worker spawned so far (initial or
    /// respawned by a dying sibling). Finished entries are reaped by
    /// [`ServeEngine::supervise`].
    handles: Mutex<Vec<JoinHandle<()>>>,
    seq: AtomicUsize,
}

/// The panic guard locks these mutexes while its thread is unwinding,
/// which poisons a std mutex; the guarded state stays consistent (a
/// flag flip + channel drain, or a handle push), so poison is ignored.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Spawns one worker thread wired to `ctx` and registers its handle.
/// Increments `live` up front; the worker's guard decrements it on exit.
fn spawn_worker(ctx: &Arc<WorkerCtx>) -> std::io::Result<()> {
    let i = ctx.seq.fetch_add(1, Ordering::Relaxed);
    ctx.live.fetch_add(1, Ordering::SeqCst);
    let c = Arc::clone(ctx);
    match std::thread::Builder::new()
        .name(format!("egeria-serve-worker-{i}"))
        .spawn(move || {
            let guard = WorkerGuard { ctx: c };
            worker_loop(&guard.ctx);
        }) {
        Ok(h) => {
            lock_unpoisoned(&ctx.handles).push(h);
            Ok(())
        }
        Err(e) => {
            ctx.live.fetch_sub(1, Ordering::SeqCst);
            Err(e)
        }
    }
}

/// Runs on every worker exit. A normal exit (work queue disconnected at
/// shutdown) just drops the liveness count. A panic — an injected
/// [`FaultSite::PoolTaskPanic`] or a real defect outside the execution
/// catch region — self-heals from the dying thread itself: it respawns
/// a replacement under the watchdog budget, so batches already queued
/// behind the fatal one still execute. When the budget is spent and
/// this was the last worker, it instead fails every queued batch and
/// flags the engine exhausted. Tickets must always resolve: the
/// reference manager blocks on them and falls back inline only once
/// they fail, so a stranded batch would hang training forever.
struct WorkerGuard {
    ctx: Arc<WorkerCtx>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let ctx = &self.ctx;
        if !std::thread::panicking() {
            ctx.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        ctx.telemetry.counter("serve.worker_panics").inc();
        ctx.telemetry.counter("serve.worker_deaths").inc();
        // Heal before decrementing `live`, so a granted respawn never
        // exposes a transient zero to a sibling guard's exhaustion
        // check.
        if ctx.watchdog.request_respawn() && spawn_worker(ctx).is_ok() {
            ctx.telemetry.counter("serve.worker_respawns").inc();
            ctx.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let live = ctx.live.fetch_sub(1, Ordering::SeqCst) - 1;
        if live == 0 {
            let _g = lock_unpoisoned(&ctx.dispatch_gate);
            ctx.exhausted.store(true, Ordering::SeqCst);
            while let Ok(rb) = ctx.work_rx.try_recv() {
                for p in rb.requests {
                    let _ = p.reply.send(Err(ServeError::Shutdown));
                }
            }
        }
    }
}

/// The serving engine. See the module docs for the topology.
pub struct ServeEngine {
    registry: Arc<SnapshotRegistry>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    default_deadline: Option<Duration>,
    submit_tx: Option<Sender<Msg>>,
    queued: Arc<AtomicUsize>,
    singleton_seq: AtomicU64,
    dispatcher: Option<JoinHandle<()>>,
    worker_ctx: Arc<WorkerCtx>,
    faults: Option<Arc<FaultInjector>>,
}

impl ServeEngine {
    /// Builds an engine with its dispatcher and worker threads running.
    /// The engine starts with an empty [`SnapshotRegistry`]; probes fail
    /// with [`ServeError::NoSnapshot`] until a model is published.
    pub fn new(cfg: ServeConfig, clock: Arc<dyn Clock>, telemetry: Telemetry) -> Self {
        Self::with_faults(cfg, clock, telemetry, None, None)
    }

    /// [`new`](Self::new) plus resilience wiring: an optional fault
    /// injector (consulted at the [`FaultSite::ServeAdmission`],
    /// [`FaultSite::ServeExecute`], and [`FaultSite::PoolTaskPanic`]
    /// sites) and an optional health monitor fed by the worker watchdog.
    pub fn with_faults(
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        telemetry: Telemetry,
        faults: Option<Arc<FaultInjector>>,
        health: Option<Arc<HealthMonitor>>,
    ) -> Self {
        let registry = Arc::new(SnapshotRegistry::new());
        let (submit_tx, submit_rx) = bounded::<Msg>(cfg.queue_depth.max(1));
        let workers_n = cfg.workers.max(1);
        let (work_tx, work_rx) = bounded::<ReadyBatch<GroupKey, PendingProbe>>(workers_n * 2);
        let queued = Arc::new(AtomicUsize::new(0));

        let mut worker_watchdog =
            Watchdog::new("serve-worker", cfg.worker_respawn_budget, telemetry.clone());
        if let Some(h) = health {
            worker_watchdog =
                worker_watchdog.with_health(h, "serve-worker-respawn-budget-exhausted");
        }
        let worker_ctx = Arc::new(WorkerCtx {
            work_rx,
            clock: Arc::clone(&clock),
            telemetry: telemetry.clone(),
            faults: faults.clone(),
            watchdog: worker_watchdog,
            live: AtomicUsize::new(0),
            exhausted: AtomicBool::new(false),
            dispatch_gate: Mutex::new(()),
            handles: Mutex::new(Vec::with_capacity(workers_n)),
            seq: AtomicUsize::new(0),
        });
        for _ in 0..workers_n {
            spawn_worker(&worker_ctx).expect("spawn serve worker");
        }

        let dispatcher = {
            let clock = Arc::clone(&clock);
            let telemetry = telemetry.clone();
            let queued = Arc::clone(&queued);
            let ctx = Arc::clone(&worker_ctx);
            let max_batch = cfg.max_batch.max(1);
            let max_wait_us = cfg.max_wait.as_micros() as u64;
            let pending_budget = cfg.queue_depth.max(1) * 2;
            std::thread::Builder::new()
                .name("egeria-serve-dispatch".into())
                .spawn(move || {
                    dispatcher_loop(
                        submit_rx,
                        work_tx,
                        ctx,
                        clock,
                        telemetry,
                        queued,
                        max_batch,
                        max_wait_us,
                        pending_budget,
                    )
                })
                .expect("spawn serve dispatcher")
        };

        ServeEngine {
            registry,
            clock,
            telemetry,
            default_deadline: cfg.default_deadline,
            submit_tx: Some(submit_tx),
            queued,
            singleton_seq: AtomicU64::new(0),
            dispatcher: Some(dispatcher),
            worker_ctx,
            faults,
        }
    }

    /// The snapshot registry this engine serves from (shared with the
    /// trainer, which publishes into it).
    pub fn registry(&self) -> Arc<SnapshotRegistry> {
        Arc::clone(&self.registry)
    }

    /// Quantizes and publishes `model` as the next snapshot version.
    pub fn publish(&self, model: &dyn Model, precision: Precision) -> ServeResult<u64> {
        let v = self.registry.publish(model, precision, self.clock.as_ref())?;
        self.telemetry.counter("serve.snapshots_published").inc();
        Ok(v)
    }

    /// Publishes a model already at serving precision.
    pub fn publish_prequantized(&self, model: Box<dyn Model>, precision: Precision) -> u64 {
        let v = self
            .registry
            .publish_prequantized(model, precision, self.clock.as_ref());
        self.telemetry.counter("serve.snapshots_published").inc();
        v
    }

    /// Admits a probe. Non-blocking: a full submission queue sheds with
    /// [`ServeError::Overloaded`]; no published snapshot fails with
    /// [`ServeError::NoSnapshot`].
    pub fn submit(&self, req: ProbeRequest) -> ServeResult<ProbeTicket> {
        let tx = self.submit_tx.as_ref().ok_or(ServeError::Shutdown)?;
        // Workers exhausted (the last one died with the respawn budget
        // spent): nothing can ever execute a probe again, so shed at
        // admission rather than minting a ticket that can only resolve
        // Shutdown at dispatch.
        if self.worker_ctx.exhausted.load(Ordering::SeqCst) {
            return Err(ServeError::Shutdown);
        }
        let snapshot = self.registry.latest().ok_or(ServeError::NoSnapshot)?;
        let now = self.clock.now_us();
        let deadline = req.deadline.or(self.default_deadline);
        let deadline_us = deadline.map(|d| now + d.as_micros() as u64);
        let key = self.group_key(&req, snapshot.version());
        let (reply_tx, reply_rx) = bounded(1);
        let probe = PendingProbe {
            batch: req.batch,
            module: req.module,
            snapshot,
            submitted_us: now,
            deadline_us,
            reply: reply_tx,
        };
        self.telemetry.counter("serve.requests").inc();
        // Injected admission failure: behaves exactly like a full queue
        // (counted as a shed, typed as Overloaded) so callers exercise
        // their real fallback path.
        if let Some(f) = &self.faults {
            if f.should_fail(FaultSite::ServeAdmission) {
                self.telemetry.counter("serve.shed").inc();
                return Err(ServeError::Overloaded {
                    queue_depth: self.queued.load(Ordering::Relaxed),
                });
            }
        }
        // Count before sending: the dispatcher decrements on receipt, so
        // incrementing after a successful send could race below zero.
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(Msg::Probe(key, Box::new(probe))) {
            Ok(()) => {
                self.telemetry.gauge("serve.queue_depth").set(depth as f64);
                Ok(ProbeTicket { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.telemetry.counter("serve.shed").inc();
                Err(ServeError::Overloaded {
                    queue_depth: self.queued.load(Ordering::Relaxed),
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                Err(ServeError::Shutdown)
            }
        }
    }

    /// Asks the dispatcher to flush every pending group now, regardless
    /// of batch size or deadline. Blocks for queue space if the
    /// submission queue is momentarily full: a dropped flush would leave
    /// already-admitted probes waiting out their full `max_wait`, which
    /// under a stalled virtual clock (or an hour-scale `max_wait`) is
    /// forever. The dispatcher always drains, so the wait is bounded.
    pub fn flush(&self) {
        if let Some(tx) = &self.submit_tx {
            let _ = tx.send(Msg::Flush);
        }
    }

    /// Submits, flushes, and waits: the synchronous path the reference
    /// manager uses for its own probes.
    pub fn probe_blocking(&self, batch: &Batch, module: usize) -> ServeResult<ProbeResponse> {
        let ticket = self.submit(ProbeRequest {
            batch: batch.clone(),
            module,
            deadline: None,
        })?;
        self.flush();
        ticket.wait()
    }

    /// Reaps finished worker threads, absorbing their panic payloads.
    /// Returns how many were reaped. Respawning is not supervision's
    /// job: a panicking worker heals itself through its panic guard
    /// (see [`WorkerGuard`]) before the caller can even observe the
    /// failure, so queued batches behind the fatal one still execute.
    /// This is bookkeeping the reference manager runs on its fallback
    /// path to keep the handle list tight.
    pub fn supervise(&self) -> usize {
        let mut handles = lock_unpoisoned(&self.worker_ctx.handles);
        let mut reaped = 0;
        let mut live = Vec::with_capacity(handles.len());
        for h in handles.drain(..) {
            if h.is_finished() {
                let _ = h.join();
                reaped += 1;
            } else {
                live.push(h);
            }
        }
        *handles = live;
        reaped
    }

    /// How many worker threads are registered (dead-but-unreaped workers
    /// count until the next [`supervise`](Self::supervise); a freshly
    /// respawned replacement counts alongside the corpse it replaced).
    pub fn worker_count(&self) -> usize {
        lock_unpoisoned(&self.worker_ctx.handles).len()
    }

    fn group_key(&self, req: &ProbeRequest, version: u64) -> GroupKey {
        match &req.batch.input {
            Input::Image(t) if t.rank() >= 1 => GroupKey::Image {
                version,
                module: req.module,
                sample_dims: t.shape().dims()[1..].to_vec(),
                target_kind: target_kind(&req.batch),
            },
            _ => GroupKey::Singleton(self.singleton_seq.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

impl Drop for ServeEngine {
    /// Bounded shutdown: pending tickets resolve with
    /// [`ServeError::Shutdown`], dispatched work drains, and threads are
    /// joined with a bounded wait (detach rather than hang the trainer).
    fn drop(&mut self) {
        // Disconnect the submission queue; the dispatcher drains it, fails
        // still-pending probes with Shutdown, and closes the work queue.
        self.submit_tx = None;
        let mut handles: Vec<JoinHandle<()>> = self.dispatcher.take().into_iter().collect();
        handles.append(&mut lock_unpoisoned(&self.worker_ctx.handles));
        for h in handles {
            // ~1.5 s bound per thread without reading the wall clock.
            let mut spins = 0u32;
            while !h.is_finished() && spins < 300 {
                std::thread::sleep(Duration::from_millis(5));
                spins += 1;
            }
            if h.is_finished() {
                let _ = h.join();
            } else {
                eprintln!("egeria-serve: thread unresponsive at shutdown; detaching");
            }
        }
    }
}

fn target_kind(batch: &Batch) -> u8 {
    match &batch.targets {
        egeria_models::Targets::Classes(_) => 0,
        egeria_models::Targets::Pixels(_) => 1,
        egeria_models::Targets::TokenTargets(_) => 2,
        egeria_models::Targets::Spans(_) => 3,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatcher_loop(
    submit_rx: Receiver<Msg>,
    work_tx: Sender<ReadyBatch<GroupKey, PendingProbe>>,
    ctx: Arc<WorkerCtx>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    queued: Arc<AtomicUsize>,
    max_batch: usize,
    max_wait_us: u64,
    pending_budget: usize,
) {
    let mut batcher: BatcherCore<GroupKey, PendingProbe> =
        BatcherCore::new(max_batch, max_wait_us, pending_budget);
    let shed = telemetry.counter("serve.shed");
    let depth_gauge = telemetry.gauge("serve.queue_depth");
    let dispatch = |rb: ReadyBatch<GroupKey, PendingProbe>| {
        // Enqueue under the gate so a push can never race the exhaustion
        // drain (see `WorkerCtx::dispatch_gate`): a batch is either
        // queued before the drain (and drained there) or pushed after
        // the flag check (and failed here). `try_send` keeps the gate
        // non-blocking; a full queue backs off outside it — bounded
        // backpressure onto the batcher, never unbounded buffering.
        let mut rb = rb;
        loop {
            {
                let _g = lock_unpoisoned(&ctx.dispatch_gate);
                if ctx.exhausted.load(Ordering::SeqCst) {
                    for p in rb.requests {
                        let _ = p.reply.send(Err(ServeError::Shutdown));
                    }
                    return;
                }
                match work_tx.try_send(rb) {
                    Ok(()) => return,
                    Err(TrySendError::Full(b)) => rb = b,
                    Err(TrySendError::Disconnected(b)) => {
                        for p in b.requests {
                            let _ = p.reply.send(Err(ServeError::Shutdown));
                        }
                        return;
                    }
                }
            }
            // Liveness pacing while the queue is full, not policy time:
            // deliberately the wall clock, like the bounded shutdown
            // joins, so a stalled virtual clock cannot wedge dispatch.
            std::thread::sleep(Duration::from_millis(1));
        }
    };
    loop {
        let msg = match batcher.next_flush_us() {
            None => match submit_rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
            Some(due) => {
                let now = clock.now_us();
                if now >= due {
                    None
                } else {
                    // The timeout is a wakeup hint; the flush decision
                    // below is made on the engine clock, so a virtual
                    // clock stays authoritative. Capped so a stalled
                    // virtual clock re-checks promptly.
                    let wait = (due - now).min(5_000);
                    match submit_rx.recv_timeout(Duration::from_micros(wait)) {
                        Ok(m) => Some(m),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };
        match msg {
            Some(Msg::Probe(key, probe)) => {
                queued.fetch_sub(1, Ordering::Relaxed);
                match batcher.push(key, *probe, clock.now_us()) {
                    Push::Queued => {}
                    Push::Ready(rb) => dispatch(rb),
                    Push::Shed(probe, pending) => {
                        shed.inc();
                        let _ = probe
                            .reply
                            .send(Err(ServeError::Overloaded { queue_depth: pending }));
                    }
                }
            }
            Some(Msg::Flush) => {
                for rb in batcher.flush_all() {
                    dispatch(rb);
                }
            }
            None => {}
        }
        for rb in batcher.poll(clock.now_us()) {
            dispatch(rb);
        }
        depth_gauge.set((queued.load(Ordering::Relaxed) + batcher.pending()) as f64);
    }
    // Shutdown: whatever is still pending never executes.
    for rb in batcher.flush_all() {
        for p in rb.requests {
            let _ = p.reply.send(Err(ServeError::Shutdown));
        }
    }
    // Dropping work_tx lets the workers drain and exit.
}

fn worker_loop(ctx: &WorkerCtx) {
    let WorkerCtx { work_rx, clock, telemetry, faults, .. } = ctx;
    // Executor clones keyed by snapshot version; models carry scratch
    // state, so the published master is never run directly. Capped so a
    // publish-heavy trainer can't accumulate stale clones.
    let mut executors: BTreeMap<u64, Box<dyn Model>> = BTreeMap::new();
    let batches = telemetry.counter("serve.batches");
    let coalesced = telemetry.counter("serve.batches_coalesced");
    let responses = telemetry.counter("serve.responses");
    let errors = telemetry.counter("serve.errors");
    let missed = telemetry.counter("serve.deadline_missed");
    let batch_size_h = telemetry.histogram("serve.batch_size");
    let queue_wait_h = telemetry.histogram("serve.queue_wait_us");
    let exec_h = telemetry.histogram("serve.exec_us");

    while let Ok(rb) = work_rx.recv() {
        // Injected worker death: the panic is deliberately *outside* the
        // execution catch region, so the thread dies, this batch's reply
        // senders drop (tickets resolve Shutdown → callers fall back
        // inline), and the panic guard must heal or drain (see
        // [`WorkerGuard`]).
        if let Some(f) = faults {
            if f.should_fail(FaultSite::PoolTaskPanic) {
                panic!("injected serve worker panic");
            }
        }
        let now = clock.now_us();
        let mut live = Vec::with_capacity(rb.requests.len());
        for p in rb.requests {
            match p.deadline_us {
                Some(d) if now > d => {
                    missed.inc();
                    let _ = p.reply.send(Err(ServeError::DeadlineExceeded {
                        waited_us: now.saturating_sub(p.submitted_us),
                    }));
                }
                _ => live.push(p),
            }
        }
        let Some(first) = live.first() else { continue };
        let snapshot = Arc::clone(&first.snapshot);
        let version = snapshot.version();
        let module = first.module;
        let executor = executors
            .entry(version)
            .or_insert_with(|| snapshot.clone_executor());

        let parts: Vec<&Batch> = live.iter().map(|p| &p.batch).collect();
        let rows: usize = parts.iter().map(|b| b.sample_ids.len()).sum();
        let leader_wait = now.saturating_sub(rb.formed_at_us.min(now));
        let t0 = clock.now_us();
        let mut merged = false;
        let injected_exec_failure = faults
            .as_ref()
            .is_some_and(|f| f.should_fail(FaultSite::ServeExecute));
        let result = if injected_exec_failure {
            Err(ServeError::Model(TensorError::Io(
                "injected serve execution failure".into(),
            )))
        } else {
            let _span = telemetry
                .span("serve_batch")
                .module(module as u64)
                .arg("version", version)
                .arg("requests", live.len())
                .arg("rows", rows)
                .arg("queue_wait_us", leader_wait);
            // A panicking executor clone must not take the worker thread
            // (and every queued batch behind it) down with it: contain
            // the panic at the execution boundary and fail the batch
            // with a typed error instead.
            match catch_unwind(AssertUnwindSafe(|| {
                exec::execute_group(executor.as_mut(), module, &parts, &mut merged)
            })) {
                Ok(r) => r,
                Err(_) => {
                    telemetry.counter("serve.exec_panics").inc();
                    Err(ServeError::WorkerPanic)
                }
            }
        };
        let exec_us = clock.now_us().saturating_sub(t0);
        batches.inc();
        if merged {
            coalesced.inc();
        }
        batch_size_h.observe(live.len() as u64);
        exec_h.observe(exec_us);

        let request_count = live.len();
        match result {
            Ok(acts) => {
                for (p, act) in live.into_iter().zip(acts) {
                    let wait = t0.saturating_sub(p.submitted_us);
                    queue_wait_h.observe(wait);
                    responses.inc();
                    let _ = p.reply.send(Ok(ProbeResponse {
                        activation: act,
                        snapshot_version: version,
                        precision: snapshot.precision(),
                        batch_size: request_count,
                        queue_wait_us: wait,
                        exec_us,
                    }));
                }
            }
            Err(e) => {
                // A failed executor clone may be wedged; rebuild next use.
                executors.remove(&version);
                for p in live {
                    errors.inc();
                    let _ = p.reply.send(Err(e.clone()));
                }
            }
        }
        // Evict the oldest versions beyond the cache cap.
        while executors.len() > 2 {
            let oldest = *executors.keys().next().expect("non-empty");
            executors.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::RealClock;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::Targets;
    use egeria_tensor::Rng;

    fn model() -> impl Model {
        resnet_cifar(
            ResNetCifarConfig { n: 2, width: 4, classes: 4, ..Default::default() },
            99,
        )
    }

    fn image_batch(seed: u64, n: usize) -> Batch {
        let mut rng = Rng::new(seed);
        Batch {
            input: Input::Image(Tensor::randn(&[n, 3, 8, 8], &mut rng)),
            targets: Targets::Classes((0..n).map(|i| i % 4).collect()),
            sample_ids: (0..n as u64).map(|i| seed * 100 + i).collect(),
        }
    }

    fn engine(cfg: ServeConfig) -> ServeEngine {
        ServeEngine::new(cfg, RealClock::shared(), Telemetry::disabled())
    }

    #[test]
    fn probe_without_snapshot_fails_typed() {
        let e = engine(ServeConfig::default());
        let err = e.probe_blocking(&image_batch(1, 2), 0).unwrap_err();
        assert_eq!(err, ServeError::NoSnapshot);
    }

    #[test]
    fn probe_blocking_matches_inline_capture() {
        let e = engine(ServeConfig::default());
        let m = model();
        e.publish(&m, Precision::Int8).unwrap();
        let batch = image_batch(5, 3);
        let resp = e.probe_blocking(&batch, 1).unwrap();
        assert_eq!(resp.snapshot_version, 1);
        assert_eq!(resp.precision, Precision::Int8);
        let mut inline = egeria_quant::model::quantize_reference(&m, Precision::Int8).unwrap();
        let want = inline.capture_activation(&batch, 1).unwrap();
        assert_eq!(resp.activation.data(), want.data());
    }

    #[test]
    fn probes_execute_against_their_admission_snapshot() {
        let e = engine(ServeConfig { max_batch: 4, ..ServeConfig::default() });
        let m = model();
        e.publish(&m, Precision::F32).unwrap();
        let t = e
            .submit(ProbeRequest { batch: image_batch(2, 2), module: 0, deadline: None })
            .unwrap();
        // Publish a new version while the first probe is still queued.
        e.publish(&m, Precision::F32).unwrap();
        e.flush();
        assert_eq!(t.wait().unwrap().snapshot_version, 1);
        assert_eq!(e.probe_blocking(&image_batch(2, 2), 0).unwrap().snapshot_version, 2);
    }

    #[test]
    fn expired_deadline_fails_without_executing() {
        let e = engine(ServeConfig::default());
        e.publish(&model(), Precision::F32).unwrap();
        let t = e
            .submit(ProbeRequest {
                batch: image_batch(3, 1),
                module: 0,
                deadline: Some(Duration::from_micros(0)),
            })
            .unwrap();
        // Let real time pass so the zero deadline is unambiguously gone.
        std::thread::sleep(Duration::from_millis(2));
        e.flush();
        match t.wait().unwrap_err() {
            ServeError::DeadlineExceeded { .. } => {}
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
    }

    #[test]
    fn flush_on_full_coalesces_a_group() {
        let e = engine(ServeConfig {
            max_batch: 3,
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        e.publish(&model(), Precision::F32).unwrap();
        let tickets: Vec<ProbeTicket> = (0..3)
            .map(|i| {
                e.submit(ProbeRequest {
                    batch: image_batch(10 + i, 2),
                    module: 1,
                    deadline: None,
                })
                .unwrap()
            })
            .collect();
        // No flush() call: the third probe fills the group.
        for t in tickets {
            let r = t.wait().unwrap();
            assert_eq!(r.batch_size, 3, "group should have coalesced all three");
        }
    }

    /// A panicked worker's thread takes a moment to finish unwinding
    /// after its tickets resolve; reaping is sample-based, so the tests
    /// poll supervision (bounded) until the corpse count settles.
    fn supervise_until_worker_count(e: &ServeEngine, want: usize) -> usize {
        let mut reaped = 0;
        for _ in 0..600 {
            reaped += e.supervise();
            if e.worker_count() == want {
                return reaped;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        reaped
    }

    #[test]
    fn injected_admission_fault_sheds_typed() {
        let faults = FaultInjector::new();
        faults.arm(FaultSite::ServeAdmission, 0, 1, egeria_resil::FaultAction::Fail);
        let t = Telemetry::enabled();
        let e = ServeEngine::with_faults(
            ServeConfig::default(),
            RealClock::shared(),
            t.clone(),
            Some(Arc::clone(&faults)),
            None,
        );
        e.publish(&model(), Precision::F32).unwrap();
        let err = e.probe_blocking(&image_batch(1, 2), 0).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }), "got {err}");
        // The next probe passes: the plan fired exactly once.
        assert!(e.probe_blocking(&image_batch(2, 2), 0).is_ok());
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("serve.shed"), Some(1));
    }

    #[test]
    fn injected_execute_fault_fails_batch_then_recovers() {
        let faults = FaultInjector::new();
        faults.arm(FaultSite::ServeExecute, 0, 1, egeria_resil::FaultAction::Fail);
        let e = ServeEngine::with_faults(
            ServeConfig::default(),
            RealClock::shared(),
            Telemetry::disabled(),
            Some(faults),
            None,
        );
        e.publish(&model(), Precision::F32).unwrap();
        let err = e.probe_blocking(&image_batch(3, 2), 0).unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "got {err}");
        // The worker survived an execution failure; the executor clone is
        // rebuilt and the next probe succeeds.
        assert!(e.probe_blocking(&image_batch(4, 2), 0).is_ok());
    }

    #[test]
    fn injected_worker_panic_self_heals_without_supervision() {
        let faults = FaultInjector::new();
        faults.arm(FaultSite::PoolTaskPanic, 0, 1, egeria_resil::FaultAction::Fail);
        let t = Telemetry::enabled();
        let e = ServeEngine::with_faults(
            ServeConfig::default(),
            RealClock::shared(),
            t.clone(),
            Some(faults),
            None,
        );
        e.publish(&model(), Precision::F32).unwrap();
        // The worker dies mid-batch: the ticket resolves Shutdown (its
        // reply sender dropped with the unwound batch).
        let err = e.probe_blocking(&image_batch(5, 2), 0).unwrap_err();
        assert_eq!(err, ServeError::Shutdown);
        // No supervise() call in between: the dying worker respawned its
        // own replacement, which picks this probe up from the queue.
        assert!(e.probe_blocking(&image_batch(6, 2), 0).is_ok());
        // Supervision reaps the corpse; the replacement remains.
        assert!(supervise_until_worker_count(&e, 1) >= 1, "corpse reaped");
        assert_eq!(e.worker_count(), 1);
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("serve.worker_deaths"), Some(1));
        assert_eq!(snap.counter("serve.worker_respawns"), Some(1));
        assert_eq!(snap.counter("serve.worker_panics"), Some(1));
    }

    #[test]
    fn respawn_budget_exhaustion_goes_critical() {
        use egeria_resil::health::HealthMonitor;
        let faults = FaultInjector::new();
        // Every batch panics the worker; budget of 1 respawn.
        faults.arm(FaultSite::PoolTaskPanic, 0, 2, egeria_resil::FaultAction::Fail);
        let health = HealthMonitor::new(Telemetry::disabled());
        let e = ServeEngine::with_faults(
            ServeConfig { worker_respawn_budget: 1, ..ServeConfig::default() },
            RealClock::shared(),
            Telemetry::disabled(),
            Some(faults),
            Some(Arc::clone(&health)),
        );
        e.publish(&model(), Precision::F32).unwrap();
        // Death 1: the guard spends the whole budget on a replacement.
        assert_eq!(e.probe_blocking(&image_batch(7, 2), 0).unwrap_err(), ServeError::Shutdown);
        // Death 2: respawn denied; the last worker is gone. Whether this
        // probe's ticket resolved via the unwound batch or the
        // exhaustion drain, it must resolve.
        assert_eq!(e.probe_blocking(&image_batch(8, 2), 0).unwrap_err(), ServeError::Shutdown);
        // Exhausted: later probes shed at admission (or fail at
        // dispatch if they raced the flag) instead of queueing forever.
        assert_eq!(e.probe_blocking(&image_batch(9, 2), 0).unwrap_err(), ServeError::Shutdown);
        // Supervision reaps both corpses and replaces neither.
        supervise_until_worker_count(&e, 0);
        assert_eq!(e.worker_count(), 0, "budget exhausted: no respawn");
        assert_eq!(health.level(), 2, "exhaustion is a critical condition");
    }

    /// Regression: the fatal batch is not necessarily the only one in
    /// flight. Two groups are queued (distinct modules), the single
    /// worker panics on the first, and with a zero respawn budget
    /// nothing will ever execute the second — its tickets must resolve
    /// via the exhaustion drain rather than strand their waiters. The
    /// pre-guard engine hung here forever.
    #[test]
    fn worker_death_fails_queued_batches_instead_of_stranding() {
        let faults = FaultInjector::new();
        faults.arm(FaultSite::PoolTaskPanic, 0, 1, egeria_resil::FaultAction::Fail);
        let e = ServeEngine::with_faults(
            ServeConfig {
                worker_respawn_budget: 0,
                max_wait: Duration::from_secs(60),
                ..ServeConfig::default()
            },
            RealClock::shared(),
            Telemetry::disabled(),
            Some(faults),
            None,
        );
        e.publish(&model(), Precision::F32).unwrap();
        let t1 = e
            .submit(ProbeRequest { batch: image_batch(1, 2), module: 0, deadline: None })
            .unwrap();
        let t2 = e
            .submit(ProbeRequest { batch: image_batch(2, 2), module: 1, deadline: None })
            .unwrap();
        e.flush();
        assert_eq!(t1.wait().unwrap_err(), ServeError::Shutdown);
        assert_eq!(t2.wait().unwrap_err(), ServeError::Shutdown);
        assert_eq!(
            e.probe_blocking(&image_batch(3, 2), 0).unwrap_err(),
            ServeError::Shutdown,
            "exhausted engine sheds at admission"
        );
    }

    #[test]
    fn drop_resolves_pending_tickets_with_shutdown() {
        let e = engine(ServeConfig {
            max_wait: Duration::from_secs(60),
            max_batch: 64,
            ..ServeConfig::default()
        });
        e.publish(&model(), Precision::F32).unwrap();
        let t = e
            .submit(ProbeRequest { batch: image_batch(4, 1), module: 0, deadline: None })
            .unwrap();
        drop(e);
        assert_eq!(t.wait().unwrap_err(), ServeError::Shutdown);
    }
}
