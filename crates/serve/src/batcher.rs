//! The dynamic micro-batcher: a pure state machine, no threads inside.
//!
//! [`BatcherCore`] owns the pending request groups and implements the
//! whole batching policy:
//!
//! - **flush-on-full**: a group reaching `max_batch` requests is returned
//!   ready immediately,
//! - **flush-on-deadline**: a group older than `max_wait_us` (measured
//!   from its *leader's* arrival) is returned by [`BatcherCore::poll`],
//! - **shed-on-overflow**: pushes beyond the bounded `max_pending` budget
//!   are rejected so the caller can fail the request with
//!   [`crate::ServeError::Overloaded`] instead of queuing unboundedly.
//!
//! All timing flows in through `now_us` arguments (taken from the
//! engine's pluggable [`crate::Clock`]), which is what makes every policy
//! behavior pinnable by deterministic virtual-clock tests. The engine's
//! dispatcher thread is a thin driver around this core.
//!
//! The core is generic over the group key `K` and request payload `T` so
//! the policy can be tested without models or tensors.

/// Outcome of [`BatcherCore::push`].
#[derive(Debug)]
pub enum Push<K, T> {
    /// The request joined a pending group.
    Queued,
    /// The request completed a group (flush-on-full): execute this batch.
    Ready(ReadyBatch<K, T>),
    /// The pending budget is exhausted; the request is handed back
    /// (shed-on-overflow) together with the pending count observed.
    Shed(T, usize),
}

/// A batch the policy decided to execute.
#[derive(Debug)]
pub struct ReadyBatch<K, T> {
    /// The coalescing key all requests in the batch share.
    pub key: K,
    /// The coalesced requests, in arrival order.
    pub requests: Vec<T>,
    /// When the group's first request arrived (µs, batcher clock).
    pub formed_at_us: u64,
}

struct Group<K, T> {
    key: K,
    requests: Vec<T>,
    formed_at_us: u64,
}

/// The micro-batching state machine. See the module docs for the policy.
pub struct BatcherCore<K, T> {
    max_batch: usize,
    max_wait_us: u64,
    max_pending: usize,
    groups: Vec<Group<K, T>>,
    pending: usize,
}

impl<K: Clone + PartialEq, T> BatcherCore<K, T> {
    /// A batcher with the given policy. `max_batch` and `max_pending` are
    /// clamped to at least 1.
    pub fn new(max_batch: usize, max_wait_us: u64, max_pending: usize) -> Self {
        BatcherCore {
            max_batch: max_batch.max(1),
            max_wait_us,
            max_pending: max_pending.max(1),
            groups: Vec::new(),
            pending: 0,
        }
    }

    /// Requests currently waiting in pending groups.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Admits one request under `key` at time `now_us`.
    pub fn push(&mut self, key: K, request: T, now_us: u64) -> Push<K, T> {
        if self.pending >= self.max_pending {
            return Push::Shed(request, self.pending);
        }
        match self.groups.iter_mut().find(|g| g.key == key) {
            Some(g) => g.requests.push(request),
            None => self.groups.push(Group {
                key: key.clone(),
                requests: vec![request],
                formed_at_us: now_us,
            }),
        }
        self.pending += 1;
        // Flush-on-full: hand the completed group straight back.
        let idx = self
            .groups
            .iter()
            .position(|g| g.key == key && g.requests.len() >= self.max_batch);
        match idx {
            Some(i) => Push::Ready(self.take_group(i)),
            None => Push::Queued,
        }
    }

    /// Returns every group whose leader has waited at least `max_wait_us`
    /// by `now_us` (flush-on-deadline), oldest leader first.
    pub fn poll(&mut self, now_us: u64) -> Vec<ReadyBatch<K, T>> {
        let mut out = Vec::new();
        loop {
            let idx = self
                .groups
                .iter()
                .enumerate()
                .filter(|(_, g)| now_us.saturating_sub(g.formed_at_us) >= self.max_wait_us)
                .min_by_key(|(_, g)| g.formed_at_us)
                .map(|(i, _)| i);
            match idx {
                Some(i) => out.push(self.take_group(i)),
                None => return out,
            }
        }
    }

    /// Flushes everything immediately (explicit flush or shutdown),
    /// oldest leader first.
    pub fn flush_all(&mut self) -> Vec<ReadyBatch<K, T>> {
        let mut out = Vec::new();
        while !self.groups.is_empty() {
            let i = self
                .groups
                .iter()
                .enumerate()
                .min_by_key(|(_, g)| g.formed_at_us)
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.push(self.take_group(i));
        }
        out
    }

    /// When the next flush-on-deadline fires (µs), if any group is
    /// pending.
    pub fn next_flush_us(&self) -> Option<u64> {
        self.groups
            .iter()
            .map(|g| g.formed_at_us + self.max_wait_us)
            .min()
    }

    fn take_group(&mut self, i: usize) -> ReadyBatch<K, T> {
        let g = self.groups.swap_remove(i);
        self.pending -= g.requests.len();
        ReadyBatch {
            key: g.key,
            requests: g.requests,
            formed_at_us: g.formed_at_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock};

    fn ready_sizes<K, T>(batches: &[ReadyBatch<K, T>]) -> Vec<usize> {
        batches.iter().map(|b| b.requests.len()).collect()
    }

    #[test]
    fn flush_on_full_returns_the_completed_group() {
        let clock = VirtualClock::new();
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(3, 1_000, 16);
        assert!(matches!(b.push(7, 0, clock.now_us()), Push::Queued));
        assert!(matches!(b.push(7, 1, clock.now_us()), Push::Queued));
        match b.push(7, 2, clock.now_us()) {
            Push::Ready(batch) => {
                assert_eq!(batch.key, 7);
                assert_eq!(batch.requests, vec![0, 1, 2]);
                assert_eq!(batch.formed_at_us, 0);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn distinct_keys_never_coalesce() {
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(2, 1_000, 16);
        assert!(matches!(b.push(1, 0, 0), Push::Queued));
        assert!(matches!(b.push(2, 1, 0), Push::Queued));
        // Each key still needs a second member to flush on full.
        assert!(matches!(b.push(1, 2, 0), Push::Ready(_)));
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn flush_on_deadline_fires_at_leader_age() {
        let clock = VirtualClock::new();
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(8, 500, 16);
        b.push(1, 0, clock.now_us());
        clock.advance_us(200);
        b.push(1, 1, clock.now_us());
        // 200 µs after the leader: not due yet.
        assert!(b.poll(clock.now_us()).is_empty());
        assert_eq!(b.next_flush_us(), Some(500));
        clock.advance_us(300);
        // Exactly max_wait after the *leader* (not the second member).
        let due = b.poll(clock.now_us());
        assert_eq!(ready_sizes(&due), vec![2]);
        assert_eq!(due[0].formed_at_us, 0);
        assert!(b.next_flush_us().is_none());
    }

    #[test]
    fn poll_returns_oldest_leader_first() {
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(8, 100, 16);
        b.push(2, 20, 50);
        b.push(1, 10, 0);
        let due = b.poll(1_000);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].key, 1, "oldest leader flushes first");
        assert_eq!(due[1].key, 2);
    }

    #[test]
    fn shed_on_overflow_hands_the_request_back() {
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(8, 1_000, 2);
        assert!(matches!(b.push(1, 0, 0), Push::Queued));
        assert!(matches!(b.push(2, 1, 0), Push::Queued));
        match b.push(3, 99, 0) {
            Push::Shed(req, pending) => {
                assert_eq!(req, 99, "the shed request must come back intact");
                assert_eq!(pending, 2);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        // Draining a group frees budget again.
        assert_eq!(ready_sizes(&b.flush_all()), vec![1, 1]);
        assert!(matches!(b.push(3, 99, 0), Push::Queued));
    }

    #[test]
    fn flush_all_empties_every_group() {
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(8, 1_000, 16);
        b.push(1, 0, 10);
        b.push(1, 1, 20);
        b.push(2, 2, 5);
        let all = b.flush_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key, 2, "oldest leader first");
        assert_eq!(all[1].requests, vec![0, 1]);
        assert_eq!(b.pending(), 0);
        assert!(b.flush_all().is_empty());
    }

    #[test]
    fn max_wait_zero_makes_every_push_pollable_immediately() {
        let mut b: BatcherCore<u32, usize> = BatcherCore::new(8, 0, 16);
        b.push(1, 0, 42);
        let due = b.poll(42);
        assert_eq!(ready_sizes(&due), vec![1]);
    }
}
