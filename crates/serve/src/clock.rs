//! The pluggable clock driving every batching-policy decision.
//!
//! The implementation lives in `egeria-resil` (the resilience layer sits
//! below serve so retry/breaker code shares the same trait); this module
//! re-exports it so `egeria_serve::clock::{Clock, RealClock,
//! VirtualClock}` and the crate-root re-exports keep resolving. The rest
//! of this crate remains under the determinism rule's wall-clock ban —
//! batching-policy decisions reach time only through the injected
//! [`Clock`] trait, and tests substitute a [`VirtualClock`].

pub use egeria_resil::clock::{Clock, RealClock, VirtualClock};
