//! Typed serving errors — every degraded outcome is a value, never a
//! panic (the degradation matrix is in DESIGN.md §5e).

use egeria_tensor::TensorError;
use std::fmt;

/// Alias for serving results.
pub type ServeResult<T> = Result<T, ServeError>;

/// Everything that can go wrong between admission and reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue (or the batcher's pending budget) was
    /// full; the request was shed at admission without queuing.
    Overloaded {
        /// Pending requests observed when the request was shed.
        queue_depth: usize,
    },
    /// The request's deadline passed before execution started.
    DeadlineExceeded {
        /// How long the request had waited when it was expired, in µs.
        waited_us: u64,
    },
    /// No model snapshot has been published yet.
    NoSnapshot,
    /// The engine is shutting down (or already gone); the request was not
    /// executed.
    Shutdown,
    /// The model forward failed.
    Model(TensorError),
    /// A worker caught a panic while executing the batch; the executor
    /// clone was discarded and every request in the batch failed. The
    /// worker itself survives (the panic is contained at the execution
    /// boundary) — only an injected [`PoolTaskPanic`] kills a worker
    /// outright, which resolves its in-flight tickets as [`Shutdown`].
    ///
    /// [`PoolTaskPanic`]: egeria_resil::FaultSite::PoolTaskPanic
    /// [`Shutdown`]: ServeError::Shutdown
    WorkerPanic,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(f, "serve queue full ({queue_depth} pending); request shed")
            }
            ServeError::DeadlineExceeded { waited_us } => {
                write!(f, "deadline exceeded after waiting {waited_us} us")
            }
            ServeError::NoSnapshot => write!(f, "no model snapshot published"),
            ServeError::Shutdown => write!(f, "serve engine is shut down"),
            ServeError::Model(e) => write!(f, "model execution failed: {e}"),
            ServeError::WorkerPanic => {
                write!(f, "serve worker caught a panic executing the batch")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        assert!(ServeError::Overloaded { queue_depth: 7 }.to_string().contains('7'));
        assert!(ServeError::DeadlineExceeded { waited_us: 123 }.to_string().contains("123"));
        assert!(ServeError::NoSnapshot.to_string().contains("snapshot"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let m: ServeError = TensorError::Numerical("x".into()).into();
        assert!(m.to_string().contains("model execution"));
        assert!(ServeError::WorkerPanic.to_string().contains("panic"));
    }
}
