//! `egeria-serve`: batched inference serving for reference-model traffic
//! (DESIGN.md §5e).
//!
//! Egeria's reference model is an always-on, forward-only inference
//! workload that answers plasticity probes beside training (§4.2–§4.3 of
//! the paper). This crate turns the inline per-probe execution into an
//! embeddable serving subsystem:
//!
//! - [`snapshot`]: immutable, versioned model snapshots (fp32 / f16 / int8
//!   via `egeria-quant`) published by the trainer and swapped atomically —
//!   in-flight requests keep executing against the version they were
//!   admitted under.
//! - [`clock`]: the pluggable [`Clock`] every batching-policy decision is
//!   timed by. Production uses [`clock::RealClock`] (the only module in
//!   this crate allowed to read the wall clock — enforced by
//!   `egeria-lint`); tests drive a deterministic [`clock::VirtualClock`].
//! - [`batcher`]: a pure micro-batching state machine — bounded pending
//!   budget, flush-on-full (`max_batch`), flush-on-deadline (`max_wait`),
//!   shed-on-overflow — with no threads inside, so every policy behavior
//!   is pinned by virtual-clock unit tests.
//! - [`exec`]: request coalescing. Same-shaped image probes against the
//!   same snapshot version and module merge along the batch axis into one
//!   forward; outputs are split back per request. **Batched execution is
//!   bit-identical to singleton execution** regardless of how requests
//!   coalesce (the eval-mode forward is per-sample independent and the
//!   tensor kernels partition work by fixed geometry — DESIGN.md §5b), and
//!   any group that cannot be merged or split degrades to singleton
//!   forwards, so the contract holds by construction.
//! - [`engine`]: the [`ServeEngine`] — a bounded submission queue with
//!   admission control, a dispatcher thread driving the batcher, and a
//!   forward-execution worker pool whose tensor math runs on the shared
//!   `egeria_tensor::ThreadPool`. Overflow sheds with
//!   [`ServeError::Overloaded`], late requests fail with
//!   [`ServeError::DeadlineExceeded`], and shutdown resolves every pending
//!   ticket with [`ServeError::Shutdown`] — typed errors, never panics.
//!
//! Everything is instrumented through `egeria-obs`: `serve.*` counters and
//! histograms (queue depth, batch size, queue-wait/execute latencies) and
//! one `serve_batch` span per executed group, which `trace_report`
//! summarizes into its serving section.

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod batcher;
pub mod clock;
pub mod engine;
pub mod error;
pub mod exec;
pub mod snapshot;

pub use clock::{Clock, RealClock, VirtualClock};
pub use engine::{ProbeRequest, ProbeResponse, ProbeTicket, ServeEngine};
pub use error::{ServeError, ServeResult};
pub use snapshot::{ModelSnapshot, SnapshotRegistry};

use std::time::Duration;

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Forward-execution worker threads.
    pub workers: usize,
    /// Maximum requests coalesced into one executed batch; reaching it
    /// flushes the group immediately (flush-on-full).
    pub max_batch: usize,
    /// How long an under-full group may wait for co-batchable requests
    /// before it is flushed anyway (flush-on-deadline).
    pub max_wait: Duration,
    /// Bounded submission-queue depth; admission beyond it sheds the
    /// request with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Default per-request deadline applied when a request carries none;
    /// `None` means requests without a deadline never expire.
    pub default_deadline: Option<Duration>,
    /// How many dead workers may respawn themselves over the engine's
    /// lifetime (a panicking worker's guard spawns its own replacement)
    /// before the budget is exhausted. Exhaustion fails all queued and
    /// future probes and flips the wired health monitor to Critical.
    pub worker_respawn_budget: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_depth: 64,
            default_deadline: None,
            worker_respawn_budget: 8,
        }
    }
}

impl ServeConfig {
    /// Reads the `EGERIA_SERVE_*` environment knobs over the defaults:
    /// `EGERIA_SERVE_WORKERS`, `EGERIA_SERVE_MAX_BATCH`,
    /// `EGERIA_SERVE_MAX_WAIT_US`, and `EGERIA_SERVE_QUEUE`.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(v) = env_usize("EGERIA_SERVE_WORKERS") {
            cfg.workers = v.clamp(1, 64);
        }
        if let Some(v) = env_usize("EGERIA_SERVE_MAX_BATCH") {
            cfg.max_batch = v.max(1);
        }
        if let Some(v) = env_usize("EGERIA_SERVE_MAX_WAIT_US") {
            cfg.max_wait = Duration::from_micros(v as u64);
        }
        if let Some(v) = env_usize("EGERIA_SERVE_QUEUE") {
            cfg.queue_depth = v.max(1);
        }
        if let Some(v) = env_usize("EGERIA_SERVE_RESPAWNS") {
            cfg.worker_respawn_budget = v.min(u32::MAX as usize) as u32;
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

/// Whether the serving path is enabled for this process: `EGERIA_SERVE`
/// set to `off`, `0`, or `false` (any case) disables it; anything else —
/// including unset — leaves it on. The off path preserves the inline
/// per-probe behavior bit-for-bit (and the on path does too, by the
/// batched-execution determinism contract; the knob exists so the two can
/// be compared and the seed behavior pinned).
pub fn serve_enabled() -> bool {
    match std::env::var("EGERIA_SERVE") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.max_batch >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.default_deadline.is_none());
    }
}
