//! Integration tests: the seeded-violation fixture corpus (every rule flags
//! the right lines, pragmas suppress, clean/tricky files pass), the
//! manifest vendor-patch rule, binary exit codes, and the workspace-clean
//! gate over the real source tree.

use egeria_lint::{json, lint_tree, load_config, rules, Tier};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The corpus findings, down to (path, line, rule): seeded violations are
/// flagged at the right lines, `allow` pragmas suppress theirs, and the
/// clean / tricky-strings fixtures contribute nothing.
#[test]
fn fixture_corpus_findings_are_exact() {
    let root = fixtures_root();
    let cfg = load_config(&root).expect("fixture lint.toml");
    let report = lint_tree(&root, &cfg).expect("lint fixtures");
    let got: Vec<(String, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.rule))
        .collect();
    let want: Vec<(String, u32, &str)> = [
        ("bad_arch.rs", 4, rules::ARCH_INTRINSICS_CONFINED),
        ("bad_arch.rs", 7, rules::ARCH_INTRINSICS_CONFINED),
        ("bad_float_eq.rs", 4, rules::FLOAT_EXACT_EQ),
        ("bad_float_eq.rs", 5, rules::FLOAT_EXACT_EQ),
        ("bad_float_eq.rs", 6, rules::FLOAT_EXACT_EQ),
        ("bad_sleep_retry.rs", 4, rules::NO_WALLCLOCK_SLEEP_RETRY),
        ("bad_sleep_retry.rs", 5, rules::NO_WALLCLOCK_SLEEP_RETRY),
        ("bad_sleep_retry.rs", 6, rules::NO_WALLCLOCK_SLEEP_RETRY),
        ("bad_spawn.rs", 4, rules::DETERMINISM),
        ("bad_unsafe.rs", 9, rules::UNSAFE_NEEDS_SAFETY),
        ("bad_unsafe.rs", 13, rules::UNSAFE_NEEDS_SAFETY),
        ("kernels/bad_determinism_kernel.rs", 5, rules::DETERMINISM),
        ("kernels/bad_panics.rs", 5, rules::NO_PANIC_IN_KERNELS),
        ("kernels/bad_panics.rs", 6, rules::NO_PANIC_IN_KERNELS),
        ("kernels/bad_panics.rs", 8, rules::NO_PANIC_IN_KERNELS),
        ("ser/bad_serialize.rs", 2, rules::DETERMINISM),
        ("ser/bad_serialize.rs", 3, rules::DETERMINISM),
        ("ser/bad_serialize.rs", 5, rules::DETERMINISM),
        ("ser/bad_serialize.rs", 11, rules::DETERMINISM),
    ]
    .into_iter()
    .map(|(p, l, r)| (p.to_string(), l, r))
    .collect();
    assert_eq!(got, want);
}

/// The binary is the CI gate: nonzero on the seeded corpus, with
/// `file:line:col`-formatted diagnostics on stdout.
#[test]
fn binary_exits_nonzero_on_fixture_corpus() {
    let out = Command::new(env!("CARGO_BIN_EXE_egeria-lint"))
        .args(["--workspace", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("run egeria-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bad_unsafe.rs:9:5: [unsafe-needs-safety]"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("kernels/bad_panics.rs:8:9: [no-panic-in-kernels]"));
}

/// Single-file mode on a clean fixture exits 0.
#[test]
fn binary_exits_zero_on_clean_file() {
    let out = Command::new(env!("CARGO_BIN_EXE_egeria-lint"))
        .args(["--root"])
        .arg(fixtures_root())
        .arg("clean.rs")
        .output()
        .expect("run egeria-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

/// The real source tree is clean under the checked-in lint.toml — this is
/// the invariant ci.sh enforces: zero deny-tier findings, and every
/// warn-tier finding covered by the checked-in `lint-baseline.json`
/// ratchet. Prints every finding on failure so the assert message is
/// actionable.
#[test]
fn workspace_is_clean() {
    let root = repo_root();
    let cfg = load_config(&root).expect("repo lint.toml");
    let report = lint_tree(&root, &cfg).expect("lint workspace");
    assert!(
        report.files_scanned > 100,
        "walker found only {} files — exclusions are eating the tree",
        report.files_scanned
    );
    let deny: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.tier == Tier::Deny)
        .map(|f| f.to_string())
        .collect();
    assert!(
        deny.is_empty(),
        "workspace has deny-tier lint findings:\n{}",
        deny.join("\n")
    );
    let baseline_src = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("checked-in lint-baseline.json");
    let baseline = json::parse_baseline(&baseline_src).expect("parse lint-baseline.json");
    let fresh: Vec<String> = json::new_warn_findings(&report.findings, &baseline)
        .iter()
        .map(|f| f.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "workspace has warn findings not in lint-baseline.json:\n{}",
        fresh.join("\n")
    );
}

/// vendored-deps-only: an external workspace dependency without a
/// `[patch.crates-io]` entry is flagged; path deps and patched deps pass.
#[test]
fn manifest_vendor_patch_rule() {
    let bad = r#"
[workspace.dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }
egeria-tensor = { path = "crates/tensor" }

[patch.crates-io]
rand = { path = "vendor/rand" }
"#;
    let findings = rules::check_manifest("Cargo.toml", bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, rules::VENDORED_DEPS_ONLY);
    assert!(findings[0].message.contains("`serde`"));

    let good = r#"
[workspace.dependencies]
rand = "0.8"
egeria-tensor = { path = "crates/tensor" }

[patch.crates-io]
rand = { path = "vendor/rand" }
"#;
    assert!(rules::check_manifest("Cargo.toml", good).is_empty());
}

/// The repo's real manifest satisfies the vendor-patch invariant.
#[test]
fn repo_manifest_is_fully_vendored() {
    let src = std::fs::read_to_string(repo_root().join("Cargo.toml")).expect("read Cargo.toml");
    let findings = rules::check_manifest("Cargo.toml", &src);
    assert!(findings.is_empty(), "{findings:?}");
}
