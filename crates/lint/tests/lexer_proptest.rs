//! Lexer hardening: the scanner must never panic and must keep its
//! position invariants on (a) every real `.rs` file in the workspace,
//! (b) byte-mutated variants of those files, and (c) generated token soup.
//! The scanner runs before any rule, so a crash here takes the whole gate
//! down — robustness is part of its contract.

use egeria_lint::lexer::scan;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || name == "vendor" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Position invariants every scan must satisfy, whatever the input:
/// 1-based monotonically non-decreasing token lines, 1-based columns, and
/// no token line past the end of the source.
fn check_invariants(src: &str) {
    let s = scan(src);
    let n_lines = src.lines().count() as u32 + 1;
    let mut prev = 1u32;
    for t in &s.toks {
        assert!(t.line >= 1 && t.col >= 1, "positions are 1-based: {t:?}");
        assert!(t.line >= prev, "token lines go backwards: {t:?}");
        assert!(t.line <= n_lines, "token line past EOF: {t:?}");
        prev = t.line;
    }
    for c in &s.comments {
        assert!(c.line >= 1 && c.end_line >= c.line, "comment span: {c:?}");
    }
    for &(a, b) in &s.test_regions {
        assert!(a <= b, "inverted test region ({a}, {b})");
    }
}

/// Every real source file in the workspace lexes without panicking and
/// satisfies the position invariants. Deterministic, not property-based —
/// this is the corpus the lint actually runs on.
#[test]
fn every_workspace_source_file_lexes() {
    let mut files = Vec::new();
    collect_rs(&repo_root(), &mut files);
    assert!(files.len() > 100, "walker found only {} files", files.len());
    for f in &files {
        let src = std::fs::read_to_string(f).expect("read source");
        check_invariants(&src);
    }
}

/// Fragments the soup strategy draws from: quotes, raw strings, lifetimes,
/// char literals (ASCII, multi-byte, escaped) left deliberately unbalanced.
const SOUP: &[&str] = &[
    "\"", "'", "'a", "r#\"", "\"#", "//", "/*", "*/", "\\", "\n", "é", "'é'", "'🦀'",
    "'\\u{2192}'", "fn f()", "0.5", "b'x'", "#[cfg(test)]", "r\"", "```", "⟶",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (lossily decoded, exactly how a corrupted file
    /// would reach the lint) never panics the scanner.
    #[test]
    fn arbitrary_bytes_lex(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes);
        check_invariants(&src);
    }

    /// Rust-ish token soup — unbalanced quotes, raw strings, lifetimes,
    /// multi-byte char literals — never panics the scanner.
    #[test]
    fn tokeny_soup_lexes(picks in prop::collection::vec(0usize..SOUP.len(), 0..40)) {
        let src: String = picks.iter().map(|&i| SOUP[i]).collect();
        check_invariants(&src);
    }

    /// Byte mutations of real workspace source files never panic the
    /// scanner and never break its position invariants.
    #[test]
    fn mutated_real_sources_lex(
        file_pick in 0usize..1000,
        edits in prop::collection::vec((0usize..100_000, any::<u8>()), 1..8),
    ) {
        let mut files = Vec::new();
        collect_rs(&repo_root(), &mut files);
        let src_path = &files[file_pick % files.len()];
        let mut bytes = std::fs::read(src_path).expect("read source");
        if bytes.is_empty() {
            bytes.push(b'\n');
        }
        for &(pos, b) in &edits {
            let at = pos % bytes.len();
            bytes[at] = b;
        }
        let src = String::from_utf8_lossy(&bytes);
        check_invariants(&src);
    }
}
