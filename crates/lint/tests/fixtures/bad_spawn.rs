// Seeded violation for determinism: spawn outside the sanctioned modules.

pub fn helper() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
