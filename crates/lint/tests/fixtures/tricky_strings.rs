// Scanner-robustness fixture: every rule trigger below is inert text inside
// a string, raw string, char literal, or comment — zero findings expected.
// unsafe { panic!("==") }  <- comment text only

pub fn tricky<'a>(s: &'a str) -> String {
    let a = "unsafe { x == 0.0 } .unwrap() panic!";
    let b = r#"thread::spawn SystemTime "Instant::now" == 1.5"#;
    let c = 'u';
    let d = '\'';
    let e = b"expect(.unwrap())";
    /* block comment: x == 0.0 and unsafe and
       /* nested: panic!("boom") */ still a comment */
    format!("{a}{b}{c}{d}{e:?}{s}")
}
