// Spawn in a sanctioned module (`spawn_allowed` in the fixture lint.toml):
// clean.

pub fn spawn_worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
