// Seeded violations for no-panic-in-kernels (this directory is scoped as a
// kernel module by the fixture lint.toml).

pub fn f(o: Option<u8>) -> u8 {
    let a = o.unwrap();
    let b = o.expect("boom");
    if a + b == 0 {
        panic!("kernel bug");
    }
    // egeria-lint: allow(no-panic-in-kernels): fixture pragma exercise
    let c = o.unwrap();
    a + b + c
}

pub fn not_a_method_call() {
    // Plain identifiers named unwrap/expect are not calls: clean.
    let unwrap = 1;
    let expect = unwrap + 1;
    let _ = expect;
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1u8).unwrap(), 1);
    }
}
