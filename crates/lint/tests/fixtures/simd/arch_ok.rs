// Clean: this file lives under the fixture config's `allowed` prefix for
// arch-intrinsics-confined, so intrinsic imports are sanctioned here.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::_mm256_setzero_ps;

#[cfg(target_arch = "aarch64")]
use core::arch::aarch64::vdupq_n_f32;
