// Seeded violations for unsafe-needs-safety.

pub fn covered(p: *const u8) -> u8 {
    // SAFETY: p is valid for reads by the caller's contract (fixture).
    unsafe { *p }
}

pub fn naked(p: *const u8) -> u8 {
    unsafe { *p }
}

struct Wrapper(*mut u8);
unsafe impl Send for Wrapper {}

// egeria-lint: allow(unsafe-needs-safety): fixture pragma exercise
unsafe impl Sync for Wrapper {}
