// Seeded violations for float-exact-eq.

pub fn f(x: f32, n: i32) -> bool {
    let a = x == 0.0;
    let b = 1.5 != x;
    let c = x == -2.0;
    let d = n == 0;
    let e = x <= 0.0;
    // egeria-lint: allow(float-exact-eq): fixture pragma exercise
    let g = x == 3.5;
    a && b && c && d && e && g
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_compare_is_fine_in_tests() {
        assert!(super::f(0.0, 0) || 1.0 == 1.0);
    }
}
