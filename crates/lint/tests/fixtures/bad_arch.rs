// Seeded violations for arch-intrinsics-confined: this file is outside the
// fixture config's `allowed` prefix (`simd/`).

use std::arch::x86_64::_mm256_add_ps;

pub fn leaked() {
    let _ = core::arch::x86_64::_mm256_setzero_ps;
}

// A doc/comment mention of std::arch is not a violation (token scan).
// egeria-lint: allow(arch-intrinsics-confined): fixture pragma exercise
use std::arch::x86_64::_mm256_mul_ps;
