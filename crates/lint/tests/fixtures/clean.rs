// A clean file: no findings under any rule.

/// Tolerance-based comparison, the sanctioned alternative to `== 0.0`.
pub fn nearly_zero(x: f32) -> bool {
    x.abs() < f32::EPSILON
}

pub fn safe_division(a: f32, b: f32) -> Option<f32> {
    if b.abs() < f32::EPSILON {
        None
    } else {
        Some(a / b)
    }
}
