//! Seeded violations for `no-wallclock-sleep-retry`: wall-clock waits and
//! timestamps in code scoped as retry/backoff logic.
fn retry_backoff() {
    std::thread::sleep(std::time::Duration::from_millis(5));
    let _deadline = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
}

fn sanctioned_real_clock() {
    // egeria-lint: allow(no-wallclock-sleep-retry): RealClock impl needs the OS timer
    std::thread::sleep(std::time::Duration::from_millis(1));
}
