// Seeded violations for determinism in a serialization path.
use std::collections::HashMap;
use std::time::SystemTime;

pub fn write_state(m: &HashMap<u64, f32>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.extend(k.to_le_bytes());
        out.extend(v.to_le_bytes());
    }
    let _stamp = SystemTime::now();
    out
}
