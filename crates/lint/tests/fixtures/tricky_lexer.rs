// Lexer-regression fixture: multi-byte char literals vs lifetimes — the
// scanner once mis-read `'é'` as lifetime-`é` followed by a bare quote,
// which then swallowed the rest of the file as string text. Every rule
// trigger below is inert (string/char/comment text); zero findings expected.

pub fn multibyte<'é, 'a>(s: &'a str) -> (char, char, char, &'a str) {
    let one = 'é'; // two UTF-8 bytes
    let two = '√'; // three UTF-8 bytes
    let three = '🦀'; // four UTF-8 bytes
    let esc = '\u{2192}';
    let after = "still a string, not code: .unwrap() == 0.0 panic!";
    let _ = (esc, &after);
    let lt: &'é str = "lifetime with a multi-byte name";
    let _ = lt;
    (one, two, three, s)
}
