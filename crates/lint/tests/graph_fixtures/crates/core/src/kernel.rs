//! Fixture: kernel entry points for the graph-rule corpus.

pub fn step(x: u32) -> u32 {
    let y = helpers::prep(x);
    rng::jitter(y)
}

pub fn quiet(x: u32) -> u32 {
    x + 1
}
