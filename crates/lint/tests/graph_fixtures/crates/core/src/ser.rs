//! Fixture: wall-clock sinks reachable from the serialize entry point.

pub fn save(buf: &mut Vec<u8>) {
    stamp(buf);
}

fn stamp(buf: &mut Vec<u8>) {
    let t = std::time::Instant::now();
    buf.push(t.elapsed().as_secs() as u8);
}
