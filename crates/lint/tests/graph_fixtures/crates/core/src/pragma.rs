//! Fixture: a kernel-reachable panic sink suppressed by an `allow` pragma.

pub fn entry_shim(x: u32) -> u32 {
    guarded(x)
}

fn guarded(x: u32) -> u32 {
    // egeria-lint: allow(panic-reachable-from-kernel): fixture — audited
    x.checked_mul(2).expect("fixture")
}
