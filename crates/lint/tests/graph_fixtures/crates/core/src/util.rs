//! Fixture: the panic sink lives two hops from the kernel entry.

pub fn deep(x: u32) -> u32 {
    checked(x).unwrap()
}

fn checked(x: u32) -> Option<u32> {
    x.checked_add(1)
}
