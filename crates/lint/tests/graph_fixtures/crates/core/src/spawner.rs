//! Fixture: spawn sites — discarded, bound-and-joined, and `let _ =`.

pub fn fire_and_forget() {
    std::thread::spawn(|| work());
}

pub fn supervised() {
    let h = std::thread::spawn(|| work());
    h.join().ok();
}

pub fn deliberately_dropped() {
    let _ = std::thread::spawn(|| work());
}

fn work() {}
