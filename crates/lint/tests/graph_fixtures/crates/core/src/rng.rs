//! Fixture: entropy sink reachable from the kernel entry.

pub fn jitter(x: u32) -> u32 {
    let r = rand::thread_rng().gen::<u32>();
    x ^ r
}
