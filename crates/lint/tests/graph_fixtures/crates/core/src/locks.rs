//! Fixture: `a` before `b` in one path, `b` before `a` in the other — a
//! lock-order cycle the SCC pass must report exactly once.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
