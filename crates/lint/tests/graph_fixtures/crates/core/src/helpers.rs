//! Fixture: mid-tier helper between the kernel entry and the panic sink.

pub fn prep(x: u32) -> u32 {
    util::deep(x)
}
