//! Integration tests for the graph-rule tier: the seeded fixture mini-tree
//! under `tests/graph_fixtures/` (known call chains, exact findings, exact
//! witness-path text), the `--json` / baseline-ratchet binary surface, and
//! the workspace-wide gate mirroring `lint_tests::workspace_is_clean`.

use egeria_lint::{json, lint_tree, load_config, rules_graph, Tier};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/graph_fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The graph corpus findings, down to (path, line, col, rule, tier). The
/// pragma fixture's reachable `.expect()` must NOT appear (suppressed), and
/// the bound-and-joined spawn in `supervised` must not be flagged.
#[test]
fn graph_fixture_findings_are_exact() {
    let root = fixtures_root();
    let cfg = load_config(&root).expect("fixture lint.toml");
    let report = lint_tree(&root, &cfg).expect("lint graph fixtures");
    let got: Vec<(String, u32, u32, &str, Tier)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.col, f.rule, f.tier))
        .collect();
    let want: Vec<(String, u32, u32, &str, Tier)> = [
        ("crates/core/src/locks.rs", 13, 25, rules_graph::LOCK_ORDER, Tier::Warn),
        ("crates/core/src/rng.rs", 4, 19, rules_graph::ENTROPY_REACHABLE, Tier::Deny),
        ("crates/core/src/ser.rs", 8, 24, rules_graph::WALLCLOCK_REACHABLE, Tier::Deny),
        ("crates/core/src/ser.rs", 9, 16, rules_graph::WALLCLOCK_REACHABLE, Tier::Deny),
        ("crates/core/src/spawner.rs", 4, 18, rules_graph::UNJOINED_SPAWN, Tier::Deny),
        ("crates/core/src/spawner.rs", 13, 26, rules_graph::UNJOINED_SPAWN, Tier::Deny),
        ("crates/core/src/util.rs", 4, 16, rules_graph::PANIC_REACHABLE, Tier::Deny),
    ]
    .into_iter()
    .map(|(p, l, c, r, t)| (p.to_string(), l, c, r, t))
    .collect();
    assert_eq!(got, want);
}

/// The multi-hop witness call path renders hop-by-hop in file:line:col
/// form: entry definition site, then each callsite in its caller's file,
/// then the sink.
#[test]
fn panic_witness_path_text_is_exact() {
    let root = fixtures_root();
    let cfg = load_config(&root).expect("fixture lint.toml");
    let report = lint_tree(&root, &cfg).expect("lint graph fixtures");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == rules_graph::PANIC_REACHABLE)
        .expect("panic-reachable finding");
    assert_eq!(
        f.message,
        "`.unwrap()` reachable from a kernel entry point; a panic \
         mid-train-step breaks checkpoint/resume and freezing-timeline \
         replay; witness: \
         egeria_core::kernel::step (crates/core/src/kernel.rs:3:8) \
         \u{2192} egeria_core::helpers::prep (crates/core/src/kernel.rs:4:22) \
         \u{2192} egeria_core::util::deep (crates/core/src/helpers.rs:4:11) \
         \u{2192} .unwrap() (crates/core/src/util.rs:4:16)"
    );
}

/// The lock-order cycle names both locks and cites the held→acquired edge
/// in each direction.
#[test]
fn lock_order_cycle_cites_both_directions() {
    let root = fixtures_root();
    let cfg = load_config(&root).expect("fixture lint.toml");
    let report = lint_tree(&root, &cfg).expect("lint graph fixtures");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == rules_graph::LOCK_ORDER)
        .expect("lock-order finding");
    assert_eq!(f.tier, Tier::Warn);
    assert!(f.message.contains("cycle among `a`, `b`"), "{}", f.message);
    assert!(
        f.message
            .contains("`a` held in egeria_core::locks::Pair::ab (crates/core/src/locks.rs:13:25) then `b` acquired (crates/core/src/locks.rs:14:25)"),
        "{}",
        f.message
    );
    assert!(
        f.message
            .contains("`b` held in egeria_core::locks::Pair::ba (crates/core/src/locks.rs:19:25) then `a` acquired (crates/core/src/locks.rs:20:25)"),
        "{}",
        f.message
    );
}

/// `--json` output parses with the dependency-free reader, carries every
/// corpus finding in stable (rule, file, line) order, and embeds the
/// witness arrows.
#[test]
fn json_output_parses_and_is_stably_sorted() {
    let out = Command::new(env!("CARGO_BIN_EXE_egeria-lint"))
        .args(["--workspace", "--json", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("run egeria-lint --json");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 json");
    let entries = json::parse_baseline(&stdout).expect("parse --json output");
    assert_eq!(entries.len(), 7);
    let rules: Vec<&str> = entries.iter().map(|e| e.rule.as_str()).collect();
    let mut sorted = rules.clone();
    sorted.sort();
    assert_eq!(rules, sorted, "findings must sort by rule first");
    assert!(stdout.contains("\u{2192}"), "witness arrows survive JSON");
}

/// The warn-tier ratchet end-to-end: bless a baseline, re-run against it,
/// and the lock-order warn finding no longer counts as new (the corpus
/// still fails on its deny findings; dropping them is the fixture tree's
/// job, not the baseline's).
#[test]
fn bless_then_rerun_ratchets_warn_findings() {
    let dir = std::env::temp_dir().join(format!("egeria-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let baseline = dir.join("baseline.json");

    let bless = Command::new(env!("CARGO_BIN_EXE_egeria-lint"))
        .args(["--workspace", "--bless-baseline", "--baseline"])
        .arg(&baseline)
        .args(["--root"])
        .arg(fixtures_root())
        .output()
        .expect("bless run");
    let doc = std::fs::read_to_string(&baseline).expect("blessed baseline");
    let entries = json::parse_baseline(&doc).expect("parse blessed baseline");
    assert_eq!(entries.len(), 1, "only the warn finding is baselined: {doc}");
    assert_eq!(entries[0].rule, "lock-order");
    let stderr = String::from_utf8_lossy(&bless.stderr);
    assert!(stderr.contains("0 new vs baseline"), "stderr:\n{stderr}");

    let rerun = Command::new(env!("CARGO_BIN_EXE_egeria-lint"))
        .args(["--workspace", "--baseline"])
        .arg(&baseline)
        .args(["--root"])
        .arg(fixtures_root())
        .output()
        .expect("rerun");
    let stderr = String::from_utf8_lossy(&rerun.stderr);
    assert!(
        stderr.contains("6 deny, 1 warn (0 new vs baseline)"),
        "stderr:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The workspace-wide graph gate, mirroring `lint_tests::workspace_is_clean`:
/// zero deny findings, and every warn finding covered by the checked-in
/// `lint-baseline.json`.
#[test]
fn workspace_graph_gate_holds() {
    let root = repo_root();
    let cfg = load_config(&root).expect("repo lint.toml");
    for rule in rules_graph::GRAPH_RULES {
        assert!(
            cfg.has_rule(rule),
            "repo lint.toml must declare [rules.{rule}] so the graph tier runs"
        );
    }
    assert!(
        !cfg.graph.list("kernel_entries").is_empty(),
        "repo lint.toml must declare [graph] kernel_entries"
    );
    let report = lint_tree(&root, &cfg).expect("lint workspace");
    let deny: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.tier == Tier::Deny)
        .map(|f| f.to_string())
        .collect();
    assert!(deny.is_empty(), "workspace has deny findings:\n{}", deny.join("\n"));

    let baseline_src = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("checked-in lint-baseline.json");
    let baseline = json::parse_baseline(&baseline_src).expect("parse lint-baseline.json");
    let fresh: Vec<String> = json::new_warn_findings(&report.findings, &baseline)
        .iter()
        .map(|f| f.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "workspace has warn findings not covered by lint-baseline.json:\n{}",
        fresh.join("\n")
    );
}
