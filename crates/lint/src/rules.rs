//! The lint rules. Each rule works on the token stream / comments produced
//! by [`crate::lexer::scan`], so matches inside strings, raw strings, char
//! literals, and comments are structurally impossible.
//!
//! Rule ids (used in `lint.toml` tables and `allow` pragmas):
//!
//! - `unsafe-needs-safety` — every `unsafe` keyword (block, fn, impl, trait)
//!   needs a `// SAFETY:` comment on the same line or within the 3 lines
//!   above it.
//! - `no-panic-in-kernels` — `.unwrap()`, `.expect(…)` and `panic!` are
//!   banned in the configured hot-path modules.
//! - `float-exact-eq` — direct `==`/`!=` against a float literal (the
//!   `0 · NaN` multiply-skip bug class).
//! - `determinism` — no wall-clock/entropy calls in kernel or serialization
//!   modules, no hash collections in serialization modules, and
//!   `thread::spawn`/`thread::Builder` only in the sanctioned modules.
//! - `vendored-deps-only` — every external `[workspace.dependencies]` crate
//!   must have a `[patch.crates-io]` vendor entry (checked against the root
//!   manifest, not per source file).
//! - `no-wallclock-sleep-retry` — retry/backoff and supervision code must
//!   take time through the injected `Clock` trait; `thread::sleep`,
//!   `Instant::now` and `SystemTime` are banned in the configured modules
//!   (the `RealClock` implementation is the sanctioned carve-out).
//! - `arch-intrinsics-confined` — `std::arch`/`core::arch` may appear only
//!   under the path prefixes listed in the rule's `allowed` key (the SIMD
//!   dispatch layer), so ISA-specific intrinsics never leak into generic
//!   kernel or model code.

use crate::config::{path_matches, Config};
use crate::lexer::{Scan, TokKind};
use std::collections::{BTreeMap, BTreeSet};

pub const UNSAFE_NEEDS_SAFETY: &str = "unsafe-needs-safety";
pub const NO_PANIC_IN_KERNELS: &str = "no-panic-in-kernels";
pub const FLOAT_EXACT_EQ: &str = "float-exact-eq";
pub const DETERMINISM: &str = "determinism";
pub const VENDORED_DEPS_ONLY: &str = "vendored-deps-only";
pub const NO_WALLCLOCK_SLEEP_RETRY: &str = "no-wallclock-sleep-retry";
pub const ARCH_INTRINSICS_CONFINED: &str = "arch-intrinsics-confined";

/// All rule ids (token tier + graph tier), for pragma validation.
pub const ALL_RULES: &[&str] = &[
    UNSAFE_NEEDS_SAFETY,
    NO_PANIC_IN_KERNELS,
    FLOAT_EXACT_EQ,
    DETERMINISM,
    VENDORED_DEPS_ONLY,
    NO_WALLCLOCK_SLEEP_RETRY,
    ARCH_INTRINSICS_CONFINED,
    crate::rules_graph::PANIC_REACHABLE,
    crate::rules_graph::WALLCLOCK_REACHABLE,
    crate::rules_graph::ENTROPY_REACHABLE,
    crate::rules_graph::LOCK_ORDER,
    crate::rules_graph::UNJOINED_SPAWN,
];

/// Enforcement tier. `Deny` findings always fail the gate; `Warn` findings
/// are ratcheted against the checked-in `lint-baseline.json` — known ones
/// pass, new ones fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    Deny,
    Warn,
}

impl Tier {
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Deny => "deny",
            Tier::Warn => "warn",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub tier: Tier,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Lines suppressed per rule by `// egeria-lint: allow(<rules>)` pragmas. A
/// pragma suppresses findings on its own line (trailing form) and on the
/// next *code* line after the comment (standalone form) — so a pragma whose
/// justification wraps over several comment lines still covers the code it
/// annotates.
pub(crate) fn pragma_suppressions(scan: &Scan) -> BTreeMap<String, BTreeSet<u32>> {
    let mut out: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for c in &scan.comments {
        // The pragma must lead the comment (after doc-comment markers), so
        // prose that merely *mentions* the syntax is not a pragma.
        let lead = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = lead.strip_prefix("egeria-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(list) = rest
            .strip_prefix("allow(")
            .and_then(|s| s.split(')').next())
        else {
            continue;
        };
        // Subsequent `//` lines are separate comments, so walk past every
        // comment that directly continues this one before locating the code
        // line the pragma annotates.
        let mut end = c.end_line;
        for follow in &scan.comments {
            if follow.line == end + 1 {
                end = follow.end_line;
            }
        }
        let next_code_line = scan.toks.iter().find(|t| t.line > end).map(|t| t.line);
        for rule in list.split(',') {
            let rule = rule.trim();
            if rule.is_empty() {
                continue;
            }
            let lines = out.entry(rule.to_string()).or_default();
            lines.insert(c.line);
            if let Some(l) = next_code_line {
                lines.insert(l);
            }
        }
    }
    out
}

/// Runs every token-level rule over one scanned file. `rel` is the
/// repo-relative path (forward slashes) used for rule scoping.
pub fn lint_scan(rel: &str, scan: &Scan, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Files under a `tests/` or `benches/` directory are test code in their
    // entirety; `#[cfg(test)]` regions cover the rest.
    let file_is_test = rel
        .split('/')
        .any(|part| part == "tests" || part == "benches");
    let is_test_line = |line: u32| file_is_test || scan.is_test_line(line);

    if cfg.rule_applies(UNSAFE_NEEDS_SAFETY, rel) {
        unsafe_needs_safety(rel, scan, &mut findings);
    }
    if cfg.rule_applies(NO_PANIC_IN_KERNELS, rel) {
        let skip_tests = cfg.rule(NO_PANIC_IN_KERNELS).bool("skip_test_code", true);
        no_panic(rel, scan, &mut findings, |l| skip_tests && is_test_line(l));
    }
    if cfg.rule_applies(FLOAT_EXACT_EQ, rel) {
        let skip_tests = cfg.rule(FLOAT_EXACT_EQ).bool("skip_test_code", true);
        float_exact_eq(rel, scan, &mut findings, |l| skip_tests && is_test_line(l));
    }
    determinism(rel, scan, cfg, &mut findings);
    if cfg.rule_applies(NO_WALLCLOCK_SLEEP_RETRY, rel) {
        let skip_tests = cfg
            .rule(NO_WALLCLOCK_SLEEP_RETRY)
            .bool("skip_test_code", true);
        no_wallclock_sleep_retry(rel, scan, &mut findings, |l| skip_tests && is_test_line(l));
    }
    if cfg.rule_applies(ARCH_INTRINSICS_CONFINED, rel) {
        let sanctioned = cfg
            .rule(ARCH_INTRINSICS_CONFINED)
            .list("allowed")
            .iter()
            .any(|p| path_matches(rel, p));
        if !sanctioned {
            arch_intrinsics_confined(rel, scan, &mut findings);
        }
    }

    let suppressed = pragma_suppressions(scan);
    findings.retain(|f| {
        !suppressed
            .get(f.rule)
            .is_some_and(|lines| lines.contains(&f.line))
    });
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// `unsafe-needs-safety`: every `unsafe` keyword must have a comment
/// containing `SAFETY:` trailing on the same line or ending within the 3
/// lines above it.
fn unsafe_needs_safety(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    for t in &scan.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let covered = scan.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && t.line - c.end_line <= 3
        });
        if !covered {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: UNSAFE_NEEDS_SAFETY,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: "`unsafe` without an adjacent `// SAFETY:` comment (same line or \
                          the 3 lines above)"
                    .to_string(),
            });
        }
    }
}

/// `no-panic-in-kernels`: `.unwrap()`, `.expect(` and `panic!` in hot-path
/// modules.
fn no_panic(rel: &str, scan: &Scan, findings: &mut Vec<Finding>, skip: impl Fn(u32) -> bool) {
    let toks = &scan.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(t.line) {
            continue;
        }
        let prev_is =
            |text: &str| i > 0 && toks[i - 1].kind == TokKind::Op && toks[i - 1].text == text;
        let next_is = |text: &str| {
            toks.get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Op && n.text == text)
        };
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => prev_is(".") && next_is("("),
            "panic" => next_is("!"),
            _ => false,
        };
        if flagged {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: NO_PANIC_IN_KERNELS,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in a hot-path kernel module; return a Result or restructure \
                     so the failure is impossible",
                    if t.text == "panic" {
                        "panic!"
                    } else {
                        t.text.as_str()
                    }
                ),
            });
        }
    }
}

/// `float-exact-eq`: `==` / `!=` with a float literal on either side
/// (including a negated literal on the right).
fn float_exact_eq(rel: &str, scan: &Scan, findings: &mut Vec<Finding>, skip: impl Fn(u32) -> bool) {
    let toks = &scan.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Op || (t.text != "==" && t.text != "!=") || skip(t.line) {
            continue;
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let rhs_float = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Float => true,
            Some(n) if n.kind == TokKind::Op && n.text == "-" => {
                toks.get(i + 2).is_some_and(|m| m.kind == TokKind::Float)
            }
            _ => false,
        };
        if lhs_float || rhs_float {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: FLOAT_EXACT_EQ,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "exact float comparison `{}` against a literal (the `0 \u{b7} NaN` \
                     multiply-skip bug class); compare with a tolerance, restructure, or \
                     pragma with a justification",
                    t.text
                ),
            });
        }
    }
}

/// `determinism`: three sub-checks scoped by the rule's config lists.
fn determinism(rel: &str, scan: &Scan, cfg: &Config, findings: &mut Vec<Finding>) {
    let rc = cfg.rule(DETERMINISM);
    let in_list = |key: &str| rc.list(key).iter().any(|p| path_matches(rel, p));
    let deterministic_module = in_list("kernel_paths") || in_list("serialize_paths");
    let serialize_module = in_list("serialize_paths");
    let spawn_sanctioned = in_list("spawn_allowed");
    let toks = &scan.toks;

    let seq = |i: usize, parts: &[&str]| -> bool {
        parts.iter().enumerate().all(|(k, p)| {
            toks.get(i + k)
                .is_some_and(|t| t.text == *p && matches!(t.kind, TokKind::Ident | TokKind::Op))
        })
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if deterministic_module {
            let banned_time = (t.text == "Instant" && seq(i, &["Instant", "::", "now"]))
                || t.text == "SystemTime"
                || t.text == "thread_rng"
                || t.text == "from_entropy";
            if banned_time {
                findings.push(Finding {
                    tier: Tier::Deny,
                    rule: DETERMINISM,
                    path: rel.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` in a determinism-critical module; kernels and \
                         checkpoint/serialize code must not read wall clocks or entropy",
                        t.text
                    ),
                });
            }
        }
        if serialize_module && (t.text == "HashMap" || t.text == "HashSet") {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: DETERMINISM,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in a serialization path; hash iteration order is \
                     nondeterministic — use BTreeMap/BTreeSet or a Vec",
                    t.text
                ),
            });
        }
        if !spawn_sanctioned
            && t.text == "thread"
            && (seq(i, &["thread", "::", "spawn"]) || seq(i, &["thread", "::", "Builder"]))
        {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: DETERMINISM,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: "thread spawn outside the sanctioned modules (see \
                          `[rules.determinism] spawn_allowed` in lint.toml)"
                    .to_string(),
            });
        }
    }
}

/// `no-wallclock-sleep-retry`: retry/backoff/supervision modules must route
/// every wait and timestamp through the injected `Clock` trait so breaker
/// cooldowns and exponential backoff replay identically under
/// `VirtualClock`. Flags `thread::sleep`, `Instant::now`, and `SystemTime`.
fn no_wallclock_sleep_retry(
    rel: &str,
    scan: &Scan,
    findings: &mut Vec<Finding>,
    skip: impl Fn(u32) -> bool,
) {
    let toks = &scan.toks;
    let seq = |i: usize, parts: &[&str]| -> bool {
        parts.iter().enumerate().all(|(k, p)| {
            toks.get(i + k)
                .is_some_and(|t| t.text == *p && matches!(t.kind, TokKind::Ident | TokKind::Op))
        })
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(t.line) {
            continue;
        }
        let flagged = (t.text == "thread" && seq(i, &["thread", "::", "sleep"]))
            || (t.text == "Instant" && seq(i, &["Instant", "::", "now"]))
            || t.text == "SystemTime";
        if flagged {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: NO_WALLCLOCK_SLEEP_RETRY,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in retry/backoff code; waits and timestamps must go through \
                     the injected `Clock` trait so schedules replay under VirtualClock",
                    t.text
                ),
            });
        }
    }
}

/// `arch-intrinsics-confined`: `std::arch` / `core::arch` outside the
/// sanctioned SIMD dispatch layer. The caller has already checked the
/// `allowed` path-prefix list, so every hit here is a finding — per-ISA
/// intrinsics must stay behind the portable vector traits.
fn arch_intrinsics_confined(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    let toks = &scan.toks;
    let seq = |i: usize, parts: &[&str]| -> bool {
        parts.iter().enumerate().all(|(k, p)| {
            toks.get(i + k)
                .is_some_and(|t| t.text == *p && matches!(t.kind, TokKind::Ident | TokKind::Op))
        })
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "std" && t.text != "core") {
            continue;
        }
        if seq(i, &[&t.text, "::", "arch"]) {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: ARCH_INTRINSICS_CONFINED,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}::arch` outside the sanctioned SIMD module; ISA intrinsics are \
                     confined to the `allowed` paths in \
                     `[rules.arch-intrinsics-confined]` (use the portable \
                     egeria_tensor::simd dispatch layer instead)",
                    t.text
                ),
            });
        }
    }
}

/// `vendored-deps-only`: parses the root manifest's
/// `[workspace.dependencies]` and `[patch.crates-io]` tables and reports
/// every external dependency (no `path =` in its value) that lacks a vendor
/// patch entry.
pub fn check_manifest(manifest_rel: &str, manifest_src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    let mut patched: BTreeSet<String> = BTreeSet::new();
    let mut externals: Vec<(String, u32)> = Vec::new();

    for (idx, raw) in manifest_src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|s| s.split(']').next()) {
            section = h.trim().trim_matches('"').to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        match section.as_str() {
            "workspace.dependencies" if !value.contains("path") => {
                externals.push((key, idx as u32 + 1));
            }
            "patch.crates-io" => {
                patched.insert(key);
            }
            _ => {}
        }
    }

    for (dep, line) in externals {
        if !patched.contains(&dep) {
            findings.push(Finding {
                tier: Tier::Deny,
                rule: VENDORED_DEPS_ONLY,
                path: manifest_rel.to_string(),
                line,
                col: 1,
                message: format!(
                    "workspace dependency `{dep}` has no `[patch.crates-io]` vendor entry; \
                     the build environment is offline and every external crate must resolve \
                     to vendor/"
                ),
            });
        }
    }
    findings
}

/// Validates the rules named by `allow` pragmas so a typo'd pragma is an
/// error instead of a silent no-op.
pub fn unknown_pragma_rules(rel: &str, scan: &Scan) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rule, lines) in pragma_suppressions(scan) {
        if !ALL_RULES.contains(&rule.as_str()) {
            let line = lines.iter().next().copied().unwrap_or(1);
            findings.push(Finding {
                tier: Tier::Deny,
                rule: "unknown-pragma",
                path: rel.to_string(),
                line,
                col: 1,
                message: format!("`allow({rule})` names an unknown rule id"),
            });
        }
    }
    findings
}
