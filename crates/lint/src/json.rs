//! Machine-readable findings output (`--json`) and the warn-tier baseline
//! ratchet (`lint-baseline.json`, `--bless-baseline`).
//!
//! The document shape (schema 1):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "files_scanned": 123,
//!   "findings": [
//!     {"rule": "lock-order", "tier": "warn", "path": "crates/x/src/a.rs",
//!      "line": 10, "col": 5, "message": "…"}
//!   ]
//! }
//! ```
//!
//! Findings are sorted by (rule, path, line, col, message) — a stable order
//! so diffs of the baseline and of `--json` output are meaningful.
//!
//! The ratchet compares the *current* warn-tier findings against the
//! checked-in baseline by `(rule, path)` occurrence counts, deliberately
//! ignoring line numbers and message text: unrelated edits move lines and
//! witness paths around, and the ratchet should only trip when a new
//! violation appears (or an existing one multiplies). `--bless-baseline`
//! rewrites the file from the current findings.
//!
//! The parser below reads exactly this document family (and rejects
//! everything else); the lint stays dependency-free.

use crate::rules::{Finding, Tier};
use std::collections::BTreeMap;

/// Stable sort used for JSON output and the baseline: rule, file, line.
pub fn stable_sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.rule, a.path.as_str(), a.line, a.col, a.message.as_str())
            .cmp(&(b.rule, b.path.as_str(), b.line, b.col, b.message.as_str()))
    });
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the findings document. `findings` is sorted in place first.
pub fn render(findings: &mut [Finding], files_scanned: usize) -> String {
    stable_sort(findings);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        escape(f.rule, &mut out);
        out.push_str("\", \"tier\": \"");
        out.push_str(f.tier.as_str());
        out.push_str("\", \"path\": \"");
        escape(&f.path, &mut out);
        out.push_str(&format!("\", \"line\": {}, \"col\": {}, \"message\": \"", f.line, f.col));
        escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the warn-tier subset of `findings` as a baseline document.
/// `files_scanned` is omitted so the baseline only changes when the warn
/// findings themselves do — adding an unrelated file never dirties it.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut warn: Vec<Finding> = findings
        .iter()
        .filter(|f| f.tier == Tier::Warn)
        .cloned()
        .collect();
    stable_sort(&mut warn);
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"findings\": [");
    for (i, f) in warn.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        escape(f.rule, &mut out);
        out.push_str("\", \"tier\": \"warn\", \"path\": \"");
        escape(&f.path, &mut out);
        out.push_str(&format!("\", \"line\": {}, \"col\": {}, \"message\": \"", f.line, f.col));
        escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !warn.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// One baseline entry, as parsed back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
}

/// Parses a findings/baseline document, returning the `(rule, path)` of
/// every finding in it.
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineEntry>, String> {
    let v = JsonParser::new(src).parse_document()?;
    let obj = v.as_object().ok_or("baseline: top level must be an object")?;
    let findings = obj
        .get("findings")
        .ok_or("baseline: missing \"findings\" array")?
        .as_array()
        .ok_or("baseline: \"findings\" must be an array")?;
    let mut out = Vec::new();
    for f in findings {
        let fo = f.as_object().ok_or("baseline: finding must be an object")?;
        let field = |k: &str| -> Result<String, String> {
            fo.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline: finding missing string field \"{k}\""))
        };
        out.push(BaselineEntry {
            rule: field("rule")?,
            path: field("path")?,
        });
    }
    Ok(out)
}

/// Warn-tier findings not covered by the baseline: every `(rule, path)`
/// occurrence beyond the baselined count is new.
pub fn new_warn_findings<'a>(
    findings: &'a [Finding],
    baseline: &[BaselineEntry],
) -> Vec<&'a Finding> {
    let mut budget: BTreeMap<(String, String), usize> = BTreeMap::new();
    for b in baseline {
        *budget.entry((b.rule.clone(), b.path.clone())).or_default() += 1;
    }
    let mut fresh = Vec::new();
    for f in findings {
        if f.tier != Tier::Warn {
            continue;
        }
        let key = (f.rule.to_string(), f.path.clone());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => fresh.push(f),
        }
    }
    fresh
}

// --- minimal JSON value parser ---------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    src: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> Self {
        JsonParser {
            src: src.as_bytes(),
            i: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.i != self.src.len() {
            return Err(format!("json: trailing bytes at offset {}", self.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .src
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.src.get(self.i) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(_) => self.parse_number(),
            None => Err("json: unexpected end of input".to_string()),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.src[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("json: invalid literal at offset {}", self.i))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self
            .src
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.i])
            .map_err(|_| "json: bad number bytes".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("json: invalid number `{text}`"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.src.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.src.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.i + 1..self.i + 5)
                                .ok_or("json: truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "json: bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "json: bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err("json: bad escape".to_string()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through byte-wise; the
                    // source was a &str, so re-assembling is safe.
                    let len = utf8_len(c);
                    let bytes = self
                        .src
                        .get(self.i..self.i + len)
                        .ok_or("json: truncated utf-8")?;
                    out.push_str(
                        std::str::from_utf8(bytes).map_err(|_| "json: invalid utf-8")?,
                    );
                    self.i += len;
                }
                None => return Err("json: unterminated string".to_string()),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.i += 1; // [
        let mut out = Vec::new();
        self.skip_ws();
        if self.src.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.src.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("json: expected , or ] at offset {}", self.i)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.i += 1; // {
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.src.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            if self.src.get(self.i) != Some(&b'"') {
                return Err(format!("json: expected object key at offset {}", self.i));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.src.get(self.i) != Some(&b':') {
                return Err(format!("json: expected : at offset {}", self.i));
            }
            self.i += 1;
            let v = self.parse_value()?;
            out.insert(key, v);
            self.skip_ws();
            match self.src.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("json: expected , or }} at offset {}", self.i)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, tier: Tier, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            tier,
            path: path.to_string(),
            line,
            col: 1,
            message: format!("msg for {rule} at {path}:{line} \"quoted\""),
        }
    }

    #[test]
    fn render_then_parse_round_trips() {
        let mut findings = vec![
            finding("lock-order", Tier::Warn, "crates/b.rs", 9),
            finding("lock-order", Tier::Warn, "crates/a.rs", 3),
            finding("unjoined-spawn", Tier::Deny, "crates/a.rs", 1),
        ];
        let doc = render(&mut findings, 42);
        // Stable sort: rule, then path, then line.
        assert_eq!(findings[0].path, "crates/a.rs");
        assert_eq!(findings[1].path, "crates/b.rs");
        assert_eq!(findings[2].rule, "unjoined-spawn");
        let parsed = parse_baseline(&doc).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].rule, "lock-order");
        assert_eq!(parsed[0].path, "crates/a.rs");
    }

    #[test]
    fn ratchet_matches_by_rule_path_counts() {
        let baseline = vec![BaselineEntry {
            rule: "lock-order".into(),
            path: "crates/a.rs".into(),
        }];
        // Same (rule, path), different line: covered by the baseline.
        let moved = vec![finding("lock-order", Tier::Warn, "crates/a.rs", 99)];
        assert!(new_warn_findings(&moved, &baseline).is_empty());
        // A second occurrence in the same file is new.
        let doubled = vec![
            finding("lock-order", Tier::Warn, "crates/a.rs", 1),
            finding("lock-order", Tier::Warn, "crates/a.rs", 2),
        ];
        assert_eq!(new_warn_findings(&doubled, &baseline).len(), 1);
        // A different file is new.
        let other = vec![finding("lock-order", Tier::Warn, "crates/b.rs", 1)];
        assert_eq!(new_warn_findings(&other, &baseline).len(), 1);
        // Deny findings never consult the baseline.
        let deny = vec![finding("unjoined-spawn", Tier::Deny, "crates/a.rs", 1)];
        assert!(new_warn_findings(&deny, &baseline).is_empty());
    }

    #[test]
    fn baseline_render_keeps_only_warn_tier() {
        let findings = vec![
            finding("unjoined-spawn", Tier::Deny, "crates/a.rs", 1),
            finding("lock-order", Tier::Warn, "crates/a.rs", 2),
        ];
        let doc = render_baseline(&findings);
        let parsed = parse_baseline(&doc).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].rule, "lock-order");
        assert!(!doc.contains("files_scanned"));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let mut none = Vec::new();
        let doc = render(&mut none, 7);
        assert!(doc.contains("\"findings\": []"));
        assert!(parse_baseline(&doc).unwrap().is_empty());
    }
}
