//! CLI for the workspace lint. Usage:
//!
//! ```text
//! egeria-lint --workspace [--root DIR]     # lint the whole tree + manifest
//! egeria-lint [--root DIR] FILE...         # lint specific files
//! ```
//!
//! Flags:
//!
//! * `--json` — emit the findings as a machine-readable document (schema 1,
//!   stable sort: rule, file, line) on stdout instead of one line per
//!   finding.
//! * `--baseline FILE` — warn-tier ratchet file (default:
//!   `<root>/lint-baseline.json` when it exists). Warn findings whose
//!   `(rule, path)` is covered by the baseline pass; new ones fail.
//! * `--bless-baseline` — rewrite the baseline from the current warn
//!   findings, then gate only the deny tier.
//!
//! Exits 0 when the gate passes (no deny findings, no new warn findings),
//! 1 when it fails, 2 on usage/config errors. The config is read from
//! `<root>/lint.toml`; `--root` defaults to the current directory (ci.sh
//! runs from the repo root).

#![forbid(unsafe_code)]

use egeria_lint::{json, Tier};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut as_json = false;
    let mut bless = false;
    let mut root = PathBuf::from(".");
    let mut baseline_arg: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => as_json = true,
            "--bless-baseline" => bless = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_arg = Some(PathBuf::from(path)),
                None => return usage("--baseline requires a file"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one file");
    }

    let cfg = match egeria_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("egeria-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let (mut findings, scanned) = if workspace {
        match egeria_lint::lint_tree(&root, &cfg) {
            Ok(report) => (report.findings, report.files_scanned),
            Err(e) => {
                eprintln!("egeria-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        let mut scanned = 0usize;
        for file in &files {
            let src = match std::fs::read_to_string(root.join(file)) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("egeria-lint: cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            findings.extend(egeria_lint::lint_source(file, &src, &cfg));
            scanned += 1;
        }
        (findings, scanned)
    };

    // Baseline: explicit flag wins; otherwise the conventional file at the
    // root, when present. No baseline → every warn finding is new.
    let baseline_path = baseline_arg.unwrap_or_else(|| root.join("lint-baseline.json"));
    if bless {
        let doc = json::render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!("egeria-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!("egeria-lint: blessed {}", baseline_path.display());
    }
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|src| json::parse_baseline(&src))
        {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("egeria-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let deny = findings.iter().filter(|f| f.tier == Tier::Deny).count();
    let new_warn = json::new_warn_findings(&findings, &baseline).len();
    let warn = findings.iter().filter(|f| f.tier == Tier::Warn).count();

    if as_json {
        print!("{}", json::render(&mut findings, scanned));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    if findings.is_empty() {
        eprintln!("egeria-lint: clean ({scanned} files scanned)");
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "egeria-lint: {deny} deny, {warn} warn ({new_warn} new vs baseline) \
         in {scanned} scanned file(s)"
    );
    if deny > 0 || new_warn > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: egeria-lint --workspace [--root DIR] [--json] \
                     [--baseline FILE] [--bless-baseline] | egeria-lint FILE...";

fn usage(msg: &str) -> ExitCode {
    eprintln!("egeria-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
