//! CLI for the workspace lint. Usage:
//!
//! ```text
//! egeria-lint --workspace [--root DIR]     # lint the whole tree + manifest
//! egeria-lint [--root DIR] FILE...         # lint specific files
//! ```
//!
//! Exits 0 when clean, 1 when there are findings, 2 on usage/config errors.
//! The config is read from `<root>/lint.toml`; `--root` defaults to the
//! current directory (ci.sh runs from the repo root).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: egeria-lint --workspace [--root DIR] | egeria-lint FILE...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one file");
    }

    let cfg = match egeria_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("egeria-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let (findings, scanned) = if workspace {
        match egeria_lint::lint_tree(&root, &cfg) {
            Ok(report) => (report.findings, report.files_scanned),
            Err(e) => {
                eprintln!("egeria-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        let mut scanned = 0usize;
        for file in &files {
            let src = match std::fs::read_to_string(root.join(file)) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("egeria-lint: cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            findings.extend(egeria_lint::lint_source(file, &src, &cfg));
            scanned += 1;
        }
        (findings, scanned)
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("egeria-lint: clean ({scanned} files scanned)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "egeria-lint: {} finding(s) in {scanned} scanned file(s)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("egeria-lint: {msg}");
    eprintln!("usage: egeria-lint --workspace [--root DIR] | egeria-lint FILE...");
    ExitCode::from(2)
}
