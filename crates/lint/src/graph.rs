//! The workspace symbol graph and conservative call graph.
//!
//! Name resolution is best-effort and deliberately pessimistic (DESIGN.md
//! §5h): a call that cannot be pinned to one definition resolves to *every*
//! plausible definition, so reachability over-approximates and a contract
//! violation cannot hide behind an ambiguous name. Concretely:
//!
//! - `path::to::f(...)` resolves through (in order) an exact
//!   fully-qualified match, the caller's `use` imports, the caller's own
//!   module, glob imports, then any workspace function whose qualified name
//!   ends with the written path segments.
//! - `self.f(...)` resolves to every method `f` on the caller's impl type
//!   (any impl block, any file).
//! - `recv.f(...)` with an unknown receiver resolves to every workspace
//!   method named `f` — except for a short list of ubiquitous std-shadowing
//!   names (`len`, `get`, `clone`, …) where the std method is
//!   overwhelmingly the real target; fanning those out would connect the
//!   whole workspace into one blob and drown real paths. This is the one
//!   place the graph trades recall for precision, and it is documented as
//!   such.
//! - Calls into `std`/vendored crates resolve to nothing: their effects
//!   (panics, clocks, entropy) are instead modeled as *sink tokens* at the
//!   call site itself (see [`crate::parser::SinkKind`]), which is exactly
//!   equivalent for the reachability rules.
//!
//! Edges into test functions are dropped: test helpers assert/unwrap by
//! design and are never part of the shipped call paths the rules guard.
//!
//! On top of name resolution, candidate edges are pruned by the *crate
//! dependency graph* ([`CallGraph::build_with_deps`]): crate A cannot call
//! crate B unless A's manifest transitively depends on B, so a pessimistic
//! fan-out can never invent an edge the compiler would reject. Files whose
//! crate is unknown (examples, benches, integration tests) stay unpruned.

use crate::parser::{CallKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Index of one function in the workspace: (file index, fn index).
pub type FnId = (usize, usize);

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub callee: FnId,
    /// Call-site position (in the caller's file).
    pub line: u32,
    pub col: u32,
}

/// Method names whose pessimistic fan-out is suppressed because the `std`
/// method of the same name is overwhelmingly the real target (see module
/// docs).
const UBIQUITOUS_METHODS: &[&str] = &[
    "len", "is_empty", "get", "get_mut", "push", "pop", "insert", "remove", "contains",
    "contains_key", "clone", "iter", "iter_mut", "into_iter", "next", "map", "and_then",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err", "as_ref", "as_mut",
    "as_str", "as_slice", "as_bytes", "to_string", "to_vec", "to_owned", "into", "from", "eq",
    "cmp", "partial_cmp", "hash", "fmt", "default", "drop", "extend", "clear", "sort",
    "sort_by", "split", "join", "send", "recv", "min", "max", "abs", "sqrt", "floor", "ceil",
    "exp", "ln", "powi", "powf",
];

/// The workspace call graph plus the symbol indexes used to build it.
pub struct CallGraph {
    /// Outgoing edges per function, deduplicated, deterministic order.
    pub edges: BTreeMap<FnId, Vec<Edge>>,
    /// Qualified-name lookup of every non-test function.
    by_qual: BTreeMap<String, FnId>,
    /// Free functions by bare name.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Methods by bare name.
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Methods by (impl type, name).
    methods_by_type: BTreeMap<(String, String), Vec<FnId>>,
    /// Functions by (second-to-last, last) qualified segments.
    by_suffix2: BTreeMap<(String, String), Vec<FnId>>,
}

impl CallGraph {
    /// Builds the symbol graph and resolves every call site in `files`,
    /// with no crate-dependency pruning (equivalent to an empty dep map).
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        CallGraph::build_with_deps(files, &BTreeMap::new())
    }

    /// Builds the call graph, dropping any candidate edge from crate A into
    /// crate B when `deps` knows A and A's (transitively closed) dependency
    /// set does not contain B — such an edge cannot compile, so keeping it
    /// would only manufacture false witness paths out of pessimistic
    /// fan-out. Crates absent from `deps`, and files with no derivable
    /// crate, are left unpruned (conservative default).
    pub fn build_with_deps(
        files: &[ParsedFile],
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> CallGraph {
        let mut g = CallGraph {
            edges: BTreeMap::new(),
            by_qual: BTreeMap::new(),
            by_name: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            methods_by_type: BTreeMap::new(),
            by_suffix2: BTreeMap::new(),
        };

        for (fi, pf) in files.iter().enumerate() {
            for (ki, f) in pf.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id: FnId = (fi, ki);
                g.by_qual.insert(f.qual.clone(), id);
                match &f.impl_type {
                    Some(ty) => {
                        g.methods_by_name
                            .entry(f.name.clone())
                            .or_default()
                            .push(id);
                        g.methods_by_type
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        g.by_name.entry(f.name.clone()).or_default().push(id);
                    }
                }
                let segs: Vec<&str> = f.qual.split("::").collect();
                if segs.len() >= 2 {
                    g.by_suffix2
                        .entry((
                            segs[segs.len() - 2].to_string(),
                            segs[segs.len() - 1].to_string(),
                        ))
                        .or_default()
                        .push(id);
                }
            }
        }

        for (fi, pf) in files.iter().enumerate() {
            for call in &pf.calls {
                let caller: FnId = (fi, call.caller);
                if pf.fns[call.caller].is_test {
                    continue;
                }
                let targets = g.resolve(files, fi, call.caller, &call.kind);
                if targets.is_empty() {
                    continue;
                }
                let out = g.edges.entry(caller).or_default();
                for callee in targets {
                    if callee == caller {
                        continue;
                    }
                    let from = &files[fi].krate;
                    let to = &files[callee.0].krate;
                    let dep_ok = from == to
                        || from.is_empty()
                        || to.is_empty()
                        || deps.get(from).is_none_or(|d| d.contains(to));
                    if !dep_ok {
                        continue;
                    }
                    let e = Edge {
                        callee,
                        line: call.line,
                        col: call.col,
                    };
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
        }
        g
    }

    /// The qualified display name of a function.
    pub fn qual<'a>(&self, files: &'a [ParsedFile], id: FnId) -> &'a str {
        &files[id.0].fns[id.1].qual
    }

    /// Functions whose qualified name matches an entry pattern: exact, or a
    /// `prefix::*` wildcard.
    pub fn match_entries(&self, patterns: &[String]) -> Vec<FnId> {
        let mut out = Vec::new();
        for pat in patterns {
            if let Some(prefix) = pat.strip_suffix("::*") {
                for (q, id) in &self.by_qual {
                    if q.strip_prefix(prefix)
                        .is_some_and(|rest| rest.starts_with("::"))
                    {
                        out.push(*id);
                    }
                }
            } else if let Some(id) = self.by_qual.get(pat) {
                out.push(*id);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn resolve(
        &self,
        files: &[ParsedFile],
        file_idx: usize,
        caller_idx: usize,
        kind: &CallKind,
    ) -> Vec<FnId> {
        let pf = &files[file_idx];
        match kind {
            CallKind::Direct(path) => self.resolve_direct(files, file_idx, caller_idx, path),
            CallKind::Method(name, receiver) => {
                let caller = &pf.fns[caller_idx];
                if receiver.as_deref() == Some("self") || receiver.as_deref() == Some("Self") {
                    if let Some(ty) = &caller.impl_type {
                        let hits = self.methods_of_type(ty, name);
                        if !hits.is_empty() {
                            return hits;
                        }
                    }
                }
                if UBIQUITOUS_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.methods_by_name
                    .get(name)
                    .cloned()
                    .unwrap_or_default()
            }
        }
    }

    fn methods_of_type(&self, ty: &str, name: &str) -> Vec<FnId> {
        self.methods_by_type
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn resolve_direct(
        &self,
        files: &[ParsedFile],
        file_idx: usize,
        caller_idx: usize,
        path: &[String],
    ) -> Vec<FnId> {
        let pf = &files[file_idx];
        let caller = &pf.fns[caller_idx];
        let name = &path[path.len() - 1];

        // Normalize crate/self/super prefixes against the caller's module.
        let mut norm: Vec<String> = Vec::new();
        for (k, seg) in path.iter().enumerate() {
            match seg.as_str() {
                "crate" if k == 0 => {
                    if !pf.krate.is_empty() {
                        norm.push(pf.krate.clone());
                    }
                }
                "self" if k == 0 => {
                    if !pf.krate.is_empty() {
                        norm.push(pf.krate.clone());
                    }
                    norm.extend(pf.module.iter().cloned());
                }
                "super" => {
                    norm.pop();
                }
                _ => norm.push(seg.clone()),
            }
        }
        if norm.is_empty() {
            return Vec::new();
        }

        // `Self::helper()` — methods of the enclosing impl type.
        if norm.len() == 2 && norm[0] == "Self" {
            if let Some(ty) = &caller.impl_type {
                return self.methods_of_type(ty, name);
            }
            return Vec::new();
        }

        // 1. Exact fully-qualified match.
        if norm.len() >= 2 {
            if let Some(&id) = self.by_qual.get(&norm.join("::")) {
                return vec![id];
            }
        }

        // 2. Imports: the first written segment is an imported leaf — splice
        // the import's full path in and retry exactly.
        if let Some(imp) = pf.imports.iter().find(|i| i.leaf == norm[0]) {
            let mut spliced = imp.path.clone();
            spliced.extend(norm[1..].iter().cloned());
            if let Some(&id) = self.by_qual.get(&spliced.join("::")) {
                return vec![id];
            }
            // Imported type + method: `use x::Engine; Engine::new()`.
            if spliced.len() >= 2 {
                let hits =
                    self.methods_of_type(&spliced[spliced.len() - 2], &spliced[spliced.len() - 1]);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }

        if norm.len() == 1 {
            // 3. Same module (same file's module path — free fn).
            let mut own = format!("{}::", pf.krate);
            for m in &pf.module {
                own.push_str(m);
                own.push_str("::");
            }
            own.push_str(name);
            if let Some(&id) = self.by_qual.get(&own) {
                return vec![id];
            }
            // 4. Glob imports.
            for g in &pf.glob_imports {
                let mut p = g.clone();
                p.push(name.clone());
                if let Some(&id) = self.by_qual.get(&p.join("::")) {
                    return vec![id];
                }
            }
            // 5. Pessimistic: free fns of the same bare name, same crate
            // first, then workspace-wide.
            if let Some(ids) = self.by_name.get(name) {
                let same_crate: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|&(fi, _)| files[fi].krate == pf.krate)
                    .collect();
                return if same_crate.is_empty() {
                    ids.clone()
                } else {
                    same_crate
                };
            }
            return Vec::new();
        }

        // 6. Suffix match on the last two written segments — catches
        // `gemm::matmul(...)`, `Type::new(...)`, `module::helper(...)`
        // wherever they live.
        let parent = &norm[norm.len() - 2];
        if let Some(ids) = self.by_suffix2.get(&(parent.clone(), name.clone())) {
            return ids.clone();
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse;

    fn build(files: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(rel, src)| parse(rel, &scan(src)))
            .collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    fn edge_names(files: &[ParsedFile], g: &CallGraph, from_qual: &str) -> Vec<String> {
        let id = *g.by_qual.get(from_qual).expect(from_qual);
        g.edges
            .get(&id)
            .map(|es| {
                es.iter()
                    .map(|e| g.qual(files, e.callee).to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn same_module_and_cross_module_direct_calls_resolve() {
        let (files, g) = build(&[
            (
                "crates/core/src/a.rs",
                "pub fn entry() { helper(); b::other(); }\nfn helper() {}",
            ),
            ("crates/core/src/b.rs", "pub fn other() {}"),
        ]);
        assert_eq!(
            edge_names(&files, &g, "egeria_core::a::entry"),
            vec!["egeria_core::a::helper", "egeria_core::b::other"]
        );
    }

    #[test]
    fn import_resolution_beats_suffix_matching() {
        let (files, g) = build(&[
            (
                "crates/core/src/a.rs",
                "use egeria_tensor::gemm::pack;\nfn f() { pack(); }",
            ),
            ("crates/tensor/src/gemm.rs", "pub fn pack() {}"),
            ("crates/serve/src/x.rs", "pub fn pack() {}"),
        ]);
        assert_eq!(
            edge_names(&files, &g, "egeria_core::a::f"),
            vec!["egeria_tensor::gemm::pack"]
        );
    }

    #[test]
    fn self_method_calls_stay_on_the_impl_type() {
        let (files, g) = build(&[(
            "crates/serve/src/engine.rs",
            "
            impl Engine { fn run(&self) { self.step(); } fn step(&self) {} }
            impl Other { fn step(&self) {} }
            ",
        )]);
        assert_eq!(
            edge_names(&files, &g, "egeria_serve::engine::Engine::run"),
            vec!["egeria_serve::engine::Engine::step"]
        );
    }

    #[test]
    fn unknown_receiver_fans_out_to_all_methods_of_that_name() {
        let (files, g) = build(&[(
            "crates/core/src/a.rs",
            "
            fn f(c: &dyn Clock) { c.now_virtual(); }
            impl RealClock { fn now_virtual(&self) {} }
            impl FakeClock { fn now_virtual(&self) {} }
            ",
        )]);
        let mut names = edge_names(&files, &g, "egeria_core::a::f");
        names.sort();
        assert_eq!(
            names,
            vec![
                "egeria_core::a::FakeClock::now_virtual",
                "egeria_core::a::RealClock::now_virtual"
            ]
        );
    }

    #[test]
    fn ubiquitous_method_names_do_not_fan_out() {
        let (files, g) = build(&[(
            "crates/core/src/a.rs",
            "
            fn f(v: &[u8]) { v.len(); }
            impl Pool { fn len(&self) {} }
            ",
        )]);
        assert!(edge_names(&files, &g, "egeria_core::a::f").is_empty());
    }

    #[test]
    fn edges_into_test_fns_are_dropped() {
        let (files, g) = build(&[(
            "crates/core/src/a.rs",
            "fn f() { t_helper(); }\n#[cfg(test)]\nmod tests { pub fn t_helper() {} }",
        )]);
        assert!(edge_names(&files, &g, "egeria_core::a::f").is_empty());
    }

    #[test]
    fn dep_pruning_drops_edges_into_non_dependency_crates() {
        let src = &[
            (
                "crates/tensor/src/pool.rs",
                "impl ThreadPool { fn new(b: Builder) { b.spin_up(); } }",
            ),
            (
                "crates/core/src/controller.rs",
                "impl AsyncController { fn spin_up(&self) {} }",
            ),
        ];
        // Unpruned, the unknown-receiver fan-out invents tensor -> core.
        let (files, g) = build(src);
        assert_eq!(
            edge_names(&files, &g, "egeria_tensor::pool::ThreadPool::new"),
            vec!["egeria_core::controller::AsyncController::spin_up"]
        );
        // With tensor's real (empty) dep set, the impossible edge is gone.
        let parsed: Vec<ParsedFile> = src
            .iter()
            .map(|(rel, s)| parse(rel, &scan(s)))
            .collect();
        let mut deps = BTreeMap::new();
        deps.insert("egeria_tensor".to_string(), BTreeSet::new());
        let pruned = CallGraph::build_with_deps(&parsed, &deps);
        assert!(edge_names(&parsed, &pruned, "egeria_tensor::pool::ThreadPool::new").is_empty());
    }

    #[test]
    fn entry_patterns_match_exact_and_wildcard() {
        let (_files, g) = build(&[(
            "crates/tensor/src/gemm.rs",
            "pub fn gemm() {}\npub fn pack_a() {}",
        )]);
        assert_eq!(g.match_entries(&["egeria_tensor::gemm::gemm".into()]).len(), 1);
        assert_eq!(g.match_entries(&["egeria_tensor::gemm::*".into()]).len(), 2);
        assert_eq!(g.match_entries(&["egeria_tensor::gem::*".into()]).len(), 0);
    }
}
