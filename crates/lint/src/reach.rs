//! Reachability over the call graph, with witness call paths.
//!
//! BFS from a set of entry functions gives, for every reachable function,
//! the *shortest* call chain back to an entry. That chain is rendered as a
//! witness path — `entry (file:line:col) → hop (file:line:col) → … → sink
//! (file:line:col)` — so every graph-rule finding is actionable: the
//! positions are the call sites to cut (or the sink to fix).

use crate::graph::{CallGraph, FnId};
use crate::parser::ParsedFile;
use std::collections::BTreeMap;

/// Result of one BFS: predecessor edges for every reached function.
pub struct Reachability {
    /// fn → (predecessor fn, call-site line, call-site col). Entries map to
    /// themselves.
    pred: BTreeMap<FnId, (FnId, u32, u32)>,
}

impl Reachability {
    /// BFS from `entries` over `graph`. Deterministic: entries are visited
    /// in sorted order and edges in insertion order.
    pub fn compute(graph: &CallGraph, entries: &[FnId]) -> Reachability {
        let mut pred: BTreeMap<FnId, (FnId, u32, u32)> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        let mut sorted = entries.to_vec();
        sorted.sort();
        sorted.dedup();
        for &e in &sorted {
            pred.insert(e, (e, 0, 0));
            queue.push_back(e);
        }
        while let Some(f) = queue.pop_front() {
            if let Some(edges) = graph.edges.get(&f) {
                for e in edges {
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        pred.entry(e.callee)
                    {
                        slot.insert((f, e.line, e.col));
                        queue.push_back(e.callee);
                    }
                }
            }
        }
        Reachability { pred }
    }

    /// Whether `f` is reachable from the entry set.
    pub fn contains(&self, f: FnId) -> bool {
        self.pred.contains_key(&f)
    }

    /// All reached functions, in deterministic order.
    pub fn reached(&self) -> impl Iterator<Item = FnId> + '_ {
        self.pred.keys().copied()
    }

    /// The entry-to-`f` call chain: `[(fn, callsite_line, callsite_col)]`
    /// where the position on each hop is the call site *in the previous
    /// hop's file* (0,0 for the entry itself).
    pub fn chain(&self, f: FnId) -> Vec<(FnId, u32, u32)> {
        let mut rev = Vec::new();
        let mut cur = f;
        while let Some(&(p, line, col)) = self.pred.get(&cur) {
            rev.push((cur, line, col));
            if p == cur {
                break;
            }
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// Renders the witness path from the nearest entry to `f`, then to a
    /// sink labeled `sink_what` at `sink_line:sink_col` (in `f`'s file).
    ///
    /// Format (single line): each hop is `qual (file:line:col)`; the entry
    /// hop carries its definition site, every later hop the call site in
    /// its caller, and the sink its own position:
    ///
    /// `a::f (a.rs:3:8) → b::g (a.rs:5:9) → panic! (b.rs:12:5)`
    pub fn witness(
        &self,
        files: &[ParsedFile],
        f: FnId,
        sink_what: &str,
        sink_line: u32,
        sink_col: u32,
    ) -> String {
        let mut parts: Vec<String> = Vec::new();
        let chain = self.chain(f);
        for (k, &(id, line, col)) in chain.iter().enumerate() {
            let item = &files[id.0].fns[id.1];
            if k == 0 {
                // Entry hop: its own definition site.
                parts.push(format!(
                    "{} ({}:{}:{})",
                    item.qual, files[id.0].rel, item.line, item.col
                ));
            } else {
                // Call site lives in the caller's file.
                let caller = chain[k - 1].0;
                parts.push(format!(
                    "{} ({}:{}:{})",
                    item.qual, files[caller.0].rel, line, col
                ));
            }
        }
        parts.push(format!(
            "{} ({}:{}:{})",
            sink_what, files[f.0].rel, sink_line, sink_col
        ));
        parts.join(" \u{2192} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::lexer::scan;
    use crate::parser::parse;

    fn setup() -> (Vec<ParsedFile>, CallGraph) {
        let files = vec![
            parse(
                "crates/core/src/a.rs",
                &scan("pub fn entry() {\n    mid();\n}\nfn mid() {\n    b::leaf();\n}"),
            ),
            parse("crates/core/src/b.rs", &scan("pub fn leaf() {}")),
        ];
        let g = CallGraph::build(&files);
        (files, g)
    }

    #[test]
    fn bfs_reaches_transitively_and_chains_are_shortest() {
        let (files, g) = setup();
        let entries = g.match_entries(&["egeria_core::a::entry".into()]);
        assert_eq!(entries.len(), 1);
        let r = Reachability::compute(&g, &entries);
        let leaf = g.match_entries(&["egeria_core::b::leaf".into()])[0];
        assert!(r.contains(leaf));
        let chain = r.chain(leaf);
        let quals: Vec<&str> = chain
            .iter()
            .map(|&(id, _, _)| files[id.0].fns[id.1].qual.as_str())
            .collect();
        assert_eq!(
            quals,
            vec!["egeria_core::a::entry", "egeria_core::a::mid", "egeria_core::b::leaf"]
        );
    }

    #[test]
    fn witness_renders_entry_hops_and_sink() {
        let (files, g) = setup();
        let entries = g.match_entries(&["egeria_core::a::entry".into()]);
        let r = Reachability::compute(&g, &entries);
        let leaf = g.match_entries(&["egeria_core::b::leaf".into()])[0];
        let w = r.witness(&files, leaf, "panic!", 7, 5);
        assert_eq!(
            w,
            "egeria_core::a::entry (crates/core/src/a.rs:1:8) \
             \u{2192} egeria_core::a::mid (crates/core/src/a.rs:2:5) \
             \u{2192} egeria_core::b::leaf (crates/core/src/a.rs:5:8) \
             \u{2192} panic! (crates/core/src/b.rs:7:5)"
        );
    }
}
