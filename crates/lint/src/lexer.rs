//! A comment/string/raw-string-aware token scanner for Rust source.
//!
//! This is deliberately *not* a full Rust lexer: the lint rules only need a
//! faithful token stream (identifiers, numeric literals, operators) with
//! `line:col` positions, plus the comments — while never producing a false
//! match for text that lives inside string literals, char literals, raw
//! strings, or comments. Everything else (actual parsing) is out of scope;
//! the rules work on token-sequence patterns.

/// Token classification, just fine-grained enough for the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, …).
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// Operator or punctuation, maximal-munch (`==`, `::`, `..=`, `{`, …).
    Op,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One source token with its 1-based position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line or block). `text` is the body without the delimiters;
/// block comments may span `line..=end_line`.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// The scan of one source file.
#[derive(Debug, Default)]
pub struct Scan {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]`-gated blocks.
    pub test_regions: Vec<(u32, u32)>,
}

impl Scan {
    /// Whether `line` falls inside a `#[cfg(test)]` block.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Multi-character operators, longest first (maximal munch).
const OPS: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.i).copied()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenizes `src`, producing the token stream, the comments, and the
/// `#[cfg(test)]` regions.
pub fn scan(src: &str) -> Scan {
    let mut cur = Cursor {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Scan::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap() as char);
                }
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: line,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                            text.push_str("/*");
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(_), _) => text.push(cur.bump().unwrap() as char),
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: cur.line,
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.toks.push(tok(TokKind::Str, String::new(), line, col));
            }
            b'r' | b'b' if raw_string_lookahead(&cur) => {
                lex_raw_string(&mut cur);
                out.toks.push(tok(TokKind::Str, String::new(), line, col));
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.bump();
                lex_string(&mut cur);
                out.toks.push(tok(TokKind::Str, String::new(), line, col));
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump();
                lex_char(&mut cur);
                out.toks.push(tok(TokKind::Char, String::new(), line, col));
            }
            b'\'' => {
                // Disambiguate char literal vs lifetime: `'x'` / `'\n'` are
                // chars; `'a` followed by a non-quote is a lifetime.
                let is_char = cur.peek(1) == Some(b'\\')
                    || (cur.peek(1).is_some_and(|c| c != b'\'') && cur.peek(2) == Some(b'\''))
                    // Multi-byte char literal: 2–4 UTF-8 content bytes, so
                    // the closing quote sits at index 3, 4, or 5.
                    || (cur.peek(1).is_some_and(|c| c >= 0x80)
                        && (cur.peek(3) == Some(b'\'')
                            || cur.peek(4) == Some(b'\'')
                            || cur.peek(5) == Some(b'\'')))
                    || !cur.peek(1).is_some_and(is_ident_start);
                if is_char {
                    lex_char(&mut cur);
                    out.toks.push(tok(TokKind::Char, String::new(), line, col));
                } else {
                    cur.bump();
                    let mut text = String::from("'");
                    while cur.peek(0).is_some_and(is_ident_cont) {
                        text.push(cur.bump().unwrap() as char);
                    }
                    out.toks.push(tok(TokKind::Lifetime, text, line, col));
                }
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                // Raw identifier `r#name`.
                if c == b'r' && cur.peek(1) == Some(b'#') && cur.peek(2).is_some_and(is_ident_start)
                {
                    cur.bump();
                    cur.bump();
                }
                while cur.peek(0).is_some_and(is_ident_cont) {
                    text.push(cur.bump().unwrap() as char);
                }
                out.toks.push(tok(TokKind::Ident, text, line, col));
            }
            c if c.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                out.toks.push(tok(kind, String::new(), line, col));
            }
            _ => {
                let mut matched = None;
                for op in OPS {
                    let bytes = op.as_bytes();
                    if cur.src[cur.i..].starts_with(bytes) {
                        matched = Some(*op);
                        break;
                    }
                }
                match matched {
                    Some(op) => {
                        for _ in 0..op.len() {
                            cur.bump();
                        }
                        out.toks.push(tok(TokKind::Op, op.to_string(), line, col));
                    }
                    None => {
                        let c = cur.bump().unwrap();
                        out.toks
                            .push(tok(TokKind::Op, (c as char).to_string(), line, col));
                    }
                }
            }
        }
    }

    out.test_regions = find_test_regions(&out.toks);
    out
}

fn tok(kind: TokKind, text: String, line: u32, col: u32) -> Tok {
    Tok {
        kind,
        text,
        line,
        col,
    }
}

/// True when the cursor sits on `r"`, `r#`…`#"`, `br"` or `br#`…`#"` (a raw
/// string start), as opposed to a raw identifier or a plain ident.
fn raw_string_lookahead(cur: &Cursor) -> bool {
    let mut j = 1;
    if cur.peek(0) == Some(b'b') {
        if cur.peek(1) != Some(b'r') {
            return false;
        }
        j = 2;
    }
    while cur.peek(j) == Some(b'#') {
        j += 1;
    }
    cur.peek(j) == Some(b'"') && (j > 1 || cur.peek(0) == Some(b'r'))
}

/// Consumes a `"…"` string (opening quote under the cursor), honoring
/// backslash escapes.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Consumes `r##"…"##`-style raw strings (any number of hashes, including
/// zero), with the optional `b` prefix already under the cursor.
fn lex_raw_string(cur: &mut Cursor) {
    if cur.peek(0) == Some(b'b') {
        cur.bump();
    }
    cur.bump(); // 'r'
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
            None => return,
        }
    }
}

/// Consumes a `'…'` char/byte literal (opening quote under the cursor).
fn lex_char(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'\'' => return,
            _ => {}
        }
    }
}

/// Consumes a numeric literal and classifies it as [`TokKind::Int`] or
/// [`TokKind::Float`]. A `.` only joins the number when followed by a digit,
/// so `0..len` stays two ints and a range operator.
fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    // 0x / 0o / 0b prefixes: integer digits only.
    if cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X'))
    {
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_hexdigit() || c == b'_') {
            cur.bump();
        }
        return TokKind::Int;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(0), Some(b'e') | Some(b'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some(b'+') | Some(b'-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Suffix (`f32`, `u64`, …): floats keep Float, `1f32` becomes Float.
    let mut suffix = String::new();
    while cur.peek(0).is_some_and(is_ident_cont) {
        suffix.push(cur.bump().unwrap() as char);
    }
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

/// Finds the inclusive line spans of blocks gated by `#[cfg(test)]` (or any
/// `cfg(...)` whose argument list mentions `test`): the attribute, any
/// attributes that follow it, the item header, and the `{ … }` body up to
/// the matching close brace.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Op && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // Match `#[cfg( … test … )]`.
        let Some(close) = match_cfg_test(toks, i) else {
            i += 1;
            continue;
        };
        let start_line = toks[i].line;
        // Walk forward to the item's opening brace; bail at `;` (e.g. a
        // cfg-gated `use`) or end of input.
        let mut j = close + 1;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Op && t.text == "{" {
                open = Some(j);
                break;
            }
            if t.kind == TokKind::Op && (t.text == ";" || t.text == "}") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            let t = &toks[k];
            if t.kind == TokKind::Op {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                }
            }
            k += 1;
        }
        let end_line = toks.get(k.saturating_sub(1)).map_or(start_line, |t| t.line);
        regions.push((start_line, end_line));
        i = k;
    }
    regions
}

/// If `toks[i]` starts a `#[cfg(...)]` attribute whose parenthesized list
/// contains the ident `test`, returns the index of the closing `]`.
fn match_cfg_test(toks: &[Tok], i: usize) -> Option<usize> {
    let at = |k: usize, kind: TokKind, text: &str| {
        toks.get(k)
            .is_some_and(|t| t.kind == kind && t.text == text)
    };
    if !(at(i + 1, TokKind::Op, "[") && at(i + 2, TokKind::Ident, "cfg") && at(i + 3, TokKind::Op, "("))
    {
        return None;
    }
    let mut depth = 1usize;
    let mut k = i + 4;
    let mut saw_test = false;
    while k < toks.len() && depth > 0 {
        let t = &toks[k];
        if t.kind == TokKind::Op {
            if t.text == "(" {
                depth += 1;
            } else if t.text == ")" {
                depth -= 1;
            }
        } else if t.kind == TokKind::Ident && t.text == "test" {
            saw_test = true;
        }
        k += 1;
    }
    if !saw_test || depth != 0 {
        return None;
    }
    if at(k, TokKind::Op, "]") {
        Some(k)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "unsafe panic! == 0.0"; // unsafe in a line comment
            /* unsafe in a block comment */
            let b = r#"unsafe " quote"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ unsafe";
        let ids = idents(src);
        assert_eq!(ids, vec!["unsafe".to_string()]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let s = scan(src);
        let lifetimes: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = s.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn multibyte_char_literals_are_chars_not_lifetimes() {
        // '€' is 3 UTF-8 bytes; mislexing it as a lifetime would swallow
        // the closing quote and derail everything after it.
        let src = "fn f() { let e = '€'; let k = '日'; let q = '\u{10348}'; let x = 1 == 1; }";
        let s = scan(src);
        assert_eq!(s.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
        assert_eq!(s.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 0);
        // The token stream after the literals is intact.
        assert!(s.toks.iter().any(|t| t.kind == TokKind::Op && t.text == "=="));
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let s = scan("for i in 0..len { x[i] = 1.5; }");
        let floats: Vec<_> = s.toks.iter().filter(|t| t.kind == TokKind::Float).collect();
        assert_eq!(floats.len(), 1);
        let ops: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Op && t.text == "..")
            .collect();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn float_forms() {
        for (src, want) in [
            ("1.0", TokKind::Float),
            ("1e3", TokKind::Float),
            ("2.5e-3", TokKind::Float),
            ("1f32", TokKind::Float),
            ("7", TokKind::Int),
            ("0xfff", TokKind::Int),
            ("1_000", TokKind::Int),
        ] {
            let s = scan(src);
            assert_eq!(s.toks.len(), 1, "{src}");
            assert_eq!(s.toks[0].kind, want, "{src}");
        }
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let s = scan("ab\n  cd");
        assert_eq!((s.toks[0].line, s.toks[0].col), (1, 1));
        assert_eq!((s.toks[1].line, s.toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_region_covers_the_module_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(s.test_regions, vec![(2, 5)]);
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(1));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_use_statement_is_not_a_region() {
        let s = scan("#[cfg(test)]\nuse std::fmt;\nfn f() {}\n");
        assert!(s.test_regions.is_empty());
    }

    #[test]
    fn maximal_munch_operators() {
        let s = scan("a ..= b == c != d :: e");
        let ops: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Op)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ops, vec!["..=", "==", "!=", "::"]);
    }
}
