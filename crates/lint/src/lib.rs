//! `egeria-lint`: the workspace static-analysis pass.
//!
//! The Egeria reproduction rests on invariants the compiler cannot check:
//! the pool's fixed-geometry determinism contract, bit-exact
//! checkpoint/resume replay, and the absence of the `== 0.0` multiply-skip
//! class that silently collapsed `0 · NaN`. This crate walks the workspace
//! sources with a comment/string/raw-string-aware token scanner (no `syn` —
//! the build environment is offline) and enforces those contracts as
//! machine-checked rules with `file:line:col` diagnostics.
//!
//! Rules, scoping (`lint.toml`), and the inline
//! `// egeria-lint: allow(<rule>): <reason>` pragma convention are
//! documented in DESIGN.md §5c and [`rules`].

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// Everything one lint run produces.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints a single source string under its repo-relative label. Used by the
/// fixture tests and by [`lint_tree`].
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let scan = lexer::scan(src);
    let mut findings = rules::lint_scan(rel, &scan, cfg);
    findings.extend(rules::unknown_pragma_rules(rel, &scan));
    findings
}

/// Walks the tree under `root`, lints every non-excluded `.rs` file, and
/// checks the root manifest's vendor-patch invariant. Findings are sorted
/// by path, then position.
pub fn lint_tree(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel_to_string(&rel);
        report.findings.extend(lint_source(&rel_str, &src, cfg));
        report.files_scanned += 1;
    }

    let manifest = root.join("Cargo.toml");
    if manifest.is_file() {
        let src = std::fs::read_to_string(&manifest)?;
        report.findings.extend(rules::check_manifest("Cargo.toml", &src));
    }

    report
        .findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    Ok(report)
}

/// Loads `lint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&src).map_err(|e| e.to_string())
}

fn rel_to_string(rel: &Path) -> String {
    // Forward slashes regardless of platform, so lint.toml scoping entries
    // are portable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel_to_string(&rel);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            // Directory exclusion entries end in '/'.
            if cfg.is_excluded(&format!("{rel_str}/")) {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file()
            && rel_str.ends_with(".rs")
            && !cfg.is_excluded(&rel_str)
        {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        config::parse(
            r#"
[lint]
exclude = []

[rules.no-panic-in-kernels]
paths = ["kernels/"]

[rules.determinism]
kernel_paths = ["kernels/"]
serialize_paths = ["ser/"]
spawn_allowed = ["kernels/pool.rs"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_over_a_source_string() {
        let src = "fn f(x: f32) -> bool { x == 0.0 }\n";
        let findings = lint_source("lib.rs", src, &cfg());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::FLOAT_EXACT_EQ);
        assert_eq!((findings[0].line, findings[0].col), (1, 26));
    }

    #[test]
    fn pragma_suppresses_and_unknown_pragma_is_flagged() {
        let src = "\
// egeria-lint: allow(float-exact-eq): sentinel compare, audited
fn f(x: f32) -> bool { x == 0.0 }
// egeria-lint: allow(not-a-rule)
fn g() {}
";
        let findings = lint_source("lib.rs", src, &cfg());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unknown-pragma");
    }

    #[test]
    fn scoping_gates_rules_by_path() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert_eq!(lint_source("kernels/gemm.rs", src, &cfg()).len(), 1);
        assert!(lint_source("app/main.rs", src, &cfg()).is_empty());
    }
}
