//! `egeria-lint`: the workspace static-analysis pass.
//!
//! The Egeria reproduction rests on invariants the compiler cannot check:
//! the pool's fixed-geometry determinism contract, bit-exact
//! checkpoint/resume replay, and the absence of the `== 0.0` multiply-skip
//! class that silently collapsed `0 · NaN`. This crate walks the workspace
//! sources with a comment/string/raw-string-aware token scanner (no `syn` —
//! the build environment is offline) and enforces those contracts as
//! machine-checked rules with `file:line:col` diagnostics.
//!
//! Rules, scoping (`lint.toml`), and the inline
//! `// egeria-lint: allow(<rule>): <reason>` pragma convention are
//! documented in DESIGN.md §5c and [`rules`].

#![forbid(unsafe_code)]

pub mod config;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod rules_graph;

pub use config::Config;
pub use rules::{Finding, Tier};

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Everything one lint run produces.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints a single source string under its repo-relative label. Used by the
/// fixture tests and by [`lint_tree`].
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let scan = lexer::scan(src);
    let mut findings = rules::lint_scan(rel, &scan, cfg);
    findings.extend(rules::unknown_pragma_rules(rel, &scan));
    findings
}

/// Walks the tree under `root`, lints every non-excluded `.rs` file, and
/// checks the root manifest's vendor-patch invariant. Findings are sorted
/// by path, then position.
///
/// Runs in two phases: the token-level rules see each file alone; the
/// graph-tier rules ([`rules_graph`]) then run over the whole parsed
/// workspace at once, so their findings can cite cross-file witness call
/// paths. Graph findings honor the same `allow` pragma mechanism — a
/// pragma on the finding's anchor line in the anchor file suppresses it.
pub fn lint_tree(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut parsed: Vec<parser::ParsedFile> = Vec::new();
    let mut suppressions: BTreeMap<String, BTreeMap<String, BTreeSet<u32>>> = BTreeMap::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel_to_string(&rel);
        let scan = lexer::scan(&src);
        let mut findings = rules::lint_scan(&rel_str, &scan, cfg);
        findings.extend(rules::unknown_pragma_rules(&rel_str, &scan));
        report.findings.extend(findings);
        suppressions.insert(rel_str.clone(), rules::pragma_suppressions(&scan));
        parsed.push(parser::parse(&rel_str, &scan));
        report.files_scanned += 1;
    }

    let deps = crate_deps(root);
    let mut graph_findings = rules_graph::run_graph_rules(&parsed, cfg, &deps);
    graph_findings.retain(|f| {
        !suppressions
            .get(&f.path)
            .and_then(|per_rule| per_rule.get(f.rule))
            .is_some_and(|lines| lines.contains(&f.line))
    });
    report.findings.extend(graph_findings);

    let manifest = root.join("Cargo.toml");
    if manifest.is_file() {
        let src = std::fs::read_to_string(&manifest)?;
        report.findings.extend(rules::check_manifest("Cargo.toml", &src));
    }

    report
        .findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    Ok(report)
}

/// Loads `lint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&src).map_err(|e| e.to_string())
}

/// The workspace crate dependency map, transitively closed, keyed by crate
/// label (`egeria_foo`). Read from `crates/*/Cargo.toml` with a
/// line-oriented scan (no TOML dependency): the package name comes from the
/// first `name = "…"` line, and every line whose key starts with `egeria-`
/// in any dependency section is an intra-workspace dependency.
/// Dev-dependencies are included — more edges means a *less* aggressive
/// prune, which is the conservative direction for reachability.
fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let Ok(src) = std::fs::read_to_string(entry.path().join("Cargo.toml")) else {
                continue;
            };
            let mut name = String::new();
            let mut deps: BTreeSet<String> = BTreeSet::new();
            for line in src.lines() {
                let line = line.trim();
                if name.is_empty() {
                    if let Some(rest) = line.strip_prefix("name") {
                        if let Some(val) = rest.trim_start().strip_prefix('=') {
                            if let Some(q) = val.trim().strip_prefix('"') {
                                if let Some(n) = q.split('"').next() {
                                    name = n.replace('-', "_");
                                }
                            }
                        }
                    }
                }
                if line.starts_with("egeria-") {
                    let key: String = line
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                        .collect();
                    deps.insert(key.replace('-', "_"));
                }
            }
            if !name.is_empty() {
                direct.entry(name).or_default().extend(deps);
            }
        }
    }
    // Transitive closure: A may call anything its dependencies re-export.
    let mut closed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, deps) in &direct {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<String> = deps.iter().cloned().collect();
        while let Some(d) = stack.pop() {
            if seen.insert(d.clone()) {
                if let Some(dd) = direct.get(&d) {
                    stack.extend(dd.iter().cloned());
                }
            }
        }
        closed.insert(name.clone(), seen);
    }
    closed
}

fn rel_to_string(rel: &Path) -> String {
    // Forward slashes regardless of platform, so lint.toml scoping entries
    // are portable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel_to_string(&rel);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            // Directory exclusion entries end in '/'.
            if cfg.is_excluded(&format!("{rel_str}/")) {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file()
            && rel_str.ends_with(".rs")
            && !cfg.is_excluded(&rel_str)
        {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        config::parse(
            r#"
[lint]
exclude = []

[rules.no-panic-in-kernels]
paths = ["kernels/"]

[rules.determinism]
kernel_paths = ["kernels/"]
serialize_paths = ["ser/"]
spawn_allowed = ["kernels/pool.rs"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_over_a_source_string() {
        let src = "fn f(x: f32) -> bool { x == 0.0 }\n";
        let findings = lint_source("lib.rs", src, &cfg());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::FLOAT_EXACT_EQ);
        assert_eq!((findings[0].line, findings[0].col), (1, 26));
    }

    #[test]
    fn pragma_suppresses_and_unknown_pragma_is_flagged() {
        let src = "\
// egeria-lint: allow(float-exact-eq): sentinel compare, audited
fn f(x: f32) -> bool { x == 0.0 }
// egeria-lint: allow(not-a-rule)
fn g() {}
";
        let findings = lint_source("lib.rs", src, &cfg());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unknown-pragma");
    }

    #[test]
    fn scoping_gates_rules_by_path() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert_eq!(lint_source("kernels/gemm.rs", src, &cfg()).len(), 1);
        assert!(lint_source("app/main.rs", src, &cfg()).is_empty());
    }
}
