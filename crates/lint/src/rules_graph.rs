//! The call-graph rule tier (DESIGN.md §5h).
//!
//! Where the token rules in [`crate::rules`] are line-local, these rules
//! reason over the workspace call graph built by [`crate::graph`]:
//!
//! - `panic-reachable-from-kernel` — a panic sink (`panic!`, `assert*!`,
//!   `.unwrap()`, `.expect(`, `unreachable!`, `todo!`, `unimplemented!`)
//!   transitively reachable from a `[graph] kernel_entries` function.
//! - `wallclock-reachable` — a wall-clock sink (`Instant::now`,
//!   `SystemTime`, `.elapsed()`) reachable from a kernel *or* serialize
//!   entry point. Subsumes the line-local `determinism` clock check: the
//!   clock no longer has to sit inside a `kernel_paths` file to be caught.
//! - `entropy-reachable` — same entry set, entropy sinks (`thread_rng`,
//!   `from_entropy`, `OsRng`).
//! - `lock-order` — per-function guard-acquisition sets propagated through
//!   the call graph; a cycle in the resulting lock-order graph is a
//!   potential deadlock. Lock identity is the heuristic `(crate, receiver
//!   ident)` pair, and guard release is not modeled — both conservative,
//!   which is why this rule defaults to the warn tier and rides the
//!   `lint-baseline.json` ratchet.
//! - `unjoined-spawn` — a `thread::spawn` / `Builder…spawn` whose
//!   JoinHandle is discarded (statement position or `let _ =`), so nothing
//!   can ever join or supervise the thread.
//!
//! Every reachability finding carries a witness call path (see
//! [`crate::reach::Reachability::witness`]); every rule honors the
//! standard `// egeria-lint: allow(<rule>): <reason>` pragma at the
//! finding's anchor line. A rule only runs when its `[rules.<id>]` table
//! exists in lint.toml, so configs written before the graph tier keep
//! their exact behavior.

use crate::config::Config;
use crate::graph::{CallGraph, FnId};
use crate::parser::{ParsedFile, SinkKind};
use crate::reach::Reachability;
use crate::rules::{Finding, Tier};
use std::collections::{BTreeMap, BTreeSet};

pub const PANIC_REACHABLE: &str = "panic-reachable-from-kernel";
pub const WALLCLOCK_REACHABLE: &str = "wallclock-reachable";
pub const ENTROPY_REACHABLE: &str = "entropy-reachable";
pub const LOCK_ORDER: &str = "lock-order";
pub const UNJOINED_SPAWN: &str = "unjoined-spawn";

/// All graph-tier rule ids (spliced into [`crate::rules::ALL_RULES`]).
pub const GRAPH_RULES: &[&str] = &[
    PANIC_REACHABLE,
    WALLCLOCK_REACHABLE,
    ENTROPY_REACHABLE,
    LOCK_ORDER,
    UNJOINED_SPAWN,
];

fn tier_of(cfg: &Config, rule: &str, default: Tier) -> Tier {
    match cfg.rule(rule).strings.get("tier").map(String::as_str) {
        Some("warn") => Tier::Warn,
        Some("deny") => Tier::Deny,
        _ => default,
    }
}

/// Runs every configured graph rule over the parsed workspace. `deps` is
/// the transitively closed crate dependency map used to prune impossible
/// cross-crate edges (see [`CallGraph::build_with_deps`]); pass an empty
/// map to disable pruning. Pragma filtering happens in the caller (it owns
/// the per-file suppression maps).
pub fn run_graph_rules(
    files: &[ParsedFile],
    cfg: &Config,
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Finding> {
    let graph = CallGraph::build_with_deps(files, deps);
    let mut findings = Vec::new();

    let kernel_entries = graph.match_entries(cfg.graph.list("kernel_entries"));
    let serialize_entries = graph.match_entries(cfg.graph.list("serialize_entries"));
    let mut det_entries: Vec<FnId> = kernel_entries.clone();
    det_entries.extend(serialize_entries.iter().copied());

    if cfg.has_rule(PANIC_REACHABLE) && !kernel_entries.is_empty() {
        let reach = Reachability::compute(&graph, &kernel_entries);
        sink_findings(
            files,
            &reach,
            SinkKind::Panic,
            PANIC_REACHABLE,
            tier_of(cfg, PANIC_REACHABLE, Tier::Deny),
            "reachable from a kernel entry point; a panic mid-train-step breaks \
             checkpoint/resume and freezing-timeline replay",
            &mut findings,
        );
    }
    if cfg.has_rule(WALLCLOCK_REACHABLE) && !det_entries.is_empty() {
        let reach = Reachability::compute(&graph, &det_entries);
        sink_findings(
            files,
            &reach,
            SinkKind::WallClock,
            WALLCLOCK_REACHABLE,
            tier_of(cfg, WALLCLOCK_REACHABLE, Tier::Deny),
            "wall-clock read reachable from a kernel/serialize entry point; \
             bit-identical replay (golden-run fingerprint) forbids time-dependent \
             values on these paths",
            &mut findings,
        );
    }
    if cfg.has_rule(ENTROPY_REACHABLE) && !det_entries.is_empty() {
        let reach = Reachability::compute(&graph, &det_entries);
        sink_findings(
            files,
            &reach,
            SinkKind::Entropy,
            ENTROPY_REACHABLE,
            tier_of(cfg, ENTROPY_REACHABLE, Tier::Deny),
            "entropy source reachable from a kernel/serialize entry point; \
             bit-identical replay forbids nondeterministic values on these paths",
            &mut findings,
        );
    }
    if cfg.has_rule(LOCK_ORDER) {
        lock_order(files, &graph, cfg, &mut findings);
    }
    if cfg.has_rule(UNJOINED_SPAWN) {
        unjoined_spawn(files, cfg, &mut findings);
    }
    findings
}

/// Emits one finding per sink site of `kind` inside a reachable function.
#[allow(clippy::too_many_arguments)]
fn sink_findings(
    files: &[ParsedFile],
    reach: &Reachability,
    kind: SinkKind,
    rule: &'static str,
    tier: Tier,
    why: &str,
    findings: &mut Vec<Finding>,
) {
    for (fi, pf) in files.iter().enumerate() {
        for sink in &pf.sinks {
            if sink.kind != kind {
                continue;
            }
            let id: FnId = (fi, sink.fn_idx);
            if pf.fns[sink.fn_idx].is_test || !reach.contains(id) {
                continue;
            }
            let witness = reach.witness(files, id, &sink.what, sink.line, sink.col);
            findings.push(Finding {
                rule,
                tier,
                path: pf.rel.clone(),
                line: sink.line,
                col: sink.col,
                message: format!("`{}` {why}; witness: {witness}", sink.what),
            });
        }
    }
}

/// Heuristic lock identity: crate label + receiver ident.
type LockId = (String, String);

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct AcqSite {
    file: String,
    line: u32,
    col: u32,
    fn_qual: String,
}

/// `lock-order`: builds per-function acquisition lists, propagates
/// "eventually acquires" sets through the call graph, adds held→acquired
/// edges, and reports every strongly-connected component of ≥ 2 locks.
fn lock_order(files: &[ParsedFile], graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    let tier = tier_of(cfg, LOCK_ORDER, Tier::Warn);

    // Known Mutex/RwLock field names per crate, so `.read()`/`.write()`
    // (which also name ubiquitous io methods) only count on lock fields.
    // `.lock()` always counts.
    let mut lock_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for pf in files {
        lock_fields
            .entry(pf.krate.clone())
            .or_default()
            .extend(pf.lock_fields.iter().cloned());
    }

    // Per-function ordered acquisitions.
    let mut acqs: BTreeMap<FnId, Vec<(LockId, u32, u32)>> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        let known = lock_fields.get(&pf.krate);
        for l in &pf.locks {
            if l.name.is_empty() || pf.fns[l.fn_idx].is_test {
                continue;
            }
            let is_lock_method = {
                // LockSite records `.lock()`, `.read()`, `.write()` — the
                // parser stores all three; distinguish via the known-field
                // check recorded in `method` semantics: `.lock()` sites have
                // priority, `.read()`/`.write()` must hit a known field.
                l.method == "lock"
                    || known.is_some_and(|k| k.contains(&l.name))
            };
            if !is_lock_method {
                continue;
            }
            acqs.entry((fi, l.fn_idx)).or_default().push((
                (pf.krate.clone(), l.name.clone()),
                l.line,
                l.col,
            ));
        }
    }

    // Fixpoint: EA(f) = own locks ∪ ⋃ EA(callees), with one representative
    // acquisition site per lock.
    let mut ea: BTreeMap<FnId, BTreeMap<LockId, AcqSite>> = BTreeMap::new();
    for (&f, list) in &acqs {
        let m = ea.entry(f).or_default();
        for (id, line, col) in list {
            m.entry(id.clone()).or_insert_with(|| AcqSite {
                file: files[f.0].rel.clone(),
                line: *line,
                col: *col,
                fn_qual: files[f.0].fns[f.1].qual.clone(),
            });
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        // Deterministic iteration; small graphs converge in a few rounds.
        let callers: Vec<FnId> = graph.edges.keys().copied().collect();
        for f in callers {
            let mut add: Vec<(LockId, AcqSite)> = Vec::new();
            if let Some(edges) = graph.edges.get(&f) {
                for e in edges {
                    if let Some(sub) = ea.get(&e.callee) {
                        for (id, site) in sub {
                            if !ea.get(&f).is_some_and(|m| m.contains_key(id)) {
                                add.push((id.clone(), site.clone()));
                            }
                        }
                    }
                }
            }
            if !add.is_empty() {
                let m = ea.entry(f).or_default();
                for (id, site) in add {
                    if m.insert(id.clone(), site).is_none() {
                        changed = true;
                    }
                }
            }
        }
    }

    // Lock-order edges: A → B when a function holds A (acquired earlier in
    // its body) and then acquires B directly or through a call. Guard drops
    // are not modeled (conservative).
    #[derive(Debug, Clone)]
    struct EdgeInfo {
        hold: AcqSite,
        acq: AcqSite,
        via: Option<String>,
    }
    let mut lock_edges: BTreeMap<LockId, BTreeMap<LockId, EdgeInfo>> = BTreeMap::new();
    let mut add_edge = |a: &LockId, b: &LockId, info: EdgeInfo| {
        if a == b {
            return;
        }
        lock_edges
            .entry(a.clone())
            .or_default()
            .entry(b.clone())
            .or_insert(info);
    };
    for (&f, list) in &acqs {
        // Intra-function: later acquisitions while earlier guards are live.
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let (a, al, ac) = &list[i];
                let (b, bl, bc) = &list[j];
                add_edge(
                    a,
                    b,
                    EdgeInfo {
                        hold: AcqSite {
                            file: files[f.0].rel.clone(),
                            line: *al,
                            col: *ac,
                            fn_qual: files[f.0].fns[f.1].qual.clone(),
                        },
                        acq: AcqSite {
                            file: files[f.0].rel.clone(),
                            line: *bl,
                            col: *bc,
                            fn_qual: files[f.0].fns[f.1].qual.clone(),
                        },
                        via: None,
                    },
                );
            }
        }
        // Inter-function: calls positioned after an acquisition pull in the
        // callee's eventual acquisitions.
        if let Some(edges) = graph.edges.get(&f) {
            for (a, al, ac) in list {
                for e in edges {
                    if (e.line, e.col) <= (*al, *ac) {
                        continue;
                    }
                    if let Some(sub) = ea.get(&e.callee) {
                        for (b, site) in sub {
                            add_edge(
                                a,
                                b,
                                EdgeInfo {
                                    hold: AcqSite {
                                        file: files[f.0].rel.clone(),
                                        line: *al,
                                        col: *ac,
                                        fn_qual: files[f.0].fns[f.1].qual.clone(),
                                    },
                                    acq: site.clone(),
                                    via: Some(graph.qual(files, e.callee).to_string()),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    // SCCs of ≥ 2 locks are ordering cycles. The graph is tiny; a simple
    // iterative Tarjan suffices.
    let nodes: Vec<LockId> = lock_edges
        .iter()
        .flat_map(|(a, bs)| std::iter::once(a.clone()).chain(bs.keys().cloned()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index_of: BTreeMap<&LockId, usize> = nodes.iter().enumerate().map(|(i, n)| (n, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            lock_edges
                .get(n)
                .map(|bs| bs.keys().map(|b| index_of[b]).collect())
                .unwrap_or_default()
        })
        .collect();
    for scc in sccs(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let mut members: Vec<&LockId> = scc.iter().map(|&i| &nodes[i]).collect();
        members.sort();
        let in_scc: BTreeSet<&LockId> = members.iter().copied().collect();
        let mut parts: Vec<String> = Vec::new();
        let mut anchor: Option<AcqSite> = None;
        for a in &members {
            if let Some(bs) = lock_edges.get(*a) {
                for (b, info) in bs {
                    if !in_scc.contains(b) {
                        continue;
                    }
                    if anchor.is_none() {
                        anchor = Some(info.hold.clone());
                    }
                    let via = match &info.via {
                        Some(v) => format!(" via {v}"),
                        None => String::new(),
                    };
                    parts.push(format!(
                        "`{}` held in {} ({}:{}:{}) then `{}` acquired{} ({}:{}:{})",
                        a.1,
                        info.hold.fn_qual,
                        info.hold.file,
                        info.hold.line,
                        info.hold.col,
                        b.1,
                        via,
                        info.acq.file,
                        info.acq.line,
                        info.acq.col
                    ));
                }
            }
        }
        let anchor = anchor.expect("scc of size >= 2 has at least one internal edge");
        let names: Vec<String> = members.iter().map(|m| format!("`{}`", m.1)).collect();
        findings.push(Finding {
            rule: LOCK_ORDER,
            tier,
            path: anchor.file.clone(),
            line: anchor.line,
            col: anchor.col,
            message: format!(
                "lock-order cycle among {} — inconsistent acquisition order can \
                 deadlock: {}",
                names.join(", "),
                parts.join("; ")
            ),
        });
    }
}

/// Iterative Tarjan SCC over an adjacency list.
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, edge cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            dfs.pop();
            if let Some(&(parent, _)) = dfs.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                out.push(comp);
            }
        }
    }
    out
}

/// `unjoined-spawn`: spawn sites whose JoinHandle is discarded.
fn unjoined_spawn(files: &[ParsedFile], cfg: &Config, findings: &mut Vec<Finding>) {
    let tier = tier_of(cfg, UNJOINED_SPAWN, Tier::Deny);
    let skip_tests = cfg.rule(UNJOINED_SPAWN).bool("skip_test_code", true);
    for pf in files {
        if !cfg.rule_applies(UNJOINED_SPAWN, &pf.rel) {
            continue;
        }
        for s in &pf.spawns {
            if s.handle_used || (skip_tests && pf.fns[s.fn_idx].is_test) {
                continue;
            }
            findings.push(Finding {
                rule: UNJOINED_SPAWN,
                tier,
                path: pf.rel.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "spawned thread's JoinHandle is discarded (in `{}`); bind and join \
                     it, or hand it to a supervisor, so shutdown can prove the thread \
                     exited",
                    pf.fns[s.fn_idx].qual
                ),
            });
        }
    }
}
