//! Item-level parsing on top of [`crate::lexer`]: functions, inline
//! modules, impl blocks, use-trees, and the call/sink/lock/spawn sites the
//! graph rules consume.
//!
//! This is deliberately *not* a full Rust parser. It runs one linear pass
//! over the token stream with a scope stack (module / impl / fn / plain
//! block), attributing every call site, panic/wall-clock/entropy sink, lock
//! acquisition, and thread spawn to the innermost enclosing function.
//! Closures are not scopes — their bodies belong to the enclosing `fn`,
//! which is exactly the conservative attribution the reachability rules
//! want (a panic inside a pool-task closure *is* a panic in the function
//! that builds the task).
//!
//! Known, documented imprecision (DESIGN.md §5h): items nested inside
//! function bodies other than `fn` itself are not tracked as scopes, macro
//! definition bodies are attributed to no function, and generic arguments
//! are skipped rather than parsed. All of it errs toward *more* edges, not
//! fewer.

use crate::lexer::{Scan, Tok, TokKind};

/// Fully-resolved location of one function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`gemm`, `new`, …).
    pub name: String,
    /// Fully-qualified display path: `crate::module::Type::name`.
    pub qual: String,
    /// The impl/trait type this is a method of, if any.
    pub impl_type: Option<String>,
    /// Definition site (the name token).
    pub line: u32,
    pub col: u32,
    /// Whether the fn is test code (cfg(test) region or a test/bench file).
    pub is_test: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub enum CallKind {
    /// `a::b::f(...)` — the path as written (≥ 1 segment).
    Direct(Vec<String>),
    /// `recv.f(...)` — method name plus the receiver ident when it is a
    /// plain `ident.` / `self.field.` chain (`None` for chained calls).
    Method(String, Option<String>),
}

/// One call site inside a function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index into [`ParsedFile::fns`] of the calling function.
    pub caller: usize,
    pub kind: CallKind,
    pub line: u32,
    pub col: u32,
}

/// Sink classification for the reachability rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `panic!` / `assert*!` / `unreachable!` / `todo!` / `unimplemented!`
    /// / `.unwrap()` / `.expect(`.
    Panic,
    /// `Instant::now` / `SystemTime` / `.elapsed()`.
    WallClock,
    /// `thread_rng` / `from_entropy` / `OsRng`.
    Entropy,
}

/// One sink occurrence inside a function.
#[derive(Debug, Clone)]
pub struct SinkSite {
    pub fn_idx: usize,
    pub kind: SinkKind,
    /// The offending token text (`panic!`, `unwrap`, `Instant::now`, …).
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// One `.lock()` / `.read()` / `.write()` acquisition inside a function.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub fn_idx: usize,
    /// Heuristic lock identity: the receiver's last ident (`state` in
    /// `self.state.lock()`).
    pub name: String,
    /// Which accessor was called: `lock`, `read`, or `write`.
    pub method: String,
    /// Token index — acquisition order within the function.
    pub tok_idx: usize,
    pub line: u32,
    pub col: u32,
}

/// One `thread::spawn(..)` / `Builder…spawn(..)` site inside a function.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    pub fn_idx: usize,
    /// Token index of the `spawn` ident.
    pub tok_idx: usize,
    pub line: u32,
    pub col: u32,
    /// Whether the returned JoinHandle is bound/used (heuristic; see
    /// [`spawn_handle_used`]).
    pub handle_used: bool,
}

/// One flattened `use` leaf: `use a::b::c as d` → path `[a,b,c]`, leaf `d`.
#[derive(Debug, Clone)]
pub struct Import {
    pub path: Vec<String>,
    pub leaf: String,
}

/// Everything the graph layer needs from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Repo-relative path, forward slashes.
    pub rel: String,
    /// Crate label derived from the path (`egeria_tensor`, `examples`, …).
    pub krate: String,
    /// Module path derived from the file location (not inline mods).
    pub module: Vec<String>,
    pub fns: Vec<FnItem>,
    pub calls: Vec<CallSite>,
    pub sinks: Vec<SinkSite>,
    pub locks: Vec<LockSite>,
    pub spawns: Vec<SpawnSite>,
    pub imports: Vec<Import>,
    /// `use a::b::*;` glob import paths.
    pub glob_imports: Vec<Vec<String>>,
    /// Field/static names whose declared type mentions Mutex/RwLock.
    pub lock_fields: Vec<String>,
    /// Whole file is test code (under a tests/ or benches/ directory).
    pub is_test_file: bool,
}

/// Derives `(crate_label, module_path)` from a repo-relative file path.
///
/// `crates/tensor/src/simd/avx2.rs` → `("egeria_tensor", [simd, avx2])`;
/// `crates/bench/src/bin/bench_ops.rs` → `("egeria_bench", [bin, bench_ops])`;
/// `examples/quickstart.rs` → `("examples", [quickstart])`. Unknown layouts
/// fall back to `("", path segments)` — cross-file resolution still works
/// through suffix matching.
pub fn crate_and_module(rel: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let stem = |s: &str| s.trim_end_matches(".rs").to_string();
    let tail_modules = |segs: &[&str]| -> Vec<String> {
        let mut m: Vec<String> = Vec::new();
        for (i, s) in segs.iter().enumerate() {
            if i + 1 == segs.len() {
                let st = stem(s);
                if st != "lib" && st != "main" && st != "mod" {
                    m.push(st);
                }
            } else {
                m.push((*s).to_string());
            }
        }
        m
    };
    if parts.len() >= 3 && parts[0] == "crates" {
        let krate = format!("egeria_{}", parts[1].replace('-', "_"));
        let rest = &parts[2..];
        if rest[0] == "src" {
            return (krate, tail_modules(&rest[1..]));
        }
        // crates/X/tests/foo.rs, crates/X/benches/foo.rs
        let mut m = vec![rest[0].to_string()];
        m.extend(tail_modules(&rest[1..]));
        return (krate, m);
    }
    if parts.len() >= 2 && (parts[0] == "examples" || parts[0] == "tests" || parts[0] == "benches")
    {
        return (parts[0].to_string(), tail_modules(&parts[1..]));
    }
    if parts.len() >= 2 && parts[0] == "src" {
        return ("egeria_repro".to_string(), tail_modules(&parts[1..]));
    }
    (String::new(), tail_modules(&parts))
}

/// Keywords that look like `ident (` call sites but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "unsafe", "break", "continue", "await", "where", "yield", "dyn", "ref", "mut", "impl", "pub",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// What a pending item keyword will turn the next `{` into.
enum Pending {
    Mod(String),
    /// impl/trait blocks: methods are qualified under the type name.
    Impl(String),
    Fn { name: String, line: u32, col: u32 },
}

enum Frame {
    Mod,
    Impl,
    Fn,
    Block,
}

/// Parses one scanned file. `rel` must use forward slashes.
pub fn parse(rel: &str, scan: &Scan) -> ParsedFile {
    let (krate, module) = crate_and_module(rel);
    let is_test_file = rel
        .split('/')
        .any(|part| part == "tests" || part == "benches");
    let mut out = ParsedFile {
        rel: rel.to_string(),
        krate,
        module,
        is_test_file,
        ..ParsedFile::default()
    };

    let toks = &scan.toks;
    let mut mod_stack: Vec<String> = Vec::new();
    let mut impl_stack: Vec<String> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut pending: Option<Pending> = None;

    collect_lock_fields(toks, &mut out.lock_fields);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "use" => {
                    let krate = out.krate.clone();
                    let module = out.module.clone();
                    i = parse_use_tree(toks, i + 1, &krate, &module, &mut out);
                    continue;
                }
                "mod" if pending.is_none() && fn_stack.is_empty() => {
                    if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending = Some(Pending::Mod(n.text.clone()));
                        i += 2;
                        continue;
                    }
                }
                "impl" if pending.is_none() && fn_stack.is_empty() => {
                    if let Some((ty, next)) = parse_impl_header(toks, i + 1) {
                        pending = Some(Pending::Impl(ty));
                        i = next;
                        continue;
                    }
                }
                "trait" if pending.is_none() && fn_stack.is_empty() => {
                    if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending = Some(Pending::Impl(n.text.clone()));
                        i += 2;
                        continue;
                    }
                }
                "fn" => {
                    // `fn` pointer types have `(` next; fn items have a name.
                    if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending = Some(Pending::Fn {
                            name: n.text.clone(),
                            line: n.line,
                            col: n.col,
                        });
                        i += 2;
                        continue;
                    }
                }
                _ => {
                    scan_code_token(scan, toks, i, &fn_stack, &mut out);
                }
            },
            TokKind::Op => match t.text.as_str() {
                ";" => pending = None,
                "{" => {
                    match pending.take() {
                        Some(Pending::Mod(name)) => {
                            mod_stack.push(name);
                            frames.push(Frame::Mod);
                        }
                        Some(Pending::Impl(ty)) => {
                            impl_stack.push(ty);
                            frames.push(Frame::Impl);
                        }
                        Some(Pending::Fn { name, line, col }) => {
                            let impl_type = impl_stack.last().cloned();
                            let mut qual: Vec<String> = Vec::new();
                            if !out.krate.is_empty() {
                                qual.push(out.krate.clone());
                            }
                            qual.extend(out.module.iter().cloned());
                            qual.extend(mod_stack.iter().cloned());
                            if let Some(ty) = &impl_type {
                                qual.push(ty.clone());
                            }
                            qual.push(name.clone());
                            let idx = out.fns.len();
                            out.fns.push(FnItem {
                                name,
                                qual: qual.join("::"),
                                impl_type,
                                line,
                                col,
                                is_test: is_test_file || scan.is_test_line(line),
                            });
                            fn_stack.push(idx);
                            frames.push(Frame::Fn);
                        }
                        None => frames.push(Frame::Block),
                    }
                }
                "}" => match frames.pop() {
                    Some(Frame::Mod) => {
                        mod_stack.pop();
                    }
                    Some(Frame::Impl) => {
                        impl_stack.pop();
                    }
                    Some(Frame::Fn) => {
                        fn_stack.pop();
                    }
                    _ => {}
                },
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses the header after an `impl` keyword, returning the impl type name
/// and the index to resume at (just before the body `{`). Handles
/// `impl Type`, `impl<T> Trait for path::Type<T>`, skipping generic
/// argument lists.
fn parse_impl_header(toks: &[Tok], mut i: usize) -> Option<(String, usize)> {
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Op => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "{" if angle <= 0 => return last_ident.map(|n| (n, i)),
                ";" => return None,
                _ => {}
            },
            TokKind::Ident if angle <= 0 => match t.text.as_str() {
                "for" => last_ident = None,
                "where" => {
                    // Where clause: the type name is already decided.
                    let ty = last_ident?;
                    while i < toks.len() && !(toks[i].kind == TokKind::Op && toks[i].text == "{")
                    {
                        if toks[i].kind == TokKind::Op && toks[i].text == ";" {
                            return None;
                        }
                        i += 1;
                    }
                    return Some((ty, i));
                }
                _ => last_ident = Some(t.text.clone()),
            },
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses a use-tree starting right after the `use` keyword; records
/// flattened leaves and glob imports into `out`. Returns the index after
/// the closing `;`.
fn parse_use_tree(
    toks: &[Tok],
    start: usize,
    krate: &str,
    module: &[String],
    out: &mut ParsedFile,
) -> usize {
    // Collect the raw token slice up to `;`, then walk it recursively.
    let mut end = start;
    let mut depth = 0i32;
    while end < toks.len() {
        let t = &toks[end];
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
        }
        end += 1;
    }
    let slice = &toks[start..end];
    let mut leaves: Vec<(Vec<String>, Option<String>)> = Vec::new();
    let mut globs: Vec<Vec<String>> = Vec::new();
    walk_use(slice, &mut Vec::new(), &mut leaves, &mut globs);

    let normalize = |path: &[String]| -> Vec<String> {
        let mut p: Vec<String> = Vec::new();
        for (k, seg) in path.iter().enumerate() {
            match seg.as_str() {
                "crate" if k == 0 => {
                    if !krate.is_empty() {
                        p.push(krate.to_string());
                    }
                }
                "self" if k == 0 => {
                    if !krate.is_empty() {
                        p.push(krate.to_string());
                    }
                    p.extend(module.iter().cloned());
                }
                "super" => {
                    // A leading `super` is relative to this file's module:
                    // seed crate::module first, then pop one level per hop.
                    if k == 0 {
                        if !krate.is_empty() {
                            p.push(krate.to_string());
                        }
                        p.extend(module.iter().cloned());
                    }
                    p.pop();
                }
                _ => p.push(seg.clone()),
            }
        }
        p
    };

    for (path, alias) in leaves {
        if path.is_empty() {
            continue;
        }
        let norm = normalize(&path);
        if norm.is_empty() {
            continue;
        }
        let leaf = alias.unwrap_or_else(|| norm[norm.len() - 1].clone());
        out.imports.push(Import { path: norm, leaf });
    }
    for g in globs {
        out.glob_imports.push(normalize(&g));
    }
    end + 1
}

/// Recursive use-tree walker over a token slice (no trailing `;`).
fn walk_use(
    toks: &[Tok],
    prefix: &mut Vec<String>,
    leaves: &mut Vec<(Vec<String>, Option<String>)>,
    globs: &mut Vec<Vec<String>>,
) {
    let saved = prefix.len();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (&t.kind, t.text.as_str()) {
            (TokKind::Ident, "as") => {
                // `path as alias` — rewrite the just-pushed leaf's alias.
                if let Some(a) = toks.get(i + 1).filter(|a| a.kind == TokKind::Ident) {
                    // Commit the leaf here with its alias; truncating the
                    // prefix means the `,`/end-of-slice handlers below see
                    // nothing left to commit for this branch.
                    leaves.push((prefix.clone(), Some(a.text.clone())));
                    prefix.truncate(saved);
                    i += 2;
                    continue;
                }
                i += 1;
            }
            (TokKind::Ident, _) => {
                prefix.push(t.text.clone());
                i += 1;
            }
            (TokKind::Op, "::") => {
                i += 1;
            }
            (TokKind::Op, "*") => {
                globs.push(prefix.clone());
                prefix.truncate(saved);
                i += 1;
            }
            (TokKind::Op, "{") => {
                // Find the matching close, recurse on comma-separated parts.
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut part_start = j;
                while j < toks.len() && depth > 0 {
                    let u = &toks[j];
                    if u.kind == TokKind::Op {
                        match u.text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 && part_start < j {
                                    walk_use(&toks[part_start..j], prefix, leaves, globs);
                                }
                            }
                            "," if depth == 1 => {
                                if part_start < j {
                                    walk_use(&toks[part_start..j], prefix, leaves, globs);
                                }
                                part_start = j + 1;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
                prefix.truncate(saved);
                i = j;
            }
            (TokKind::Op, ",") => {
                if prefix.len() > saved {
                    leaves.push((prefix.clone(), None));
                }
                prefix.truncate(saved);
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    if prefix.len() > saved {
        leaves.push((prefix.clone(), None));
    }
    prefix.truncate(saved);
}

/// Records field/static names whose declared type mentions `Mutex` or
/// `RwLock`: pattern `name : … Mutex/RwLock …` before the next `,;={)`.
fn collect_lock_fields(toks: &[Tok], out: &mut Vec<String>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !toks
            .get(i + 1)
            .is_some_and(|n| n.kind == TokKind::Op && n.text == ":")
        {
            continue;
        }
        // Scan the type tokens.
        let mut j = i + 2;
        let mut steps = 0usize;
        while let Some(u) = toks.get(j) {
            if steps > 24 {
                break;
            }
            match (&u.kind, u.text.as_str()) {
                (TokKind::Op, "," | ";" | "=" | ")" | "{") => break,
                (TokKind::Ident, "Mutex" | "RwLock") => {
                    if !out.contains(&t.text) {
                        out.push(t.text.clone());
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
            steps += 1;
        }
    }
}

/// Per-token scan inside function bodies: call sites, sinks, locks, spawns.
fn scan_code_token(
    scan: &Scan,
    toks: &[Tok],
    i: usize,
    fn_stack: &[usize],
    out: &mut ParsedFile,
) {
    let Some(&fn_idx) = fn_stack.last() else {
        return;
    };
    let t = &toks[i];
    debug_assert_eq!(t.kind, TokKind::Ident);
    let next = |k: usize| toks.get(i + k);
    let next_is = |k: usize, text: &str| {
        next(k).is_some_and(|n| n.kind == TokKind::Op && n.text == text)
    };
    let prev_is = |text: &str| i > 0 && toks[i - 1].kind == TokKind::Op && toks[i - 1].text == text;

    // --- sinks ------------------------------------------------------------
    if PANIC_MACROS.contains(&t.text.as_str()) && next_is(1, "!") {
        out.sinks.push(SinkSite {
            fn_idx,
            kind: SinkKind::Panic,
            what: format!("{}!", t.text),
            line: t.line,
            col: t.col,
        });
        return;
    }
    if (t.text == "unwrap" || t.text == "expect") && prev_is(".") && next_is(1, "(") {
        out.sinks.push(SinkSite {
            fn_idx,
            kind: SinkKind::Panic,
            what: format!(".{}()", t.text),
            line: t.line,
            col: t.col,
        });
        return;
    }
    let seq = |parts: &[&str]| -> bool {
        parts.iter().enumerate().all(|(k, p)| {
            toks.get(i + k)
                .is_some_and(|u| u.text == *p && matches!(u.kind, TokKind::Ident | TokKind::Op))
        })
    };
    if t.text == "Instant" && seq(&["Instant", "::", "now"]) {
        out.sinks.push(SinkSite {
            fn_idx,
            kind: SinkKind::WallClock,
            what: "Instant::now".to_string(),
            line: t.line,
            col: t.col,
        });
        return;
    }
    if t.text == "SystemTime" {
        out.sinks.push(SinkSite {
            fn_idx,
            kind: SinkKind::WallClock,
            what: "SystemTime".to_string(),
            line: t.line,
            col: t.col,
        });
        return;
    }
    if t.text == "elapsed" && prev_is(".") && next_is(1, "(") {
        out.sinks.push(SinkSite {
            fn_idx,
            kind: SinkKind::WallClock,
            what: ".elapsed()".to_string(),
            line: t.line,
            col: t.col,
        });
        return;
    }
    if t.text == "thread_rng" || t.text == "from_entropy" || t.text == "OsRng" {
        out.sinks.push(SinkSite {
            fn_idx,
            kind: SinkKind::Entropy,
            what: t.text.clone(),
            line: t.line,
            col: t.col,
        });
        return;
    }

    // --- calls ------------------------------------------------------------
    if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
        return;
    }
    // Call paren: `(` directly, or after a turbofish `::<…>`.
    let call_paren = if next_is(1, "(") {
        Some(i + 1)
    } else if next_is(1, "::") && next_is(2, "<") {
        skip_turbofish(toks, i + 2).filter(|&j| {
            toks.get(j)
                .is_some_and(|n| n.kind == TokKind::Op && n.text == "(")
        })
    } else {
        None
    };
    let Some(_paren) = call_paren else {
        return;
    };
    // Macro invocation (non-sink): not a call.
    if next_is(1, "!") {
        return;
    }

    if prev_is(".") {
        // Method call: find the receiver ident, if the receiver is a plain
        // ident chain (`x.` / `self.state.`).
        let receiver = if i >= 2 && toks[i - 2].kind == TokKind::Ident {
            Some(toks[i - 2].text.clone())
        } else {
            None
        };
        let name = t.text.clone();
        if name == "lock" || name == "read" || name == "write" {
            out.locks.push(LockSite {
                fn_idx,
                name: receiver.clone().unwrap_or_default(),
                method: name.clone(),
                tok_idx: i,
                line: t.line,
                col: t.col,
            });
        }
        if name == "spawn" {
            out.spawns.push(SpawnSite {
                fn_idx,
                tok_idx: i,
                line: t.line,
                col: t.col,
                handle_used: spawn_handle_used(toks, i),
            });
        }
        out.calls.push(CallSite {
            caller: fn_idx,
            kind: CallKind::Method(name, receiver),
            line: t.line,
            col: t.col,
        });
        return;
    }

    // Direct call: walk the `::` path backwards from this ident.
    let mut path = vec![t.text.clone()];
    let mut j = i;
    while j >= 2
        && toks[j - 1].kind == TokKind::Op
        && toks[j - 1].text == "::"
        && toks[j - 2].kind == TokKind::Ident
    {
        path.insert(0, toks[j - 2].text.clone());
        j -= 2;
    }
    // A leading `.` means this whole path is a method chain continuation
    // (can't happen for `::` paths, but guard anyway).
    if j > 0 && toks[j - 1].kind == TokKind::Op && toks[j - 1].text == "." {
        return;
    }
    if path.len() >= 2 && path[path.len() - 2] == "thread" && path[path.len() - 1] == "spawn" {
        out.spawns.push(SpawnSite {
            fn_idx,
            tok_idx: i,
            line: t.line,
            col: t.col,
            handle_used: spawn_handle_used(toks, j),
        });
    }
    out.calls.push(CallSite {
        caller: fn_idx,
        kind: CallKind::Direct(path),
        line: t.line,
        col: t.col,
    });
    let _ = scan;
}

/// Skips a turbofish starting at the `<` token index (the caller verified
/// `::` `<`); returns the index just past the matching `>`.
fn skip_turbofish(toks: &[Tok], colon_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = colon_idx + 1; // at `<`
    let mut steps = 0usize;
    while let Some(t) = toks.get(j) {
        if steps > 64 {
            return None;
        }
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return Some(j + 1);
                    }
                }
                ";" | "{" => return None,
                _ => {}
            }
        }
        j += 1;
        steps += 1;
    }
    None
}

/// Heuristic: is the JoinHandle produced by the spawn at `chain_start`
/// (index of the first token of the spawn expression) used?
///
/// Used when: the expression is bound (`let h = …`, but not `let _ = …`),
/// assigned, passed as an argument (`handles.push(…)`, `f(…)`), returned,
/// or immediately joined (`.join()` in the postfix chain). Discarded when
/// it sits in statement position with no `join` in its postfix chain.
pub fn spawn_handle_used(toks: &[Tok], chain_start: usize) -> bool {
    // Look backwards for the statement context.
    let mut j = chain_start;
    // Walk back over the path/receiver tokens feeding this call.
    while j >= 1 {
        let p = &toks[j - 1];
        let part_of_chain = matches!(p.kind, TokKind::Ident)
            || (p.kind == TokKind::Op && (p.text == "::" || p.text == "." || p.text == ")"));
        if part_of_chain {
            // `)` ends a sub-expression: jump over the balanced group.
            if p.kind == TokKind::Op && p.text == ")" {
                let mut depth = 1i32;
                let mut k = j - 1;
                while k >= 1 && depth > 0 {
                    k -= 1;
                    if toks[k].kind == TokKind::Op {
                        match toks[k].text.as_str() {
                            ")" => depth += 1,
                            "(" => depth -= 1,
                            _ => {}
                        }
                    }
                }
                j = k;
            } else {
                j -= 1;
            }
            continue;
        }
        break;
    }
    let used_by_context = if j == 0 {
        false
    } else {
        let p = &toks[j - 1];
        match (&p.kind, p.text.as_str()) {
            (TokKind::Op, "=") => {
                // `let _ = …` still discards.
                !(j >= 2 && toks[j - 2].kind == TokKind::Ident && toks[j - 2].text == "_")
            }
            (TokKind::Op, "(" | "," | "[" | "{") => {
                // Argument / collection element position … except a plain
                // block `{` which is statement position. `(`/`,`/`[` are
                // always value position.
                p.text != "{"
            }
            (TokKind::Ident, "return") => true,
            (TokKind::Op, "-" | "+" | ";" | "}") => false,
            _ => false,
        }
    };
    if used_by_context {
        return true;
    }
    // Statement-position candidate: scan forward past the call's postfix
    // chain. `.join(` in the chain means joined. Otherwise the first
    // structural token at chain depth decides: `;` discards the value;
    // `}` (block tail expression), `)`/`,` (argument), and `{` (match/if
    // scrutinee) all let the handle flow onward — the dominant false-
    // positive shape is `(0..n).map(|i| { … spawn(…) }).collect()`, whose
    // spawn is a tail expression feeding the collected Vec<JoinHandle>.
    let mut depth = 0i32;
    let mut k = chain_start;
    while let Some(t) = toks.get(k) {
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        return true;
                    }
                    depth -= 1;
                }
                ";" if depth <= 0 => return false,
                "," | "}" | "{" if depth == 0 => return true,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && t.text == "join" && depth <= 0 {
            return true;
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parse_src(rel: &str, src: &str) -> ParsedFile {
        parse(rel, &scan(src))
    }

    #[test]
    fn crate_and_module_derivation() {
        assert_eq!(
            crate_and_module("crates/tensor/src/simd/avx2.rs"),
            ("egeria_tensor".into(), vec!["simd".into(), "avx2".into()])
        );
        assert_eq!(
            crate_and_module("crates/tensor/src/lib.rs"),
            ("egeria_tensor".into(), vec![])
        );
        assert_eq!(
            crate_and_module("crates/bench/src/bin/bench_ops.rs"),
            ("egeria_bench".into(), vec!["bin".into(), "bench_ops".into()])
        );
        assert_eq!(
            crate_and_module("examples/quickstart.rs"),
            ("examples".into(), vec!["quickstart".into()])
        );
        assert_eq!(
            crate_and_module("tests/golden_run.rs"),
            ("tests".into(), vec!["golden_run".into()])
        );
    }

    #[test]
    fn fns_mods_and_impls_qualify() {
        let src = "
            fn top() {}
            mod inner {
                pub fn nested() {}
                impl Widget {
                    fn method(&self) {}
                }
            }
            impl Display for Gauge {
                fn fmt(&self) {}
            }
            trait Clock {
                fn now(&self) -> u64 { 0 }
            }
        ";
        let pf = parse_src("crates/obs/src/metrics.rs", src);
        let quals: Vec<&str> = pf.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "egeria_obs::metrics::top",
                "egeria_obs::metrics::inner::nested",
                "egeria_obs::metrics::inner::Widget::method",
                "egeria_obs::metrics::Gauge::fmt",
                "egeria_obs::metrics::Clock::now",
            ]
        );
        assert_eq!(pf.fns[3].impl_type.as_deref(), Some("Gauge"));
    }

    #[test]
    fn impl_with_generics_and_where_clause() {
        let src = "impl<T: Clone> Ring<T> where T: Send { fn push(&mut self) {} }";
        let pf = parse_src("crates/obs/src/trace.rs", src);
        assert_eq!(pf.fns[0].qual, "egeria_obs::trace::Ring::push");
    }

    #[test]
    fn calls_and_sinks_attribute_to_innermost_fn() {
        let src = "
            fn outer() {
                helper();
                gemm::pack_a(1);
                fn inner() { other.unwrap(); }
                let c = || nested_call();
            }
        ";
        let pf = parse_src("crates/tensor/src/gemm.rs", src);
        let call_of = |name: &str| {
            pf.calls
                .iter()
                .find(|c| match &c.kind {
                    CallKind::Direct(p) => p.last().map(String::as_str) == Some(name),
                    CallKind::Method(m, _) => m == name,
                })
                .expect(name)
        };
        assert_eq!(pf.fns[call_of("helper").caller].name, "outer");
        assert_eq!(pf.fns[call_of("pack_a").caller].name, "outer");
        // Closure body belongs to the enclosing fn.
        assert_eq!(pf.fns[call_of("nested_call").caller].name, "outer");
        // The unwrap sink belongs to the nested fn.
        assert_eq!(pf.sinks.len(), 1);
        assert_eq!(pf.fns[pf.sinks[0].fn_idx].name, "inner");
    }

    #[test]
    fn use_trees_flatten() {
        let src = "
            use std::sync::{Arc, Mutex as Mu};
            use crate::gemm::pack_a;
            use super::pool::*;
            fn f() {}
        ";
        let pf = parse_src("crates/tensor/src/simd/mod.rs", src);
        let by_leaf = |l: &str| pf.imports.iter().find(|i| i.leaf == l).map(|i| &i.path);
        assert_eq!(
            by_leaf("Arc").unwrap(),
            &vec!["std".to_string(), "sync".to_string(), "Arc".to_string()]
        );
        assert_eq!(
            by_leaf("Mu").unwrap(),
            &vec!["std".to_string(), "sync".to_string(), "Mutex".to_string()]
        );
        assert_eq!(
            by_leaf("pack_a").unwrap(),
            &vec![
                "egeria_tensor".to_string(),
                "gemm".to_string(),
                "pack_a".to_string()
            ]
        );
        assert_eq!(
            pf.glob_imports,
            vec![vec![
                "egeria_tensor".to_string(),
                "pool".to_string()
            ]]
        );
    }

    #[test]
    fn sinks_classify() {
        let src = "
            fn f() {
                panic!(\"boom\");
                x.unwrap();
                y.expect(\"msg\");
                assert_eq!(a, b);
                let t = Instant::now();
                let d = t.elapsed();
                let r = thread_rng();
            }
        ";
        let pf = parse_src("crates/core/src/trainer.rs", src);
        let kinds: Vec<SinkKind> = pf.sinks.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SinkKind::Panic,
                SinkKind::Panic,
                SinkKind::Panic,
                SinkKind::Panic,
                SinkKind::WallClock,
                SinkKind::WallClock,
                SinkKind::Entropy,
            ]
        );
    }

    #[test]
    fn lock_sites_record_receiver() {
        let src = "
            struct S { state: Mutex<u32>, log: RwLock<Vec<u8>> }
            fn f(s: &S) {
                let g = s.state.lock();
                let r = s.log.read();
            }
        ";
        let pf = parse_src("crates/serve/src/engine.rs", src);
        assert_eq!(pf.lock_fields, vec!["state".to_string(), "log".to_string()]);
        assert_eq!(pf.locks.len(), 2);
        assert_eq!(pf.locks[0].name, "state");
        assert_eq!(pf.locks[1].name, "log");
    }

    #[test]
    fn spawn_handle_usage_heuristic() {
        let used = "fn f() { let h = thread::spawn(w); handles.push(thread::spawn(w)); thread::spawn(w).join().unwrap(); }";
        let pf = parse_src("crates/core/src/controller.rs", used);
        assert!(pf.spawns.iter().all(|s| s.handle_used), "{:?}", pf.spawns);

        let dropped = "fn f() { thread::spawn(w); let _ = thread::spawn(w); }";
        let pf = parse_src("crates/core/src/controller.rs", dropped);
        assert_eq!(pf.spawns.len(), 2);
        assert!(pf.spawns.iter().all(|s| !s.handle_used), "{:?}", pf.spawns);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let pf = parse_src("crates/core/src/freezer.rs", src);
        assert!(!pf.fns[0].is_test);
        assert!(pf.fns[1].is_test);
    }
}
