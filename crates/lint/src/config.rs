//! `lint.toml` parsing: a minimal TOML subset, parsed by hand because the
//! lint is dependency-free.
//!
//! Supported grammar (which is all the checked-in config uses):
//!
//! ```toml
//! [section]            # also dotted: [rules.float-exact-eq]
//! key = "string"
//! key = ["a", "b"]     # string arrays, single- or multi-line
//! key = true           # booleans
//! # comments and blank lines
//! ```
//!
//! Path values are interpreted relative to the repo root and match by
//! prefix: `crates/tensor/src/` scopes a rule to that directory,
//! `crates/tensor/src/pool.rs` to one file.

use std::collections::BTreeMap;

/// Scoping and options for one rule, from its `[rules.<id>]` table.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// String keys → single values.
    pub strings: BTreeMap<String, String>,
    /// String keys → array values.
    pub lists: BTreeMap<String, Vec<String>>,
    /// String keys → booleans.
    pub bools: BTreeMap<String, bool>,
}

impl RuleConfig {
    /// The `paths` list, if present — `None` means "applies everywhere".
    pub fn paths(&self) -> Option<&[String]> {
        self.lists.get("paths").map(|v| v.as_slice())
    }

    pub fn list(&self, key: &str) -> &[String] {
        self.lists.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn bool(&self, key: &str, default: bool) -> bool {
        self.bools.get(key).copied().unwrap_or(default)
    }
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes excluded from scanning (from `[lint] exclude`).
    pub exclude: Vec<String>,
    /// Per-rule tables, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
    /// The `[graph]` table: call-graph entry points (`kernel_entries`,
    /// `serialize_entries`) shared by the graph-tier rules (§5h).
    pub graph: RuleConfig,
}

impl Config {
    /// Whether a repo-relative path is excluded from the walk.
    pub fn is_excluded(&self, rel: &str) -> bool {
        self.exclude.iter().any(|e| path_matches(rel, e))
    }

    /// The config table for `rule` (empty if the table is absent).
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Whether a `[rules.<id>]` table is declared at all. Graph-tier rules
    /// only run when declared, so pre-graph configs keep exact behavior.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.rules.contains_key(rule)
    }

    /// Whether `rule` applies to `rel`: true when the rule table has no
    /// `paths` key, otherwise when one of the entries matches.
    pub fn rule_applies(&self, rule: &str, rel: &str) -> bool {
        match self.rule(rule).paths() {
            None => true,
            Some(paths) => paths.iter().any(|p| path_matches(rel, p)),
        }
    }
}

/// Prefix/exact path matching: `entry` ending in `/` (or naming a directory
/// prefix) matches everything under it; otherwise the path must equal the
/// entry exactly.
pub fn path_matches(rel: &str, entry: &str) -> bool {
    if entry.ends_with('/') {
        rel.starts_with(entry)
    } else {
        rel == entry
    }
}

/// A `lint.toml` syntax error with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the supported TOML subset.
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    // Current section: None (top level), Some(("lint", None)) for `[lint]`,
    // Some(("rules", Some(id))) for `[rules.<id>]`.
    let mut section: Option<(String, Option<String>)> = None;

    let raw_lines: Vec<&str> = src.lines().collect();
    let mut idx = 0usize;
    while idx < raw_lines.len() {
        let lineno = idx + 1;
        let mut line = strip_comment(raw_lines[idx]).trim().to_string();
        idx += 1;
        if line.is_empty() {
            continue;
        }
        // Multi-line arrays: keep consuming lines until the bracket closes.
        if line.contains('[') && line.contains('=') && !line.trim_end().ends_with(']') {
            while idx < raw_lines.len() {
                let cont = strip_comment(raw_lines[idx]).trim().to_string();
                idx += 1;
                line.push(' ');
                line.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let header = header.trim();
            match header.split_once('.') {
                Some((a, b)) => {
                    let (a, b) = (a.trim().to_string(), b.trim().to_string());
                    // A bare `[rules.<id>]` header opts the rule in even
                    // with no keys — graph rules run iff their table exists.
                    if a == "rules" {
                        cfg.rules.entry(b.clone()).or_default();
                    }
                    section = Some((a, Some(b)));
                }
                None => section = Some((header.to_string(), None)),
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value` or `[section]`, got `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let value = value.trim();
        match &section {
            Some((s, None)) if s == "lint" => {
                if key == "exclude" {
                    cfg.exclude = parse_array(value, lineno)?;
                } else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown [lint] key `{key}`"),
                    });
                }
            }
            Some((s, Some(rule))) if s == "rules" => {
                let table = cfg.rules.entry(rule.clone()).or_default();
                if value.starts_with('[') {
                    table.lists.insert(key, parse_array(value, lineno)?);
                } else if value == "true" || value == "false" {
                    table.bools.insert(key, value == "true");
                } else {
                    table.strings.insert(key, parse_string(value, lineno)?);
                }
            }
            Some((s, None)) if s == "graph" => {
                if value.starts_with('[') {
                    cfg.graph.lists.insert(key, parse_array(value, lineno)?);
                } else if value == "true" || value == "false" {
                    cfg.graph.bools.insert(key, value == "true");
                } else {
                    cfg.graph.strings.insert(key, parse_string(value, lineno)?);
                }
            }
            _ => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("key `{key}` outside a [lint] or [rules.*] section"),
                });
            }
        }
    }
    Ok(cfg)
}

/// Drops a trailing `# comment` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or(ConfigError {
            line,
            message: format!("expected a quoted string, got `{value}`"),
        })
}

fn parse_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or(ConfigError {
            line,
            message: format!("expected a single-line array, got `{value}`"),
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let src = r#"
# top comment
[lint]
exclude = ["vendor/", "target/"]

[rules.float-exact-eq]
skip_test_code = true

[rules.no-panic-in-kernels]
paths = ["crates/tensor/src/gemm.rs", "crates/tensor/src/"]

[rules.vendored-deps-only]
manifest = "Cargo.toml" # trailing comment
"#;
        let cfg = parse(src).unwrap();
        assert!(cfg.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!cfg.is_excluded("crates/tensor/src/pool.rs"));
        assert!(cfg.rule("float-exact-eq").bool("skip_test_code", false));
        assert!(cfg.rule_applies("no-panic-in-kernels", "crates/tensor/src/gemm.rs"));
        assert!(cfg.rule_applies("no-panic-in-kernels", "crates/tensor/src/pool.rs"));
        assert!(!cfg.rule_applies("no-panic-in-kernels", "crates/nn/src/optim.rs"));
        // Absent table → applies everywhere.
        assert!(cfg.rule_applies("unsafe-needs-safety", "anything.rs"));
        assert_eq!(cfg.rule("vendored-deps-only").strings["manifest"], "Cargo.toml");
    }

    #[test]
    fn graph_section_parses() {
        let src = "
[graph]
kernel_entries = [\"egeria_tensor::gemm::*\"]
serialize_entries = [\"egeria_core::checkpoint::to_bytes\"]

[rules.lock-order]
tier = \"warn\"
";
        let cfg = parse(src).unwrap();
        assert_eq!(cfg.graph.list("kernel_entries"), ["egeria_tensor::gemm::*"]);
        assert_eq!(
            cfg.graph.list("serialize_entries"),
            ["egeria_core::checkpoint::to_bytes"]
        );
        assert!(cfg.has_rule("lock-order"));
        assert!(!cfg.has_rule("unjoined-spawn"));
        assert_eq!(cfg.rule("lock-order").strings["tier"], "warn");
    }

    #[test]
    fn multi_line_arrays_parse() {
        let src = "[rules.r]\npaths = [\n    \"a/\", # comment\n    \"b.rs\",\n]\n";
        let cfg = parse(src).unwrap();
        assert_eq!(cfg.rule("r").list("paths"), ["a/", "b.rs"]);
    }

    #[test]
    fn rejects_stray_keys_and_bad_values() {
        assert!(parse("x = 1\n").is_err());
        assert!(parse("[lint]\nbogus = \"x\"\n").is_err());
        assert!(parse("[rules.r]\nk = [unquoted]\n").is_err());
    }
}
