//! Degradation matrix for the circuit breaker: a grid of
//! (trip_after, cooldown) configurations driven through the full state
//! machine on a [`VirtualClock`]. Every transition below is timed
//! exclusively by `advance_us`, so the matrix is bit-identical regardless
//! of wall-clock scheduling or `EGERIA_THREADS`.

use egeria_obs::Telemetry;
use egeria_resil::{BreakerState, CircuitBreaker, HealthMonitor, VirtualClock};
use std::sync::Arc;

/// The configuration grid. Covers the degenerate single-failure trip, the
/// production serve-probe setting (3 / 200ms), and a long-cooldown point.
const MATRIX: &[(u32, u64)] = &[(1, 100), (2, 1_000), (3, 200_000), (5, 50)];

fn counter(t: &Telemetry, name: &str) -> u64 {
    t.metrics_snapshot().counter(name).unwrap_or(0)
}

/// Trip threshold is exact: `trip_after - 1` consecutive failures leave the
/// breaker closed and admitting; the `trip_after`-th trips it.
#[test]
fn trip_threshold_is_exact_across_matrix() {
    for &(trip_after, cooldown_us) in MATRIX {
        let clock = VirtualClock::shared();
        let t = Telemetry::enabled();
        let b = CircuitBreaker::new(trip_after, cooldown_us, clock.clone(), t.clone());
        for i in 0..trip_after.saturating_sub(1) {
            assert!(b.allow(), "({trip_after},{cooldown_us}) failure {i}: still closed");
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.allow());
        b.record_failure();
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "({trip_after},{cooldown_us}) must trip on failure #{trip_after}"
        );
        assert!(!b.allow(), "open breaker rejects");
        assert_eq!(counter(&t, "resil.breaker.trips"), 1);
        assert_eq!(counter(&t, "resil.breaker.rejected"), 1);
    }
}

/// A success inside the streak resets the counter: the breaker then takes
/// the full `trip_after` fresh failures to trip again.
#[test]
fn success_resets_streak_across_matrix() {
    for &(trip_after, cooldown_us) in MATRIX {
        if trip_after < 2 {
            continue; // no partial streak exists below threshold 2
        }
        let clock = VirtualClock::shared();
        let b = CircuitBreaker::new(trip_after, cooldown_us, clock, Telemetry::disabled());
        for _ in 0..trip_after - 1 {
            b.record_failure();
        }
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        for _ in 0..trip_after - 1 {
            b.record_failure();
        }
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "({trip_after},{cooldown_us}) reset streak must not carry over"
        );
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }
}

/// Cooldown boundary: rejected at `cooldown - 1` µs, half-open with exactly
/// one admitted probe at `cooldown` µs.
#[test]
fn half_open_admits_exactly_one_probe_across_matrix() {
    for &(trip_after, cooldown_us) in MATRIX {
        let clock = VirtualClock::shared();
        let t = Telemetry::enabled();
        let b = CircuitBreaker::new(trip_after, cooldown_us, clock.clone(), t.clone());
        for _ in 0..trip_after {
            b.record_failure();
        }
        clock.advance_us(cooldown_us - 1);
        assert!(!b.allow(), "({trip_after},{cooldown_us}) 1µs early: still open");
        clock.advance_us(1);
        assert!(b.allow(), "({trip_after},{cooldown_us}) at boundary: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "second concurrent probe rejected");
        assert!(!b.allow(), "third concurrent probe rejected");
        assert_eq!(counter(&t, "resil.breaker.half_opens"), 1);
        assert_eq!(counter(&t, "resil.breaker.rejected"), 3);
    }
}

/// Recovery fully resets the machine: after a successful half-open probe
/// the breaker is closed, the streak is zero, and re-tripping again takes
/// the full threshold.
#[test]
fn recovery_resets_machine_across_matrix() {
    for &(trip_after, cooldown_us) in MATRIX {
        let clock = VirtualClock::shared();
        let t = Telemetry::enabled();
        let b = CircuitBreaker::new(trip_after, cooldown_us, clock.clone(), t.clone());
        for _ in 0..trip_after {
            b.record_failure();
        }
        clock.advance_us(cooldown_us);
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(counter(&t, "resil.breaker.recoveries"), 1);
        // The machine is genuinely reset: tripping again takes the full
        // threshold and a fresh cooldown.
        for _ in 0..trip_after {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(counter(&t, "resil.breaker.trips"), 2);
    }
}

/// A failed recovery probe re-arms a full cooldown (measured from the
/// failure, not the original trip) and counts as a reopen, not a trip.
#[test]
fn failed_probe_rearms_full_cooldown_across_matrix() {
    for &(trip_after, cooldown_us) in MATRIX {
        let clock = VirtualClock::shared();
        let t = Telemetry::enabled();
        let b = CircuitBreaker::new(trip_after, cooldown_us, clock.clone(), t.clone());
        for _ in 0..trip_after {
            b.record_failure();
        }
        clock.advance_us(cooldown_us);
        assert!(b.allow());
        clock.advance_us(7); // probe takes time before failing
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        clock.advance_us(cooldown_us - 1);
        assert!(!b.allow(), "({trip_after},{cooldown_us}) rearmed cooldown holds");
        clock.advance_us(1);
        assert!(b.allow(), "({trip_after},{cooldown_us}) second probe after rearm");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(counter(&t, "resil.breaker.trips"), 1, "reopen is not a trip");
        assert_eq!(counter(&t, "resil.breaker.reopens"), 1);
        assert_eq!(counter(&t, "resil.breaker.recoveries"), 1);
    }
}

/// Health wiring across the matrix: a trip degrades, recovery resolves,
/// and the reason tag is idempotent across repeated trips.
#[test]
fn health_degrades_on_trip_and_resolves_on_recovery() {
    for &(trip_after, cooldown_us) in MATRIX {
        let clock = VirtualClock::shared();
        let health = HealthMonitor::new(Telemetry::disabled());
        let b = CircuitBreaker::new(trip_after, cooldown_us, clock.clone(), Telemetry::disabled())
            .with_health(Arc::clone(&health), "serve-breaker-open");
        for _ in 0..trip_after {
            b.record_failure();
        }
        assert_eq!(health.level(), 1, "({trip_after},{cooldown_us}) trip degrades");
        // Failed probe keeps the degradation active.
        clock.advance_us(cooldown_us);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(health.level(), 1);
        // Successful probe resolves it.
        clock.advance_us(cooldown_us);
        assert!(b.allow());
        b.record_success();
        assert_eq!(health.level(), 0, "({trip_after},{cooldown_us}) recovery resolves");
    }
}
