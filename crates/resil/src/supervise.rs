//! Capped-respawn supervision budgets.
//!
//! A [`Watchdog`] does not own threads — the async controller and the
//! serve engine keep spawning their own workers — it owns the *budget*:
//! each time a supervised component is found dead, the supervisor asks
//! [`request_respawn`](Watchdog::request_respawn). Under the cap the
//! answer is yes (counted, exported); once the budget is exhausted the
//! answer is permanently no and the wired [`HealthMonitor`] goes
//! Critical, because a component that keeps dying is a fault the fallback
//! paths must absorb rather than a blip worth respawn-looping on.

use crate::health::HealthMonitor;
use egeria_obs::{ArgValue, Telemetry};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    respawns: u32,
    exhausted: bool,
}

/// A respawn budget for one supervised component.
pub struct Watchdog {
    name: &'static str,
    max_respawns: u32,
    telemetry: Telemetry,
    health: Option<(Arc<HealthMonitor>, &'static str)>,
    inner: Mutex<Inner>,
}

impl Watchdog {
    /// A budget of `max_respawns` for the component called `name`
    /// (used as the counter suffix and trace tag).
    pub fn new(name: &'static str, max_respawns: u32, telemetry: Telemetry) -> Self {
        Watchdog {
            name,
            max_respawns,
            telemetry,
            health: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Wires health reporting: budget exhaustion raises `reason` as a
    /// Critical condition.
    pub fn with_health(mut self, health: Arc<HealthMonitor>, reason: &'static str) -> Self {
        self.health = Some((health, reason));
        self
    }

    /// Asks permission to respawn the supervised component. Returns
    /// `true` (and spends one unit of budget) while under the cap;
    /// returns `false` forever after, flipping health to Critical on the
    /// first exhausted request.
    pub fn request_respawn(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.respawns < self.max_respawns {
            inner.respawns += 1;
            let count = inner.respawns;
            drop(inner);
            self.telemetry.counter("resil.watchdog.respawns").inc();
            self.telemetry.instant(
                "watchdog_respawn",
                None,
                None,
                vec![
                    ("component", ArgValue::Str(self.name)),
                    ("respawn", ArgValue::U64(u64::from(count))),
                ],
            );
            true
        } else {
            let first = !inner.exhausted;
            inner.exhausted = true;
            drop(inner);
            if first {
                self.telemetry.counter("resil.watchdog.exhausted").inc();
                if let Some((h, reason)) = &self.health {
                    h.critical(reason);
                }
            }
            false
        }
    }

    /// Respawns granted so far.
    pub fn respawns(&self) -> u32 {
        self.inner.lock().respawns
    }

    /// Whether the budget has been exhausted (a request was denied).
    pub fn exhausted(&self) -> bool {
        self.inner.lock().exhausted
    }

    /// The supervised component's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_cap_then_denies_forever() {
        let w = Watchdog::new("controller", 2, Telemetry::disabled());
        assert!(w.request_respawn());
        assert!(w.request_respawn());
        assert!(!w.request_respawn());
        assert!(!w.request_respawn(), "denial is permanent");
        assert_eq!(w.respawns(), 2);
        assert!(w.exhausted());
    }

    #[test]
    fn zero_budget_denies_immediately() {
        let w = Watchdog::new("worker", 0, Telemetry::disabled());
        assert!(!w.request_respawn());
        assert_eq!(w.respawns(), 0);
    }

    #[test]
    fn exhaustion_goes_critical_once() {
        let t = Telemetry::enabled();
        let health = HealthMonitor::new(t.clone());
        let w = Watchdog::new("controller", 1, t.clone())
            .with_health(Arc::clone(&health), "controller-respawn-budget-exhausted");
        assert!(w.request_respawn());
        assert_eq!(health.level(), 0, "respawns under the cap are not critical");
        assert!(!w.request_respawn());
        assert!(!w.request_respawn());
        assert_eq!(health.level(), 2);
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("resil.watchdog.respawns"), Some(1));
        assert_eq!(snap.counter("resil.watchdog.exhausted"), Some(1));
    }
}
