//! Circuit breaker for serve-routed reference probes.
//!
//! The reference manager prefers the batched serve engine for probe
//! forwards but owns a bit-identical inline fallback. When the serve path
//! fails repeatedly, hammering it on every probe just adds latency — the
//! breaker converts "N consecutive failures" into a cooldown during which
//! callers skip straight to the fallback, then lets exactly one recovery
//! probe through to test the water:
//!
//! ```text
//!   Closed --[trip_after consecutive failures]--> Open
//!   Open   --[cooldown elapsed, next allow()]---> HalfOpen (one probe)
//!   HalfOpen --[probe succeeds]--> Closed        (recovery)
//!   HalfOpen --[probe fails]----> Open           (re-arm cooldown)
//! ```
//!
//! Time comes from the injected [`Clock`] only, so the whole state
//! machine is driven deterministically on a
//! [`VirtualClock`](crate::clock::VirtualClock) in tests. Transitions are
//! exported as `resil.breaker.*` counters and, when wired, as health
//! degradations under a caller-chosen reason tag.

use crate::clock::Clock;
use crate::health::HealthMonitor;
use egeria_obs::Telemetry;
use parking_lot::Mutex;
use std::sync::Arc;

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are being counted.
    Closed,
    /// Tripped: all traffic is rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one recovery probe is allowed through.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    open_until_us: u64,
    half_open_inflight: bool,
}

/// A consecutive-failure circuit breaker timed via [`Clock`].
///
/// Callers gate work on [`allow`](Self::allow) and report the outcome via
/// [`record_success`](Self::record_success) /
/// [`record_failure`](Self::record_failure).
pub struct CircuitBreaker {
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    health: Option<(Arc<HealthMonitor>, &'static str)>,
    trip_after: u32,
    cooldown_us: u64,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `trip_after` consecutive
    /// failures and stays open for `cooldown_us` of `clock` time.
    pub fn new(
        trip_after: u32,
        cooldown_us: u64,
        clock: Arc<dyn Clock>,
        telemetry: Telemetry,
    ) -> Self {
        CircuitBreaker {
            clock,
            telemetry,
            health: None,
            trip_after: trip_after.max(1),
            cooldown_us,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until_us: 0,
                half_open_inflight: false,
            }),
        }
    }

    /// Wires health reporting: a trip degrades `reason`, a recovery
    /// resolves it.
    pub fn with_health(mut self, health: Arc<HealthMonitor>, reason: &'static str) -> Self {
        self.health = Some((health, reason));
        self
    }

    /// Whether the protected operation may run now. An `Open` breaker
    /// whose cooldown has elapsed moves to `HalfOpen` and admits exactly
    /// one recovery probe; rejected calls bump `resil.breaker.rejected`.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock();
        let admitted = match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if self.clock.now_us() >= inner.open_until_us {
                    inner.state = BreakerState::HalfOpen;
                    inner.half_open_inflight = true;
                    self.telemetry.counter("resil.breaker.half_opens").inc();
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.half_open_inflight {
                    false
                } else {
                    inner.half_open_inflight = true;
                    true
                }
            }
        };
        drop(inner);
        if !admitted {
            self.telemetry.counter("resil.breaker.rejected").inc();
        }
        admitted
    }

    /// Reports a successful protected operation. In `HalfOpen` this is
    /// the recovery signal: the breaker closes and the failure streak
    /// resets.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Closed;
                inner.consecutive_failures = 0;
                inner.half_open_inflight = false;
                drop(inner);
                self.telemetry.counter("resil.breaker.recoveries").inc();
                if let Some((h, reason)) = &self.health {
                    h.resolve(reason);
                }
            }
            // A success racing in while Open (e.g. a slow in-flight probe
            // from before the trip) is ignored: recovery goes through the
            // half-open probe.
            BreakerState::Open => {}
        }
    }

    /// Reports a failed protected operation. Trips `Closed → Open` when
    /// the consecutive-failure streak reaches the threshold; a failed
    /// half-open recovery probe re-arms the cooldown.
    pub fn record_failure(&self) {
        let now = self.clock.now_us();
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.trip_after {
                    inner.state = BreakerState::Open;
                    inner.open_until_us = now + self.cooldown_us;
                    drop(inner);
                    self.telemetry.counter("resil.breaker.trips").inc();
                    if let Some((h, reason)) = &self.health {
                        h.degrade(reason);
                    }
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.open_until_us = now + self.cooldown_us;
                inner.half_open_inflight = false;
                self.telemetry.counter("resil.breaker.reopens").inc();
            }
            BreakerState::Open => {}
        }
    }

    /// The current state (for tests and the health report).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// The current consecutive-failure streak (Closed state only).
    pub fn consecutive_failures(&self) -> u32 {
        self.inner.lock().consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn breaker(clock: Arc<VirtualClock>) -> CircuitBreaker {
        CircuitBreaker::new(3, 1_000, clock, Telemetry::disabled())
    }

    #[test]
    fn stays_closed_below_threshold_and_success_resets_streak() {
        let clock = VirtualClock::shared();
        let b = breaker(Arc::clone(&clock));
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn trips_open_on_consecutive_failures_and_rejects() {
        let clock = VirtualClock::shared();
        let b = breaker(Arc::clone(&clock));
        for _ in 0..3 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker rejects before cooldown");
    }

    #[test]
    fn half_open_admits_one_probe_then_recovers() {
        let clock = VirtualClock::shared();
        let b = breaker(Arc::clone(&clock));
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance_us(1_000);
        assert!(b.allow(), "cooldown elapsed: recovery probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "second probe rejected while one is in flight");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_recovery_probe_reopens_with_fresh_cooldown() {
        let clock = VirtualClock::shared();
        let b = breaker(Arc::clone(&clock));
        for _ in 0..3 {
            b.record_failure();
        }
        clock.advance_us(1_000);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        clock.advance_us(999);
        assert!(!b.allow(), "fresh cooldown not yet elapsed");
        clock.advance_us(1);
        assert!(b.allow(), "second recovery probe after full cooldown");
    }

    #[test]
    fn health_tracks_trip_and_recovery() {
        let clock = VirtualClock::shared();
        let health = HealthMonitor::new(Telemetry::disabled());
        let b = CircuitBreaker::new(2, 500, clock.clone(), Telemetry::disabled())
            .with_health(Arc::clone(&health), "serve-breaker-open");
        b.record_failure();
        b.record_failure();
        assert_eq!(health.level(), 1);
        clock.advance_us(500);
        assert!(b.allow());
        b.record_success();
        assert_eq!(health.level(), 0);
    }
}
