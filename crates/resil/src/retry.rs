//! Deterministic retry with exponential backoff and seeded jitter.
//!
//! A [`RetryPolicy`] is a pure description: the full backoff sequence is a
//! function of `(base, factor, cap, jitter, seed)` and nothing else — no
//! entropy, no wall clock. Execution sleeps through the injected
//! [`Clock`], so tests drive a retry loop to completion on a
//! [`VirtualClock`](crate::clock::VirtualClock) without real waiting.

use crate::clock::Clock;
use crate::fault::splitmix64;

/// Deterministic exponential backoff with seeded jitter.
///
/// Attempt `k` (0-based) that fails sleeps `delay_us(k)` before attempt
/// `k + 1`; the final failure is returned without sleeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_us: u64,
    /// Multiplier applied per retry (2 = classic doubling).
    pub factor: u32,
    /// Ceiling on the pre-jitter backoff, in microseconds.
    pub cap_us: u64,
    /// Additive jitter as a fraction of the delay, in per-mille
    /// (250 = up to +25%). Zero disables jitter.
    pub jitter_permille: u32,
    /// Seed for the jitter draws. Same seed → same delays, always.
    pub seed: u64,
}

impl RetryPolicy {
    /// A doubling policy: `max_attempts` tries starting at `base_us`,
    /// capped at 64× base, no jitter.
    pub fn new(max_attempts: u32, base_us: u64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_us,
            factor: 2,
            cap_us: base_us.saturating_mul(64),
            jitter_permille: 0,
            seed: 0,
        }
    }

    /// Sets the backoff cap.
    pub fn with_cap_us(mut self, cap_us: u64) -> Self {
        self.cap_us = cap_us;
        self
    }

    /// Enables seeded jitter: up to `permille`/1000 of the delay is added,
    /// drawn deterministically from `seed` per attempt.
    pub fn with_jitter(mut self, permille: u32, seed: u64) -> Self {
        self.jitter_permille = permille;
        self.seed = seed;
        self
    }

    /// The backoff after failed attempt `attempt` (0-based), in
    /// microseconds. Pure: depends only on the policy fields.
    pub fn delay_us(&self, attempt: u32) -> u64 {
        let exp = u64::from(self.factor).saturating_pow(attempt);
        let mut d = self.base_us.saturating_mul(exp).min(self.cap_us);
        if self.jitter_permille > 0 && d > 0 {
            let span = d
                .saturating_mul(u64::from(self.jitter_permille))
                / 1000;
            if span > 0 {
                let draw = splitmix64(self.seed ^ splitmix64(u64::from(attempt)));
                d = d.saturating_add(draw % (span + 1));
            }
        }
        d
    }

    /// The full sleep sequence a run of all-failing attempts would take
    /// (one entry per retry, so `max_attempts - 1` entries).
    pub fn delays(&self) -> Vec<u64> {
        (0..self.max_attempts.saturating_sub(1))
            .map(|a| self.delay_us(a))
            .collect()
    }

    /// Runs `op` until it succeeds or attempts are exhausted, sleeping
    /// the backoff between attempts via `clock`. `op` receives the
    /// 0-based attempt index; the last error is returned on exhaustion.
    pub fn run<T, E>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt + 1 >= self.max_attempts {
                        return Err(e);
                    }
                    clock.sleep_us(self.delay_us(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::Arc;

    #[test]
    fn delays_double_and_cap() {
        let p = RetryPolicy::new(6, 100).with_cap_us(500);
        assert_eq!(p.delays(), vec![100, 200, 400, 500, 500]);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::new(5, 1000).with_jitter(250, 42);
        let a = p.delays();
        let b = p.delays();
        assert_eq!(a, b, "same seed must give the same delays");
        for (i, d) in a.iter().enumerate() {
            let base = RetryPolicy::new(5, 1000).delay_us(i as u32);
            assert!(*d >= base && *d <= base + base / 4, "delay {d} vs base {base}");
        }
        let other = RetryPolicy::new(5, 1000).with_jitter(250, 43).delays();
        assert_ne!(a, other, "different seeds must jitter differently");
    }

    #[test]
    fn run_returns_first_success_without_extra_sleeps() {
        let clock = VirtualClock::new();
        let mut calls = 0;
        let out: Result<u32, ()> = RetryPolicy::new(5, 1_000_000).run(&clock, |_| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 1);
        assert_eq!(clock.now_us(), 0, "no backoff slept on immediate success");
    }

    #[test]
    fn run_retries_through_virtual_clock_and_surfaces_last_error() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let clock = VirtualClock::shared();
        let driver = Arc::clone(&clock);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        // The retry loop sleeps on the virtual clock; a driver thread
        // plays time forward until the loop finishes, so the test can
        // never deadlock on an un-advanced sleep.
        // egeria-lint: allow(determinism): test thread advancing the
        // virtual clock under the retry loop's sleeps.
        let h = std::thread::spawn(move || {
            while !done2.load(Ordering::Acquire) {
                driver.advance_us(100);
                std::thread::yield_now();
            }
        });
        let mut attempts = Vec::new();
        let out: Result<(), u32> = RetryPolicy::new(3, 50).run(clock.as_ref(), |a| {
            attempts.push(a);
            Err(a)
        });
        done.store(true, Ordering::Release);
        h.join().unwrap();
        assert_eq!(out, Err(2), "last error surfaces after exhaustion");
        assert_eq!(attempts, vec![0, 1, 2]);
        assert!(clock.now_us() >= 150, "slept 50 + 100 of virtual time");
    }
}
