//! The pluggable clock driving every time-based policy decision.
//!
//! This is the **only** module in the resilience layer allowed to read the
//! wall clock (`lint.toml` puts the rest of the workspace's timing code
//! under the determinism rule's wall-clock ban): the serve batcher and
//! engine, the retry/backoff policy, and the circuit breaker all time
//! themselves through [`Clock`], so tests substitute a [`VirtualClock`]
//! and pin flush/deadline/shed/backoff/trip behavior deterministically.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonic clock in microseconds since an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch.
    fn now_us(&self) -> u64;

    /// Blocks the calling thread for `us` microseconds of *this clock's*
    /// time. A virtual clock blocks until someone advances it that far.
    fn sleep_us(&self, us: u64);
}

/// The production clock: wall time from [`Instant`].
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A real clock whose epoch is "now".
    pub fn new() -> Self {
        RealClock { epoch: Instant::now() }
    }

    /// Convenience: an `Arc<dyn Clock>` real clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn sleep_us(&self, us: u64) {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// A deterministic manually-advanced clock for tests.
///
/// `sleep_us` blocks until another thread [`advance_us`](Self::advance_us)es
/// the clock past the wake time, so threaded code under test makes progress
/// only when the test says time passed.
pub struct VirtualClock {
    now_us: Mutex<u64>,
    advanced: Condvar,
}

impl VirtualClock {
    /// A virtual clock starting at 0 µs.
    pub fn new() -> Self {
        VirtualClock {
            now_us: Mutex::new(0),
            advanced: Condvar::new(),
        }
    }

    /// Convenience: a shared virtual clock (the test keeps one `Arc` to
    /// advance, the engine gets the other as its `dyn Clock`).
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Moves time forward by `us` microseconds and wakes sleepers.
    pub fn advance_us(&self, us: u64) {
        let mut now = self.now_us.lock().expect("virtual clock poisoned");
        *now += us;
        self.advanced.notify_all();
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        *self.now_us.lock().expect("virtual clock poisoned")
    }

    fn sleep_us(&self, us: u64) {
        let mut now = self.now_us.lock().expect("virtual clock poisoned");
        let wake = *now + us;
        while *now < wake {
            now = self.advanced.wait(now).expect("virtual clock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_us(250);
        assert_eq!(c.now_us(), 250);
        c.advance_us(50);
        assert_eq!(c.now_us(), 300);
    }

    #[test]
    fn virtual_sleep_wakes_on_advance() {
        let c = VirtualClock::shared();
        let c2 = Arc::clone(&c);
        // egeria-lint: allow(determinism): test thread exercising the
        // virtual clock's sleep/advance handshake.
        let h = std::thread::spawn(move || {
            c2.sleep_us(100);
            c2.now_us()
        });
        // Advance in two steps; the sleeper must see at least 100 µs.
        c.advance_us(60);
        c.advance_us(60);
        assert!(h.join().unwrap() >= 100);
    }
}
