//! egeria-resil: the workspace resilience layer (DESIGN.md §5f).
//!
//! Egeria's accuracy guarantees are conditional on the control plane
//! degrading *safely*: a dead probe path must decay to "don't freeze yet",
//! never to "freeze on stale knowledge". This crate is the shared
//! substrate the rest of the workspace builds that guarantee on:
//!
//! - [`clock`]: the pluggable [`Clock`] trait (moved here from
//!   egeria-serve) — the **only** module in this crate allowed to read the
//!   wall clock. Everything else times itself through the trait so tests
//!   drive retries, breakers, and batching off a [`VirtualClock`].
//! - [`fault`]: the seeded, schedule-driven fault plane. Deterministic
//!   counter plans (PR 1 semantics, unchanged) plus xorshift-seeded
//!   randomized schedules — an explicit seed, never entropy, so every
//!   chaos run replays bit-for-bit.
//! - [`retry`]: [`RetryPolicy`], deterministic exponential backoff with
//!   seeded jitter, timed via [`Clock`].
//! - [`breaker`]: [`CircuitBreaker`] wrapping serve-routed probes:
//!   Closed → Open on consecutive failures → inline fallback → Half-Open
//!   single recovery probe → Closed.
//! - [`supervise`]: [`Watchdog`], capped-respawn budgets for the async
//!   controller and serve workers.
//! - [`health`]: the workspace [`HealthState`] machine
//!   (Healthy / Degraded{reasons} / Critical) fed by breaker, watchdog,
//!   and cache-quarantine events, exported through egeria-obs counters.
//! - [`chaos`]: seeded site schedules bundled into named profiles for the
//!   chaos-soak harness (`EGERIA_CHAOS_SEED`).
//!
//! The crate sits *below* egeria-serve and egeria-core (its only
//! dependency is egeria-obs), so both can share one fault plane without a
//! dependency cycle.

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod breaker;
pub mod chaos;
pub mod clock;
pub mod fault;
pub mod health;
pub mod retry;
pub mod supervise;

pub use breaker::{BreakerState, CircuitBreaker};
pub use chaos::ChaosPlan;
pub use clock::{Clock, RealClock, VirtualClock};
pub use fault::{FaultAction, FaultInjector, FaultSite};
pub use health::{HealthMonitor, HealthState};
pub use retry::RetryPolicy;
pub use supervise::Watchdog;
