//! The seeded, schedule-driven fault plane.
//!
//! A [`FaultInjector`] is armed with per-site plans and shared via `Arc`
//! with the components under test: the activation cache, the checkpoint
//! writer, the async controller, the trainer's step loop, the serve
//! engine's admission and execution paths, and the reference manager's
//! capture/publish paths. Each component consults the injector at
//! well-defined points and reacts the way a real disk error, bit flip,
//! controller stall, shed, or worker panic would — which is what the
//! crash/resume, degradation, and chaos-soak tests drive.
//!
//! Two plan kinds, both fully deterministic:
//!
//! - **Counter plans** ([`FaultInjector::arm`], PR 1 semantics unchanged):
//!   "skip the first `skip` operations at this site, then fire `fire`
//!   times". The same arming plus the same operation sequence always
//!   injects at the same operations.
//! - **Seeded schedules** ([`FaultInjector::arm_seeded`]): each operation
//!   at the site draws from a per-site xorshift64* stream and fires with a
//!   fixed per-mille probability, capped at `max_fires`. The stream is
//!   derived from an **explicit seed, never entropy**, so a chaos run is a
//!   pure function of `(seed, operation sequence)` and replays bit-for-bit.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A cache entry write (simulates ENOSPC / write failure).
    CacheWrite,
    /// A cache entry read (the bytes read back are corrupted).
    CacheRead,
    /// A checkpoint file write (simulates disk-full mid-save).
    CheckpointWrite,
    /// A checkpoint file read (the bytes read back are corrupted).
    CheckpointRead,
    /// One controller-side plasticity evaluation (the controller thread
    /// dies mid-eval).
    ControllerEval,
    /// One training step (the process "crashes" mid-epoch).
    TrainStep,
    /// Serve admission: a probe submit is rejected at the queue boundary
    /// as if the engine were overloaded (the caller sheds to fallback).
    ServeAdmission,
    /// Serve execution: a batched reference forward fails inside a worker
    /// (the requests in the batch resolve with an execution error).
    ServeExecute,
    /// A reference-snapshot publish into the serve registry fails (the
    /// registry keeps serving the previous — now stale — version).
    SnapshotPublish,
    /// An inline reference-model activation capture fails.
    ReferenceCapture,
    /// A prefetcher disk read fails (the entry is skipped, not loaded).
    PrefetchRead,
    /// A pool/worker task panics mid-execution (the worker thread dies
    /// and must be respawned by its supervisor).
    PoolTaskPanic,
}

impl FaultSite {
    /// Every site, in declaration order. The position of a site in this
    /// array is its stable stream index for seeded schedules — appending
    /// new sites keeps existing `(seed, site)` streams unchanged.
    pub const ALL: [FaultSite; 12] = [
        FaultSite::CacheWrite,
        FaultSite::CacheRead,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointRead,
        FaultSite::ControllerEval,
        FaultSite::TrainStep,
        FaultSite::ServeAdmission,
        FaultSite::ServeExecute,
        FaultSite::SnapshotPublish,
        FaultSite::ReferenceCapture,
        FaultSite::PrefetchRead,
        FaultSite::PoolTaskPanic,
    ];

    /// The site's stable stream index (its position in [`Self::ALL`]).
    pub fn stream_index(self) -> u64 {
        Self::ALL
            .iter()
            .position(|s| *s == self)
            .expect("every site is listed in ALL") as u64
    }
}

/// What the injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails outright (I/O error / crash / dead thread).
    Fail,
    /// The operation's bytes are corrupted (a bit flip in the payload).
    CorruptBytes,
}

/// splitmix64: seeds the xorshift state (never zero for a nonzero output
/// stream) and derives independent per-site sub-seeds from a master seed.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One xorshift64* draw; mutates the stream state in place.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[derive(Debug, Clone, Copy)]
enum Plan {
    /// Skip `skip` operations, then fire `fire` times, then pass forever.
    Counter {
        skip: usize,
        fire: usize,
        action: FaultAction,
        seen: usize,
        fired: usize,
    },
    /// Fire each operation with probability `rate_permille`/1000, drawn
    /// from a dedicated xorshift64* stream, capped at `max_fires`.
    Seeded {
        state: u64,
        rate_permille: u32,
        max_fires: usize,
        action: FaultAction,
        fired: usize,
    },
}

/// Deterministic, thread-shared fault injector.
///
/// Cloneable via `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plans: Mutex<HashMap<FaultSite, Plan>>,
    injected: Mutex<HashMap<FaultSite, usize>>,
}

impl FaultInjector {
    /// Creates an injector with no armed faults.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultInjector::default())
    }

    /// Arms a site: the first `skip` operations pass through, the next
    /// `fire` operations inject `action`, everything after passes again.
    /// Re-arming a site replaces its previous plan and counters.
    pub fn arm(&self, site: FaultSite, skip: usize, fire: usize, action: FaultAction) {
        self.plans.lock().insert(
            site,
            Plan::Counter {
                skip,
                fire,
                action,
                seen: 0,
                fired: 0,
            },
        );
    }

    /// Arms a site with a seeded randomized schedule: each operation fires
    /// with probability `rate_permille`/1000, drawn from a xorshift64*
    /// stream derived from `seed` (and the site's stable stream index, so
    /// one master seed gives every site an independent stream), capped at
    /// `max_fires` total injections. Re-arming replaces the previous plan.
    pub fn arm_seeded(
        &self,
        site: FaultSite,
        seed: u64,
        rate_permille: u32,
        max_fires: usize,
        action: FaultAction,
    ) {
        let state = splitmix64(seed ^ splitmix64(site.stream_index()));
        self.plans.lock().insert(
            site,
            Plan::Seeded {
                // splitmix64 output is zero only for one input; re-mix so
                // the xorshift stream can never get stuck at zero.
                state: if state == 0 { splitmix64(1) } else { state },
                rate_permille,
                max_fires,
                action,
                fired: 0,
            },
        );
    }

    /// Disarms a site (pending fires are dropped; injection counts remain).
    pub fn disarm(&self, site: FaultSite) {
        self.plans.lock().remove(&site);
    }

    /// Records one operation at `site` and returns the action to inject,
    /// if any. Components call this at each injection point.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        let mut plans = self.plans.lock();
        let plan = plans.get_mut(&site)?;
        let injected = match plan {
            Plan::Counter {
                skip,
                fire,
                action,
                seen,
                fired,
            } => {
                let idx = *seen;
                *seen += 1;
                if idx < *skip || *fired >= *fire {
                    None
                } else {
                    *fired += 1;
                    Some(*action)
                }
            }
            Plan::Seeded {
                state,
                rate_permille,
                max_fires,
                action,
                fired,
            } => {
                // Draw even when saturated so the stream position stays a
                // pure function of the operation count.
                let draw = xorshift64star(state);
                if *fired < *max_fires && draw % 1000 < u64::from(*rate_permille) {
                    *fired += 1;
                    Some(*action)
                } else {
                    None
                }
            }
        };
        drop(plans);
        if let Some(action) = injected {
            *self.injected.lock().entry(site).or_insert(0) += 1;
            return Some(action);
        }
        None
    }

    /// Convenience: `check` for sites whose only sensible action is `Fail`.
    pub fn should_fail(&self, site: FaultSite) -> bool {
        matches!(self.check(site), Some(FaultAction::Fail))
    }

    /// How many faults have been injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> usize {
        self.injected.lock().get(&site).copied().unwrap_or(0)
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> usize {
        self.injected.lock().values().sum()
    }

    /// Flips one bit in the middle of `bytes` (the canonical
    /// [`FaultAction::CorruptBytes`] effect). No-op on an empty buffer.
    pub fn corrupt(bytes: &mut [u8]) {
        if let Some(mid) = bytes.len().checked_sub(1) {
            bytes[mid / 2] ^= 0x20;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_inject() {
        let f = FaultInjector::new();
        for _ in 0..100 {
            assert!(f.check(FaultSite::CacheWrite).is_none());
        }
        assert_eq!(f.injected_total(), 0);
    }

    #[test]
    fn skip_then_fire_window() {
        let f = FaultInjector::new();
        f.arm(FaultSite::CacheWrite, 3, 2, FaultAction::Fail);
        let hits: Vec<bool> = (0..8)
            .map(|_| f.check(FaultSite::CacheWrite).is_some())
            .collect();
        assert_eq!(
            hits,
            vec![false, false, false, true, true, false, false, false]
        );
        assert_eq!(f.injected(FaultSite::CacheWrite), 2);
    }

    #[test]
    fn sites_are_independent() {
        let f = FaultInjector::new();
        f.arm(FaultSite::CacheRead, 0, 1, FaultAction::CorruptBytes);
        assert!(f.check(FaultSite::CacheWrite).is_none());
        assert_eq!(
            f.check(FaultSite::CacheRead),
            Some(FaultAction::CorruptBytes)
        );
        assert!(f.check(FaultSite::CacheRead).is_none());
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let clean = vec![0u8; 9];
        let mut dirty = clean.clone();
        FaultInjector::corrupt(&mut dirty);
        let flipped: u32 = clean
            .iter()
            .zip(dirty.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        // Empty buffers are left alone.
        let mut empty: Vec<u8> = Vec::new();
        FaultInjector::corrupt(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn rearming_resets_counters() {
        let f = FaultInjector::new();
        f.arm(FaultSite::TrainStep, 0, 1, FaultAction::Fail);
        assert!(f.should_fail(FaultSite::TrainStep));
        assert!(!f.should_fail(FaultSite::TrainStep));
        f.arm(FaultSite::TrainStep, 0, 1, FaultAction::Fail);
        assert!(f.should_fail(FaultSite::TrainStep));
        assert_eq!(f.injected(FaultSite::TrainStep), 2);
    }

    fn seeded_pattern(seed: u64, ops: usize) -> Vec<bool> {
        let f = FaultInjector::new();
        f.arm_seeded(FaultSite::ServeExecute, seed, 300, usize::MAX, FaultAction::Fail);
        (0..ops)
            .map(|_| f.check(FaultSite::ServeExecute).is_some())
            .collect()
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let a = seeded_pattern(0xE6E51A, 256);
        let b = seeded_pattern(0xE6E51A, 256);
        assert_eq!(a, b);
        // A ~30% rate over 256 ops fires somewhere in the broad middle.
        let fires = a.iter().filter(|h| **h).count();
        assert!((20..=140).contains(&fires), "fires = {fires}");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        assert_ne!(seeded_pattern(1, 256), seeded_pattern(2, 256));
    }

    #[test]
    fn seeded_sites_draw_independent_streams() {
        let f = FaultInjector::new();
        f.arm_seeded(FaultSite::CacheWrite, 7, 500, usize::MAX, FaultAction::Fail);
        f.arm_seeded(FaultSite::CacheRead, 7, 500, usize::MAX, FaultAction::CorruptBytes);
        let a: Vec<bool> = (0..128).map(|_| f.check(FaultSite::CacheWrite).is_some()).collect();
        let b: Vec<bool> = (0..128).map(|_| f.check(FaultSite::CacheRead).is_some()).collect();
        assert_ne!(a, b, "same master seed must still give per-site streams");
    }

    #[test]
    fn seeded_respects_max_fires() {
        let f = FaultInjector::new();
        f.arm_seeded(FaultSite::PrefetchRead, 3, 1000, 4, FaultAction::Fail);
        let fires = (0..64)
            .filter(|_| f.check(FaultSite::PrefetchRead).is_some())
            .count();
        assert_eq!(fires, 4);
        assert_eq!(f.injected(FaultSite::PrefetchRead), 4);
    }

    #[test]
    fn seeded_zero_rate_never_fires() {
        let f = FaultInjector::new();
        f.arm_seeded(FaultSite::SnapshotPublish, 9, 0, usize::MAX, FaultAction::Fail);
        assert!((0..256).all(|_| f.check(FaultSite::SnapshotPublish).is_none()));
    }

    #[test]
    fn stream_index_is_stable_declaration_order() {
        assert_eq!(FaultSite::CacheWrite.stream_index(), 0);
        assert_eq!(FaultSite::TrainStep.stream_index(), 5);
        assert_eq!(FaultSite::PoolTaskPanic.stream_index(), 11);
    }
}
