//! Named chaos profiles: bundles of seeded per-site schedules.
//!
//! A [`ChaosPlan`] turns one master seed into an [`arm_seeded`]
//! (see [`FaultInjector::arm_seeded`]) schedule per covered site. Two
//! profiles, matching the semantics the chaos-soak harness asserts:
//!
//! - [`fallback_only`](ChaosPlan::fallback_only): sites whose failure is
//!   absorbed by a **bit-identical** fallback path — serve admission
//!   sheds, serve execution errors, worker panics, stale snapshot
//!   publishes, cache/checkpoint write failures. A training run under
//!   this profile must reproduce the fault-free loss curve bit-for-bit.
//! - [`full`](ChaosPlan::full): adds sites whose degradation changes the
//!   control-plane timeline (corrupted cache reads, failed inline
//!   captures, controller deaths). The contract drops to "never aborts,
//!   degradation counters move monotonically".
//!
//! [`FaultSite::TrainStep`] is in neither profile: it models a process
//! crash and aborts training by design (the crash/resume tests own it).

use crate::fault::{splitmix64, FaultAction, FaultInjector, FaultSite};

/// One site's seeded schedule: `(site, rate_permille, max_fires, action)`.
pub type ChaosEntry = (FaultSite, u32, usize, FaultAction);

/// A named, seeded set of per-site fault schedules.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The master seed every per-site stream is derived from.
    pub seed: u64,
    entries: Vec<ChaosEntry>,
}

impl ChaosPlan {
    /// Sites with a bit-identity-preserving fallback path.
    pub fn fallback_only(seed: u64) -> Self {
        ChaosPlan {
            seed,
            entries: vec![
                (FaultSite::ServeAdmission, 150, 16, FaultAction::Fail),
                (FaultSite::ServeExecute, 150, 16, FaultAction::Fail),
                (FaultSite::PoolTaskPanic, 40, 2, FaultAction::Fail),
                (FaultSite::SnapshotPublish, 300, 2, FaultAction::Fail),
                (FaultSite::CheckpointWrite, 300, 4, FaultAction::Fail),
                (FaultSite::CacheWrite, 150, 8, FaultAction::Fail),
                (FaultSite::PrefetchRead, 150, 8, FaultAction::Fail),
            ],
        }
    }

    /// Everything in [`fallback_only`](Self::fallback_only) plus the
    /// sites whose degradation legitimately shifts the freeze timeline.
    pub fn full(seed: u64) -> Self {
        let mut plan = Self::fallback_only(seed);
        plan.entries.extend([
            (FaultSite::CacheRead, 100, 4, FaultAction::CorruptBytes),
            (FaultSite::ReferenceCapture, 200, 4, FaultAction::Fail),
            (FaultSite::ControllerEval, 200, 2, FaultAction::Fail),
        ]);
        plan
    }

    /// The per-site schedules this plan arms.
    pub fn entries(&self) -> &[ChaosEntry] {
        &self.entries
    }

    /// Arms every entry on `injector` (seeded from the master seed; each
    /// site gets its own stream via its stable stream index).
    pub fn apply(&self, injector: &FaultInjector) {
        for (site, rate, max_fires, action) in &self.entries {
            injector.arm_seeded(*site, self.seed, *rate, *max_fires, *action);
        }
    }

    /// Derives a distinct but reproducible sibling seed (for running the
    /// same profile at "another seed" without inventing constants).
    pub fn sibling_seed(seed: u64) -> u64 {
        splitmix64(seed)
    }

    /// The seed from `EGERIA_CHAOS_SEED`, if set and parseable (decimal
    /// or `0x`-prefixed hex).
    pub fn seed_from_env() -> Option<u64> {
        let raw = std::env::var("EGERIA_CHAOS_SEED").ok()?;
        let raw = raw.trim();
        if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_never_cover_train_step() {
        for plan in [ChaosPlan::fallback_only(1), ChaosPlan::full(1)] {
            assert!(
                plan.entries().iter().all(|(s, ..)| *s != FaultSite::TrainStep),
                "TrainStep aborts by design and must stay out of chaos profiles"
            );
        }
    }

    #[test]
    fn full_is_a_superset_of_fallback_only() {
        let fallback = ChaosPlan::fallback_only(7);
        let full = ChaosPlan::full(7);
        for e in fallback.entries() {
            assert!(full.entries().contains(e));
        }
        assert!(full.entries().len() > fallback.entries().len());
    }

    #[test]
    fn apply_arms_every_entry() {
        let plan = ChaosPlan::fallback_only(3);
        let f = FaultInjector::new();
        plan.apply(&f);
        // Saturate each armed site; every schedule must be able to fire.
        for (site, rate, _, _) in plan.entries() {
            if *rate == 0 {
                continue;
            }
            let fired = (0..2000).any(|_| f.check(*site).is_some());
            assert!(fired, "armed site {site:?} never fired in 2000 ops");
        }
        // Unarmed sites stay silent.
        assert!(f.check(FaultSite::TrainStep).is_none());
    }

    #[test]
    fn sibling_seed_differs() {
        assert_ne!(ChaosPlan::sibling_seed(1337), 1337);
    }
}
