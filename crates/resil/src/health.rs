//! The workspace health state machine.
//!
//! A [`HealthMonitor`] aggregates degradation signals from everywhere the
//! resilience layer is wired — breaker trips, watchdog respawns and
//! budget exhaustion, cache quarantines — into one three-level
//! [`HealthState`]:
//!
//! - **Healthy**: no outstanding degradation reasons.
//! - **Degraded{reasons}**: at least one recoverable degradation is
//!   active (a tripped breaker, a quarantined cache entry). The system is
//!   still making progress on a fallback path.
//! - **Critical{reasons}**: a non-recoverable condition (a respawn budget
//!   exhausted). Training continues where possible, but the control plane
//!   has permanently lost a component.
//!
//! Reasons are `&'static str` tags held in ordered sets, so the rendered
//! state is deterministic for a deterministic run. Every transition is
//! exported through egeria-obs: `resil.health.*` counters, a
//! `resil.health.level` gauge (0/1/2), and `health_transition` instants
//! the `trace_report` resilience section renders.

use egeria_obs::{ArgValue, Telemetry};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The aggregate health of the workspace control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthState {
    /// No outstanding degradation.
    Healthy,
    /// Recoverable degradation(s) active; fallback paths are carrying.
    Degraded {
        /// Active degradation tags, in deterministic (sorted) order.
        reasons: Vec<&'static str>,
    },
    /// A component is permanently lost (e.g. respawn budget exhausted).
    Critical {
        /// Critical tags plus any still-active degradations, sorted.
        reasons: Vec<&'static str>,
    },
}

impl HealthState {
    /// Numeric severity: 0 healthy, 1 degraded, 2 critical (the
    /// `resil.health.level` gauge).
    pub fn level(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded { .. } => 1,
            HealthState::Critical { .. } => 2,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    degraded: BTreeSet<&'static str>,
    critical: BTreeSet<&'static str>,
}

/// Thread-shared health aggregator (clone the `Arc`, feed it events).
pub struct HealthMonitor {
    telemetry: Telemetry,
    inner: Mutex<Inner>,
}

impl HealthMonitor {
    /// A monitor starting Healthy, exporting through `telemetry`.
    pub fn new(telemetry: Telemetry) -> Arc<Self> {
        Arc::new(HealthMonitor {
            telemetry,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Marks a recoverable degradation active. Idempotent per tag.
    pub fn degrade(&self, reason: &'static str) {
        let newly = self.inner.lock().degraded.insert(reason);
        if newly {
            self.telemetry.counter("resil.health.degradations").inc();
            self.emit_transition("degraded", reason);
        }
    }

    /// Clears a recoverable degradation. Idempotent per tag.
    pub fn resolve(&self, reason: &'static str) {
        let removed = self.inner.lock().degraded.remove(reason);
        if removed {
            self.telemetry.counter("resil.health.recoveries").inc();
            self.emit_transition("recovered", reason);
        }
    }

    /// Marks a non-recoverable condition. Critical tags never clear.
    pub fn critical(&self, reason: &'static str) {
        let newly = self.inner.lock().critical.insert(reason);
        if newly {
            self.telemetry.counter("resil.health.criticals").inc();
            self.emit_transition("critical", reason);
        }
    }

    /// The current aggregate state.
    pub fn state(&self) -> HealthState {
        let inner = self.inner.lock();
        if !inner.critical.is_empty() {
            let mut reasons: Vec<&'static str> = inner.critical.iter().copied().collect();
            reasons.extend(inner.degraded.iter().copied());
            HealthState::Critical { reasons }
        } else if !inner.degraded.is_empty() {
            HealthState::Degraded {
                reasons: inner.degraded.iter().copied().collect(),
            }
        } else {
            HealthState::Healthy
        }
    }

    /// Severity of the current state (0/1/2).
    pub fn level(&self) -> u8 {
        self.state().level()
    }

    fn emit_transition(&self, edge: &'static str, reason: &'static str) {
        let level = self.level();
        self.telemetry.gauge("resil.health.level").set(f64::from(level));
        self.telemetry.instant(
            "health_transition",
            None,
            None,
            vec![
                ("edge", ArgValue::Str(edge)),
                ("reason", ArgValue::Str(reason)),
                ("level", ArgValue::U64(u64::from(level))),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy_and_degrades_with_sorted_reasons() {
        let h = HealthMonitor::new(Telemetry::disabled());
        assert_eq!(h.state(), HealthState::Healthy);
        h.degrade("serve-breaker-open");
        h.degrade("cache-quarantine");
        assert_eq!(
            h.state(),
            HealthState::Degraded {
                reasons: vec!["cache-quarantine", "serve-breaker-open"],
            }
        );
        assert_eq!(h.level(), 1);
    }

    #[test]
    fn resolve_returns_to_healthy() {
        let h = HealthMonitor::new(Telemetry::disabled());
        h.degrade("cache-quarantine");
        h.resolve("cache-quarantine");
        assert_eq!(h.state(), HealthState::Healthy);
        // Resolving an absent tag is a no-op.
        h.resolve("cache-quarantine");
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn critical_dominates_and_never_clears() {
        let h = HealthMonitor::new(Telemetry::disabled());
        h.degrade("serve-breaker-open");
        h.critical("controller-respawn-budget-exhausted");
        let state = h.state();
        assert_eq!(state.level(), 2);
        assert_eq!(
            state,
            HealthState::Critical {
                reasons: vec![
                    "controller-respawn-budget-exhausted",
                    "serve-breaker-open",
                ],
            }
        );
        h.resolve("serve-breaker-open");
        assert_eq!(h.level(), 2, "critical outlives degradation recovery");
    }

    #[test]
    fn transitions_export_counters() {
        let t = Telemetry::enabled();
        let h = HealthMonitor::new(t.clone());
        h.degrade("a");
        h.degrade("a"); // idempotent: counted once
        h.resolve("a");
        h.critical("b");
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("resil.health.degradations"), Some(1));
        assert_eq!(snap.counter("resil.health.recoveries"), Some(1));
        assert_eq!(snap.counter("resil.health.criticals"), Some(1));
    }
}
