//! Property-based tests for the model zoo: module-parser laws and
//! freezing invariants across architectures.

use egeria_models::module_parser::{plan_groups, ParserConfig, UnitSpec};
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::transformer::{Seq2SeqTransformer, TransformerConfig};
use egeria_models::Model;
use proptest::prelude::*;

fn arbitrary_units() -> impl Strategy<Value = Vec<UnitSpec>> {
    prop::collection::vec((0usize..4, 1usize..1000), 1..24).prop_map(|raw| {
        // Stages must be consecutive runs; sort by stage to enforce it.
        let mut raw = raw;
        raw.sort_by_key(|&(stage, _)| stage);
        raw.into_iter()
            .enumerate()
            .map(|(i, (stage, params))| UnitSpec {
                stage,
                label: format!("layer{}.{}", stage + 1, i),
                params,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parser_covers_every_unit_once_in_order(units in arbitrary_units(), max_share in 0.1f32..1.0, split_last in any::<bool>()) {
        let cfg = ParserConfig { max_share, split_last };
        let groups = plan_groups(&units, &cfg);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(flat, (0..units.len()).collect::<Vec<_>>());
        for g in &groups {
            prop_assert!(!g.is_empty());
            // Contiguous runs.
            for w in g.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1);
            }
            // Never crosses a stage boundary.
            let stage = units[g[0]].stage;
            prop_assert!(g.iter().all(|&i| units[i].stage == stage));
        }
    }

    #[test]
    fn parser_group_param_totals_are_conserved(units in arbitrary_units()) {
        let groups = plan_groups(&units, &ParserConfig::default());
        let total: usize = units.iter().map(|u| u.params).sum();
        let grouped: usize = groups
            .iter()
            .flat_map(|g| g.iter().map(|&i| units[i].params))
            .sum();
        prop_assert_eq!(total, grouped);
    }

    #[test]
    fn resnet_freeze_prefix_round_trips(k in 0usize..4) {
        let mut m = resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            5,
        );
        let n = m.modules().len();
        prop_assume!(k < n);
        m.freeze_prefix(k).unwrap();
        prop_assert_eq!(m.frozen_prefix(), k);
        let frac = m.active_param_fraction();
        prop_assert!(frac > 0.0 && frac <= 1.0);
        m.unfreeze_all();
        prop_assert_eq!(m.frozen_prefix(), 0);
        prop_assert!((m.active_param_fraction() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transformer_module_param_counts_cover_all_params(seed in any::<u64>()) {
        let m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(12), seed).unwrap();
        let from_modules: usize = m.modules().iter().map(|mm| mm.param_count).sum();
        let from_params: usize = m.params().iter().map(|p| p.numel()).sum();
        prop_assert_eq!(from_modules, from_params);
    }
}
