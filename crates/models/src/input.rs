//! Batch, input, and target types shared by all models.

use egeria_tensor::Tensor;

/// Model input: images for CV tasks, token ids for NLP tasks.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// NCHW image tensor.
    Image(Tensor),
    /// Token id sequences `(batch, time)` for encoder-only models.
    Tokens(Vec<Vec<usize>>),
    /// Source/target token id pairs for sequence-to-sequence models. The
    /// target is fed teacher-forced (shifted right internally).
    Seq2Seq {
        /// Source token sequences.
        src: Vec<Vec<usize>>,
        /// Target token sequences.
        tgt: Vec<Vec<usize>>,
    },
}

impl Input {
    /// Number of samples in the input.
    pub fn batch_size(&self) -> usize {
        match self {
            Input::Image(t) => t.dims().first().copied().unwrap_or(0),
            Input::Tokens(ids) => ids.len(),
            Input::Seq2Seq { src, .. } => src.len(),
        }
    }
}

/// Supervision targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Targets {
    /// One class id per sample (image classification).
    Classes(Vec<usize>),
    /// One class id per pixel, flattened `(batch·h·w)` row-major
    /// (semantic segmentation).
    Pixels(Vec<usize>),
    /// Next-token targets per sequence (machine translation); aligned with
    /// the decoder output positions.
    TokenTargets(Vec<Vec<usize>>),
    /// Answer spans `(start, end)` inclusive, one per sample (QA).
    Spans(Vec<(usize, usize)>),
}

/// One training/evaluation batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The model input.
    pub input: Input,
    /// The supervision.
    pub targets: Targets,
    /// Stable sample ids (dataset indices), used as activation-cache keys.
    pub sample_ids: Vec<u64>,
}

/// Result of one `train_step`.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Activation of the captured module, if a capture was requested.
    pub captured: Option<Tensor>,
    /// How many layer modules ran a backward pass (frozen ones are skipped).
    pub modules_backpropped: usize,
}

/// Result of evaluating a batch.
#[derive(Debug, Clone, Copy)]
pub struct EvalResult {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Task metric: accuracy (classification), mIoU proxy (segmentation),
    /// token accuracy (translation; perplexity derivable from loss), or
    /// span F1 (QA).
    pub metric: f32,
    /// Number of samples the metric averages over.
    pub count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_size_per_variant() {
        assert_eq!(Input::Image(Tensor::zeros(&[5, 3, 2, 2])).batch_size(), 5);
        assert_eq!(Input::Tokens(vec![vec![1], vec![2]]).batch_size(), 2);
        assert_eq!(
            Input::Seq2Seq {
                src: vec![vec![1]; 3],
                tgt: vec![vec![2]; 3]
            }
            .batch_size(),
            3
        );
    }
}
