//! Encoder–decoder Transformer for machine translation.
//!
//! Structure per Vaswani et al. with post-layer-norm blocks. The paper's
//! Table 1 freezes over 12 layer modules for Transformer-Base ("6 encoders
//! & 6 decoders") and 4 for Transformer-Tiny ("2 & 2"); this model exposes
//! exactly that module list, with the source embedding folded into the
//! first encoder module and the target embedding/generator folded into the
//! decoder modules at the ends.

use crate::input::{Batch, EvalResult, Input, StepResult, Targets};
use crate::model::{Model, ModuleMeta};
use egeria_nn::activation::{Act, Activation};
use egeria_nn::attention::MultiHeadAttention;
use egeria_nn::embedding::Embedding;
use egeria_nn::layer::{Layer, Mode};
use egeria_nn::linear::Linear;
use egeria_nn::loss::cross_entropy;
use egeria_nn::norm::LayerNorm;
use egeria_nn::Parameter;
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// Borrowed `(source, target)` token sequences from a seq2seq batch.
type SeqPair<'a> = (&'a [Vec<usize>], &'a [Vec<usize>]);

/// One post-LN encoder block: self-attention + feed-forward, each with a
/// residual connection and layer norm.
pub struct EncoderBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Linear,
    act: Activation,
    ff2: Linear,
    ln2: LayerNorm,
    cache_x: Option<Tensor>,
    cache_mid: Option<Tensor>,
}

impl EncoderBlock {
    /// Creates an encoder block.
    pub fn new(name: &str, d: usize, heads: usize, d_ff: usize, rng: &mut Rng) -> Result<Self> {
        Ok(EncoderBlock {
            attn: MultiHeadAttention::new(&format!("{name}.attn"), d, heads, false, rng)?,
            ln1: LayerNorm::new(&format!("{name}.ln1"), d),
            ff1: Linear::new(&format!("{name}.ff1"), d, d_ff, true, rng),
            act: Activation::new(Act::Gelu),
            ff2: Linear::new(&format!("{name}.ff2"), d_ff, d, true, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), d),
            cache_x: None,
            cache_mid: None,
        })
    }
}

impl Layer for EncoderBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let a = self.attn.forward(x, mode)?;
        let mid = self.ln1.forward(&x.add(&a)?, mode)?;
        let f = self.ff1.forward(&mid, mode)?;
        let f = self.act.forward(&f, mode)?;
        let f = self.ff2.forward(&f, mode)?;
        let out = self.ln2.forward(&mid.add(&f)?, mode)?;
        self.cache_x = Some(x.clone());
        self.cache_mid = Some(mid);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.cache_x.is_none() {
            return Err(TensorError::Numerical(
                "EncoderBlock::backward before forward".into(),
            ));
        }
        let g = self.ln2.backward(grad_out)?;
        // Residual: out = mid + ff(mid).
        let gf = self.ff2.backward(&g)?;
        let gf = self.act.backward(&gf)?;
        let gf = self.ff1.backward(&gf)?;
        let g_mid = g.add(&gf)?;
        let g1 = self.ln1.backward(&g_mid)?;
        // Residual: mid_pre = x + attn(x).
        let ga = self.attn.backward(&g1)?;
        g1.add(&ga)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = self.attn.params();
        v.extend(self.ln1.params());
        v.extend(self.ff1.params());
        v.extend(self.ff2.params());
        v.extend(self.ln2.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = self.attn.params_mut();
        v.extend(self.ln1.params_mut());
        v.extend(self.ff1.params_mut());
        v.extend(self.ff2.params_mut());
        v.extend(self.ln2.params_mut());
        v
    }

    fn kind(&self) -> &'static str {
        "EncoderBlock"
    }
}

/// One post-LN decoder block: causal self-attention, cross-attention to the
/// encoder memory, and a feed-forward stack.
pub struct DecoderBlock {
    self_attn: MultiHeadAttention,
    ln1: LayerNorm,
    cross_attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    act: Activation,
    ff2: Linear,
    ln3: LayerNorm,
}

impl DecoderBlock {
    /// Creates a decoder block.
    pub fn new(name: &str, d: usize, heads: usize, d_ff: usize, rng: &mut Rng) -> Result<Self> {
        Ok(DecoderBlock {
            self_attn: MultiHeadAttention::new(&format!("{name}.self"), d, heads, true, rng)?,
            ln1: LayerNorm::new(&format!("{name}.ln1"), d),
            cross_attn: MultiHeadAttention::new(&format!("{name}.cross"), d, heads, false, rng)?,
            ln2: LayerNorm::new(&format!("{name}.ln2"), d),
            ff1: Linear::new(&format!("{name}.ff1"), d, d_ff, true, rng),
            act: Activation::new(Act::Gelu),
            ff2: Linear::new(&format!("{name}.ff2"), d_ff, d, true, rng),
            ln3: LayerNorm::new(&format!("{name}.ln3"), d),
        })
    }

    /// Forward with the encoder memory as cross-attention context.
    pub fn forward_dec(&mut self, x: &Tensor, memory: &Tensor, mode: Mode) -> Result<Tensor> {
        let a = self.self_attn.forward(x, mode)?;
        let h1 = self.ln1.forward(&x.add(&a)?, mode)?;
        let c = self.cross_attn.forward_attn(&h1, memory, mode)?;
        let h2 = self.ln2.forward(&h1.add(&c)?, mode)?;
        let f = self.ff1.forward(&h2, mode)?;
        let f = self.act.forward(&f, mode)?;
        let f = self.ff2.forward(&f, mode)?;
        self.ln3.forward(&h2.add(&f)?, mode)
    }

    /// Backward; returns `(grad_x, grad_memory)`.
    pub fn backward_dec(&mut self, grad_out: &Tensor) -> Result<(Tensor, Tensor)> {
        let g = self.ln3.backward(grad_out)?;
        let gf = self.ff2.backward(&g)?;
        let gf = self.act.backward(&gf)?;
        let gf = self.ff1.backward(&gf)?;
        let g_h2 = g.add(&gf)?;
        let g2 = self.ln2.backward(&g_h2)?;
        let (gc_x, g_mem) = self.cross_attn.backward_attn(&g2)?;
        let g_h1 = g2.add(&gc_x)?;
        let g1 = self.ln1.backward(&g_h1)?;
        let ga = self.self_attn.backward(&g1)?;
        Ok((g1.add(&ga)?, g_mem))
    }

    /// All parameters of the block.
    pub fn params(&self) -> Vec<&Parameter> {
        let mut v = self.self_attn.params();
        v.extend(self.ln1.params());
        v.extend(self.cross_attn.params());
        v.extend(self.ln2.params());
        v.extend(self.ff1.params());
        v.extend(self.ff2.params());
        v.extend(self.ln3.params());
        v
    }

    /// All parameters, mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = self.self_attn.params_mut();
        v.extend(self.ln1.params_mut());
        v.extend(self.cross_attn.params_mut());
        v.extend(self.ln2.params_mut());
        v.extend(self.ff1.params_mut());
        v.extend(self.ff2.params_mut());
        v.extend(self.ln3.params_mut());
        v
    }

    fn set_trainable(&mut self, trainable: bool) {
        for p in self.params_mut() {
            p.requires_grad = trainable;
        }
    }
}

/// Transformer hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Vocabulary size (shared between source and target).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Encoder blocks (6 = Base, 2 = Tiny).
    pub encoders: usize,
    /// Decoder blocks.
    pub decoders: usize,
}

impl TransformerConfig {
    /// A reduced-width Transformer-Base (6 encoders + 6 decoders).
    pub fn base(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            encoders: 6,
            decoders: 6,
        }
    }

    /// A reduced-width Transformer-Tiny (2 encoders + 2 decoders).
    pub fn tiny(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            encoders: 2,
            decoders: 2,
        }
    }
}

/// An encoder–decoder Transformer exposed as freezable layer modules.
pub struct Seq2SeqTransformer {
    name: String,
    cfg: TransformerConfig,
    seed: u64,
    src_embed: Embedding,
    tgt_embed: Embedding,
    encoders: Vec<EncoderBlock>,
    decoders: Vec<DecoderBlock>,
    generator: Linear,
    frozen: usize,
}

impl Seq2SeqTransformer {
    /// Creates a Transformer from a config and an init seed.
    pub fn new(name: impl Into<String>, cfg: TransformerConfig, seed: u64) -> Result<Self> {
        let mut rng = Rng::new(seed);
        let mut encoders = Vec::with_capacity(cfg.encoders);
        for i in 0..cfg.encoders {
            encoders.push(EncoderBlock::new(
                &format!("encoder.{i}"),
                cfg.d_model,
                cfg.heads,
                cfg.d_ff,
                &mut rng,
            )?);
        }
        let mut decoders = Vec::with_capacity(cfg.decoders);
        for i in 0..cfg.decoders {
            decoders.push(DecoderBlock::new(
                &format!("decoder.{i}"),
                cfg.d_model,
                cfg.heads,
                cfg.d_ff,
                &mut rng,
            )?);
        }
        Ok(Seq2SeqTransformer {
            name: name.into(),
            cfg,
            seed,
            src_embed: Embedding::new("src_embed", cfg.vocab, cfg.d_model, true, &mut rng),
            tgt_embed: Embedding::new("tgt_embed", cfg.vocab, cfg.d_model, true, &mut rng),
            encoders,
            decoders,
            generator: Linear::new("generator", cfg.d_model, cfg.vocab, true, &mut rng),
            frozen: 0,
        })
    }

    fn seq_input(batch: &Batch) -> Result<SeqPair<'_>> {
        match &batch.input {
            Input::Seq2Seq { src, tgt } => Ok((src, tgt)),
            _ => Err(TensorError::Numerical("transformer needs seq2seq input".into())),
        }
    }

    fn flat_targets(targets: &Targets) -> Result<Vec<usize>> {
        match targets {
            Targets::TokenTargets(ts) => Ok(ts.iter().flatten().copied().collect()),
            _ => Err(TensorError::Numerical("transformer needs token targets".into())),
        }
    }

    fn module_mode(&self, module: usize, mode: Mode) -> Mode {
        if module < self.frozen {
            Mode::Eval
        } else {
            mode
        }
    }

    /// Full forward pass; optionally captures the output of one module.
    ///
    /// Module indexing: `0..encoders` are encoder blocks, then decoders.
    fn forward_full(
        &mut self,
        src: &[Vec<usize>],
        tgt: &[Vec<usize>],
        mode: Mode,
        capture: Option<usize>,
    ) -> Result<(Tensor, Option<Tensor>)> {
        let ne = self.encoders.len();
        let mut captured = None;
        let mut h = self.src_embed.forward_ids(src, self.module_mode(0, mode))?;
        for (i, enc) in self.encoders.iter_mut().enumerate() {
            let m = if i < self.frozen { Mode::Eval } else { mode };
            h = enc.forward(&h, m)?;
            if capture == Some(i) {
                captured = Some(h.clone());
            }
        }
        let memory = h;
        let mut d = self
            .tgt_embed
            .forward_ids(tgt, self.module_mode(ne, mode))?;
        for (j, dec) in self.decoders.iter_mut().enumerate() {
            let m = if ne + j < self.frozen { Mode::Eval } else { mode };
            d = dec.forward_dec(&d, &memory, m)?;
            if capture == Some(ne + j) {
                captured = Some(d.clone());
            }
        }
        let logits = self.generator.forward(&d, mode)?;
        Ok((logits, captured))
    }

    /// Backward through the decoder stack, the memory, and the active
    /// encoder suffix. Returns the number of modules backpropagated.
    fn backward_full(&mut self, g_logits: &Tensor) -> Result<usize> {
        let ne = self.encoders.len();
        let mut ran = 0usize;
        let mut g = self.generator.backward(g_logits)?;
        let mut g_memory: Option<Tensor> = None;
        for (j, dec) in self.decoders.iter_mut().enumerate().rev() {
            if ne + j < self.frozen {
                // Frozen decoder prefix: no decoder gradients needed at all,
                // and with all encoders necessarily frozen too, no memory
                // gradient is needed either.
                g_memory = None;
                break;
            }
            let (gx, gm) = dec.backward_dec(&g)?;
            g = gx;
            g_memory = Some(match g_memory {
                Some(acc) => acc.add(&gm)?,
                None => gm,
            });
            ran += 1;
        }
        if self.frozen <= ne {
            if let Some(mut gm) = g_memory {
                for (i, enc) in self.encoders.iter_mut().enumerate().rev() {
                    if i < self.frozen {
                        break;
                    }
                    gm = enc.backward(&gm)?;
                    ran += 1;
                }
                if self.frozen == 0 {
                    self.src_embed.backward_ids(&gm)?;
                }
            }
        }
        if self.frozen < ne + self.decoders.len() {
            // Target embedding belongs to the first decoder module.
            if self.frozen <= ne {
                self.tgt_embed.backward_ids(&g)?;
            }
        }
        Ok(ran)
    }
}

impl Model for Seq2SeqTransformer {
    fn name(&self) -> &str {
        &self.name
    }

    fn modules(&self) -> Vec<ModuleMeta> {
        let mut v = Vec::new();
        for (i, e) in self.encoders.iter().enumerate() {
            let mut params: usize = e.params().iter().map(|p| p.numel()).sum();
            if i == 0 {
                params += self.src_embed.table.numel();
            }
            v.push(ModuleMeta {
                name: format!("encoder.{i}"),
                param_count: params,
            });
        }
        let nd = self.decoders.len();
        for (j, d) in self.decoders.iter().enumerate() {
            let mut params: usize = d.params().iter().map(|p| p.numel()).sum();
            if j == 0 {
                params += self.tgt_embed.table.numel();
            }
            if j == nd - 1 {
                params += self.generator.params().iter().map(|p| p.numel()).sum::<usize>();
            }
            v.push(ModuleMeta {
                name: format!("decoder.{j}"),
                param_count: params,
            });
        }
        v
    }

    fn frozen_prefix(&self) -> usize {
        self.frozen
    }

    fn freeze_prefix(&mut self, k: usize) -> Result<()> {
        let n = self.encoders.len() + self.decoders.len();
        if k >= n {
            return Err(TensorError::Numerical(format!(
                "cannot freeze {k} of {n} transformer modules"
            )));
        }
        let ne = self.encoders.len();
        for (i, e) in self.encoders.iter_mut().enumerate() {
            e.set_trainable(i >= k);
        }
        for (j, d) in self.decoders.iter_mut().enumerate() {
            d.set_trainable(ne + j >= k);
        }
        self.src_embed.table.requires_grad = k == 0;
        self.tgt_embed.table.requires_grad = k <= ne;
        self.frozen = k;
        Ok(())
    }

    fn unfreeze_all(&mut self) {
        let _ = self.freeze_prefix(0);
    }

    fn train_step(&mut self, batch: &Batch, capture: Option<usize>) -> Result<StepResult> {
        let (src, tgt) = Self::seq_input(batch)?;
        let targets = Self::flat_targets(&batch.targets)?;
        let (logits, captured) = self.forward_full(src, tgt, Mode::Train, capture)?;
        let rows = logits.numel() / self.cfg.vocab;
        let flat = logits.reshape(&[rows, self.cfg.vocab])?;
        let (loss, grad) = cross_entropy(&flat, &targets, 0.1)?;
        let g = grad.reshape(logits.dims())?;
        let ran = self.backward_full(&g)?;
        Ok(StepResult {
            loss,
            captured,
            modules_backpropped: ran,
        })
    }

    fn supports_cached_fp(&self, prefix: usize) -> bool {
        // The boundary activation is a single tensor only within the
        // encoder stack (a decoder-side boundary would additionally need
        // the memory tensor).
        prefix > 0 && prefix <= self.encoders.len()
    }

    fn train_step_from(
        &mut self,
        batch: &Batch,
        prefix: usize,
        prefix_activation: &Tensor,
        capture: Option<usize>,
    ) -> Result<StepResult> {
        if !self.supports_cached_fp(prefix) {
            return Err(TensorError::AxisOutOfRange {
                axis: prefix,
                rank: self.encoders.len() + self.decoders.len(),
            });
        }
        let (_, tgt) = Self::seq_input(batch)?;
        let tgt = tgt.to_vec();
        let targets = Self::flat_targets(&batch.targets)?;
        let ne = self.encoders.len();
        let mut captured = None;
        // Resume encoding above the frozen boundary.
        let mut h = prefix_activation.clone();
        for (i, enc) in self.encoders.iter_mut().enumerate().skip(prefix) {
            h = enc.forward(&h, Mode::Train)?;
            if capture == Some(i) {
                captured = Some(h.clone());
            }
        }
        let memory = h;
        let mut d = self.tgt_embed.forward_ids(&tgt, Mode::Train)?;
        for (j, dec) in self.decoders.iter_mut().enumerate() {
            d = dec.forward_dec(&d, &memory, Mode::Train)?;
            if capture == Some(ne + j) {
                captured = Some(d.clone());
            }
        }
        let logits = self.generator.forward(&d, Mode::Train)?;
        let rows = logits.numel() / self.cfg.vocab;
        let flat = logits.reshape(&[rows, self.cfg.vocab])?;
        let (loss, grad) = cross_entropy(&flat, &targets, 0.1)?;
        let g = grad.reshape(logits.dims())?;
        let ran = self.backward_full(&g)?;
        Ok(StepResult {
            loss,
            captured,
            modules_backpropped: ran,
        })
    }

    fn eval_batch(&mut self, batch: &Batch) -> Result<EvalResult> {
        let (src, tgt) = Self::seq_input(batch)?;
        let targets = Self::flat_targets(&batch.targets)?;
        let (logits, _) = self.forward_full(src, tgt, Mode::Eval, None)?;
        let rows = logits.numel() / self.cfg.vocab;
        let flat = logits.reshape(&[rows, self.cfg.vocab])?;
        // Unsmoothed loss for perplexity reporting.
        let (loss, _) = cross_entropy(&flat, &targets, 0.0)?;
        let metric = egeria_nn::loss::accuracy(&flat, &targets)?;
        Ok(EvalResult {
            loss,
            metric,
            count: batch.input.batch_size(),
        })
    }

    fn capture_activation(&mut self, batch: &Batch, module: usize) -> Result<Tensor> {
        let (src, tgt) = Self::seq_input(batch)?;
        let ne = self.encoders.len();
        // Encoder captures do not need the decoder stack at all.
        if module < ne {
            let mut h = self.src_embed.forward_ids(src, Mode::Eval)?;
            for enc in self.encoders.iter_mut().take(module + 1) {
                h = enc.forward(&h, Mode::Eval)?;
            }
            return Ok(h);
        }
        let (_, captured) = self.forward_full(src, tgt, Mode::Eval, Some(module))?;
        captured.ok_or_else(|| TensorError::AxisOutOfRange {
            axis: module,
            rank: ne + self.decoders.len(),
        })
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.src_embed.table, &self.tgt_embed.table];
        for e in &self.encoders {
            v.extend(e.params());
        }
        for d in &self.decoders {
            v.extend(d.params());
        }
        v.extend(self.generator.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.src_embed.table, &mut self.tgt_embed.table];
        for e in &mut self.encoders {
            v.extend(e.params_mut());
        }
        for d in &mut self.decoders {
            v.extend(d.params_mut());
        }
        v.extend(self.generator.params_mut());
        v
    }

    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        let mut copy = Seq2SeqTransformer::new(self.name.clone(), self.cfg, self.seed)
            .expect("config already validated");
        let src = self.params();
        let mut dst = copy.params_mut();
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            d.value = s.value.clone();
        }
        Box::new(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batch(vocab: usize, b: usize, t: usize) -> Batch {
        let src: Vec<Vec<usize>> = (0..b).map(|i| (0..t).map(|j| (i + j) % vocab).collect()).collect();
        let tgt = src.clone();
        let targets: Vec<Vec<usize>> = src
            .iter()
            .map(|s| s.iter().map(|&x| (x + 1) % vocab).collect())
            .collect();
        Batch {
            input: Input::Seq2Seq { src, tgt },
            targets: Targets::TokenTargets(targets),
            sample_ids: (0..b as u64).collect(),
        }
    }

    #[test]
    fn base_has_12_modules_and_tiny_4() {
        let base = Seq2SeqTransformer::new("base", TransformerConfig::base(16), 1).unwrap();
        assert_eq!(base.modules().len(), 12);
        let tiny = Seq2SeqTransformer::new("tiny", TransformerConfig::tiny(16), 1).unwrap();
        assert_eq!(tiny.modules().len(), 4);
    }

    #[test]
    fn train_step_runs_and_loss_is_finite() {
        let mut m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(8), 2).unwrap();
        let batch = tiny_batch(8, 2, 5);
        let r = m.train_step(&batch, Some(1)).unwrap();
        assert!(r.loss.is_finite());
        assert!(r.captured.is_some());
        assert_eq!(r.modules_backpropped, 4);
    }

    #[test]
    fn freezing_encoders_skips_their_backward() {
        let mut m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(8), 3).unwrap();
        m.freeze_prefix(1).unwrap();
        let batch = tiny_batch(8, 2, 5);
        let r = m.train_step(&batch, None).unwrap();
        // 1 encoder frozen → 1 encoder + 2 decoders backprop.
        assert_eq!(r.modules_backpropped, 3);
        // Frozen encoder params kept no gradient.
        let frozen_grads: Vec<bool> = m.encoders[0].params().iter().map(|p| p.grad.is_some()).collect();
        assert!(frozen_grads.iter().all(|&g| !g));
        assert!(m.encoders[1].params().iter().any(|p| p.grad.is_some()));
    }

    #[test]
    fn freezing_all_encoders_still_trains_decoders() {
        let mut m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(8), 4).unwrap();
        m.freeze_prefix(2).unwrap();
        let batch = tiny_batch(8, 2, 4);
        let r = m.train_step(&batch, None).unwrap();
        assert_eq!(r.modules_backpropped, 2);
        assert!(m.decoders[0].params().iter().any(|p| p.grad.is_some()));
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let mut m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(8), 5).unwrap();
        let batch = tiny_batch(8, 4, 6);
        let mut opt = egeria_nn::optim::Adam::new(3e-3, 0.0);
        let first = m.train_step(&batch, None).unwrap().loss;
        for _ in 0..30 {
            opt.step(&mut m.params_mut()).unwrap();
            m.zero_grad();
            let _ = m.train_step(&batch, None).unwrap();
        }
        let last = m.eval_batch(&batch).unwrap().loss;
        assert!(last < first, "loss {first} → {last} did not improve");
    }

    #[test]
    fn capture_matches_clone_capture() {
        let m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(8), 6).unwrap();
        let mut a = m.clone_boxed();
        let mut b = m.clone_boxed();
        let batch = tiny_batch(8, 2, 4);
        let ca = a.capture_activation(&batch, 1).unwrap();
        let cb = b.capture_activation(&batch, 1).unwrap();
        assert!(ca.allclose(&cb, 1e-6));
    }

    #[test]
    fn cannot_freeze_all_modules() {
        let mut m = Seq2SeqTransformer::new("t", TransformerConfig::tiny(8), 7).unwrap();
        assert!(m.freeze_prefix(4).is_err());
        assert!(m.freeze_prefix(3).is_ok());
        m.unfreeze_all();
        assert_eq!(m.frozen_prefix(), 0);
    }
}
