//! Parameter-share-based grouping of building blocks into layer modules.
//!
//! Reproduces §6.3 / Figure 12 of the paper: "KGT parses the model based on
//! its structure and the size of each layer, so that layer 3 (75% of the
//! total parameters), which is significantly larger than layer 2 (20%), is
//! split finer-grained into similar-sized modules; while layer 1 (5%) and
//! layer 2 are evaluated as a whole. Layer 3.7–3.8 (17%) is further split
//! because it is the last module."
//!
//! The planner works on sizes only ([`UnitSpec`]), so it is a pure,
//! exhaustively testable function; model builders feed it their block lists
//! and assemble `Sequential`s from the returned index groups.

/// Size/stage metadata for one building block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpec {
    /// Stage index the block belongs to (blocks are grouped only within a
    /// stage).
    pub stage: usize,
    /// Human-readable label, e.g. `"layer3.4"`.
    pub label: String,
    /// Scalar parameter count.
    pub params: usize,
}

/// Planner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParserConfig {
    /// Maximum parameter share (of the whole network) one module may hold
    /// before its stage is split into similar-sized chunks.
    pub max_share: f32,
    /// Whether to split the final module off (the paper splits layer
    /// 3.7–3.8 so the tail can stay trainable at fine granularity).
    pub split_last: bool,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig {
            max_share: 0.26,
            split_last: true,
        }
    }
}

/// Groups consecutive same-stage units into modules.
///
/// Every returned group is a non-empty run of consecutive indices; groups
/// cover `0..units.len()` exactly once, in order. Stages whose total share
/// exceeds `max_share` are split into `ceil(share / max_share)` chunks
/// balanced by parameter count. With `split_last`, a final multi-unit group
/// sheds its last ≤2 units into an extra group.
pub fn plan_groups(units: &[UnitSpec], cfg: &ParserConfig) -> Vec<Vec<usize>> {
    if units.is_empty() {
        return Vec::new();
    }
    let total: usize = units.iter().map(|u| u.params).sum::<usize>().max(1);
    // Partition into stage runs.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0usize;
    while i < units.len() {
        let stage = units[i].stage;
        let mut j = i;
        while j < units.len() && units[j].stage == stage {
            j += 1;
        }
        let stage_indices: Vec<usize> = (i..j).collect();
        let stage_params: usize = stage_indices.iter().map(|&k| units[k].params).sum();
        let share = stage_params as f32 / total as f32;
        let chunks = ((share / cfg.max_share).ceil() as usize).clamp(1, stage_indices.len());
        groups.extend(split_balanced(&stage_indices, chunks, |k| units[k].params));
        i = j;
    }
    if cfg.split_last {
        if let Some(last) = groups.last_mut() {
            if last.len() > 2 {
                let tail: Vec<usize> = last.split_off(last.len() - 2);
                groups.push(tail);
            }
        }
    }
    groups
}

/// Splits an index run into `chunks` contiguous pieces with roughly equal
/// total weight.
fn split_balanced(indices: &[usize], chunks: usize, weight: impl Fn(usize) -> usize) -> Vec<Vec<usize>> {
    if chunks <= 1 {
        return vec![indices.to_vec()];
    }
    let total: usize = indices.iter().map(|&k| weight(k)).sum();
    let target = total as f32 / chunks as f32;
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(chunks);
    let mut cur: Vec<usize> = Vec::new();
    let mut acc = 0usize;
    let mut remaining_chunks = chunks;
    for (pos, &k) in indices.iter().enumerate() {
        cur.push(k);
        acc += weight(k);
        let remaining_units = indices.len() - pos - 1;
        // Close the chunk once it reaches the per-chunk target, but never
        // starve the remaining chunks of units.
        if remaining_chunks > 1
            && acc as f32 >= target
            && remaining_units >= remaining_chunks - 1
        {
            out.push(std::mem::take(&mut cur));
            acc = 0;
            remaining_chunks -= 1;
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(sizes: &[(usize, usize)]) -> Vec<UnitSpec> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &(stage, params))| UnitSpec {
                stage,
                label: format!("layer{}.{}", stage + 1, i),
                params,
            })
            .collect()
    }

    fn covers_all(groups: &[Vec<usize>], n: usize) -> bool {
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        flat == (0..n).collect::<Vec<_>>()
    }

    #[test]
    fn small_stages_stay_whole() {
        // Shares like ResNet-56: 5% / 20% / 75% over three stages of 3.
        let u = units(&[
            (0, 5),
            (0, 5),
            (0, 5),
            (1, 20),
            (1, 20),
            (1, 20),
            (2, 75),
            (2, 75),
            (2, 75),
        ]);
        let cfg = ParserConfig {
            max_share: 0.26,
            split_last: false,
        };
        let groups = plan_groups(&u, &cfg);
        assert!(covers_all(&groups, 9));
        // Stage 0 and 1 whole, stage 2 split into 3 chunks (75% / 26% → 3).
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3, 4, 5]);
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn split_last_splits_the_tail() {
        let u = units(&[(0, 10), (0, 10), (0, 10), (0, 10), (0, 10)]);
        let cfg = ParserConfig {
            max_share: 1.0,
            split_last: true,
        };
        let groups = plan_groups(&u, &cfg);
        assert!(covers_all(&groups, 5));
        assert_eq!(groups.last().unwrap().len(), 2);
    }

    #[test]
    fn single_unit_stages_never_split() {
        let u = units(&[(0, 90), (1, 10)]);
        let groups = plan_groups(&u, &ParserConfig::default());
        assert!(covers_all(&groups, 2));
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn resnet56_like_grouping_matches_figure_12() {
        // 27 basic blocks with paper-like shares: layer1 small, layer2
        // medium, layer3 dominating.
        let mut sizes = Vec::new();
        for _ in 0..9 {
            sizes.push((0usize, 2usize));
        }
        for _ in 0..9 {
            sizes.push((1, 8));
        }
        for _ in 0..9 {
            sizes.push((2, 30));
        }
        let u = units(&sizes);
        let groups = plan_groups(&u, &ParserConfig::default());
        assert!(covers_all(&groups, 27));
        // layer1 and layer2 whole.
        assert_eq!(groups[0].len(), 9);
        assert_eq!(groups[1].len(), 9);
        // layer3 split into ≥3 modules, with a 2-block tail.
        assert!(groups.len() >= 5);
        assert_eq!(groups.last().unwrap().len(), 2);
        let total: usize = u.iter().map(|x| x.params).sum();
        for g in &groups[2..groups.len() - 1] {
            let share: usize = g.iter().map(|&k| u[k].params).sum();
            assert!(
                (share as f32 / total as f32) < 0.45,
                "oversized chunk {share}"
            );
        }
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(plan_groups(&[], &ParserConfig::default()).is_empty());
    }

    #[test]
    fn groups_are_contiguous_runs() {
        let u = units(&[(0, 1), (0, 50), (1, 50), (1, 1), (2, 10)]);
        let groups = plan_groups(&u, &ParserConfig::default());
        assert!(covers_all(&groups, 5));
        for g in &groups {
            for w in g.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }
}
