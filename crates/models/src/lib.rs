//! Architecture-faithful model zoo for the Egeria reproduction.
//!
//! Each model in the paper's Table 1 has a width/depth-reduced counterpart
//! here that preserves the *layer-module structure* the paper freezes over:
//!
//! - [`resnet`]: CIFAR-style ResNet (3 stages of basic blocks; ResNet-56 at
//!   depth parameter 9) and an ImageNet-style bottleneck ResNet (4 stages;
//!   ResNet-50 at `[3, 4, 6, 3]`),
//! - [`mobilenet`]: MobileNetV2-style inverted residual blocks,
//! - [`deeplab`]: a DeepLabv3-style segmentation model (ResNet backbone +
//!   dilated-context classifier head),
//! - [`transformer`]: an encoder–decoder Transformer (Base = 6+6 blocks,
//!   Tiny = 2+2),
//! - [`bert`]: an encoder-only BERT-style model with a SQuAD-style span
//!   head for fine-tuning experiments.
//!
//! The [`model::Model`] trait is the uniform interface Egeria trains
//! through, and [`module_parser`] reproduces §6.3's parameter-share-based
//! grouping of building blocks into freezable layer modules (Figure 12).

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod bert;
pub mod deeplab;
pub mod input;
pub mod mobilenet;
pub mod model;
pub mod module_parser;
pub mod resnet;
pub mod transformer;
pub mod vision;

pub use input::{Batch, EvalResult, Input, StepResult, Targets};
pub use model::{Model, ModuleMeta};
pub use vision::VisionModel;
