//! BERT-style encoder with a SQuAD-style span-prediction head.
//!
//! The paper fine-tunes BERT-Base (12 Transformer blocks) on SQuAD 1.0 and
//! reports span F1. This model reproduces that shape: an embedding, a stack
//! of encoder blocks (the 12 freezable layer modules of Table 1), and a
//! QA head producing per-token start/end logits. [`span_f1`] computes the
//! token-overlap F1 of SQuAD evaluation.

use crate::input::{Batch, EvalResult, Input, StepResult, Targets};
use crate::model::{Model, ModuleMeta};
use crate::transformer::EncoderBlock;
use egeria_nn::embedding::Embedding;
use egeria_nn::layer::{Layer, Mode};
use egeria_nn::linear::Linear;
use egeria_nn::loss::cross_entropy;
use egeria_nn::Parameter;
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// BERT-style model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BertConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Encoder blocks (12 for the Base shape).
    pub layers: usize,
}

impl BertConfig {
    /// A reduced-width BERT-Base (12 blocks).
    pub fn base(vocab: usize) -> Self {
        BertConfig {
            vocab,
            d_model: 24,
            heads: 4,
            d_ff: 48,
            layers: 12,
        }
    }
}

/// Encoder-only model with a span head for extractive QA.
pub struct BertQa {
    name: String,
    cfg: BertConfig,
    seed: u64,
    embed: Embedding,
    blocks: Vec<EncoderBlock>,
    span_head: Linear,
    frozen: usize,
}

impl BertQa {
    /// Creates the model from a config and init seed.
    pub fn new(name: impl Into<String>, cfg: BertConfig, seed: u64) -> Result<Self> {
        let mut rng = Rng::new(seed);
        let mut blocks = Vec::with_capacity(cfg.layers);
        for i in 0..cfg.layers {
            blocks.push(EncoderBlock::new(
                &format!("block.{i}"),
                cfg.d_model,
                cfg.heads,
                cfg.d_ff,
                &mut rng,
            )?);
        }
        Ok(BertQa {
            name: name.into(),
            cfg,
            seed,
            embed: Embedding::new("embed", cfg.vocab, cfg.d_model, true, &mut rng),
            blocks,
            // Two logits per token: span start and span end.
            span_head: Linear::new("span_head", cfg.d_model, 2, true, &mut rng),
            frozen: 0,
        })
    }

    fn tokens(batch: &Batch) -> Result<&[Vec<usize>]> {
        match &batch.input {
            Input::Tokens(t) => Ok(t),
            _ => Err(TensorError::Numerical("bert needs token input".into())),
        }
    }

    fn spans(targets: &Targets) -> Result<&[(usize, usize)]> {
        match targets {
            Targets::Spans(s) => Ok(s),
            _ => Err(TensorError::Numerical("bert needs span targets".into())),
        }
    }

    /// Forward returning `(start_logits, end_logits)`, each `(b, t)`.
    fn forward_spans(
        &mut self,
        tokens: &[Vec<usize>],
        mode: Mode,
        capture: Option<usize>,
    ) -> Result<(Tensor, Tensor, Option<Tensor>)> {
        let mut h = self
            .embed
            .forward_ids(tokens, if self.frozen > 0 { Mode::Eval } else { mode })?;
        let mut captured = None;
        for (i, b) in self.blocks.iter_mut().enumerate() {
            let m = if i < self.frozen { Mode::Eval } else { mode };
            h = b.forward(&h, m)?;
            if capture == Some(i) {
                captured = Some(h.clone());
            }
        }
        let logits = self.span_head.forward(&h, mode)?; // (b, t, 2)
        let b = logits.dims()[0];
        let t = logits.dims()[1];
        let mut start = Tensor::zeros(&[b, t]);
        let mut end = Tensor::zeros(&[b, t]);
        for bi in 0..b {
            for ti in 0..t {
                start.data_mut()[bi * t + ti] = logits.data()[(bi * t + ti) * 2];
                end.data_mut()[bi * t + ti] = logits.data()[(bi * t + ti) * 2 + 1];
            }
        }
        Ok((start, end, captured))
    }

    fn backward_spans(&mut self, g_start: &Tensor, g_end: &Tensor) -> Result<usize> {
        let b = g_start.dims()[0];
        let t = g_start.dims()[1];
        let mut g = Tensor::zeros(&[b, t, 2]);
        for bi in 0..b {
            for ti in 0..t {
                g.data_mut()[(bi * t + ti) * 2] = g_start.data()[bi * t + ti];
                g.data_mut()[(bi * t + ti) * 2 + 1] = g_end.data()[bi * t + ti];
            }
        }
        let mut gh = self.span_head.backward(&g)?;
        let mut ran = 0usize;
        for (i, blk) in self.blocks.iter_mut().enumerate().rev() {
            if i < self.frozen {
                break;
            }
            gh = blk.backward(&gh)?;
            ran += 1;
        }
        if self.frozen == 0 {
            self.embed.backward_ids(&gh)?;
        }
        Ok(ran)
    }
}

/// Token-overlap F1 between a predicted and gold inclusive span.
pub fn span_f1(pred: (usize, usize), gold: (usize, usize)) -> f32 {
    let (ps, pe) = (pred.0.min(pred.1), pred.0.max(pred.1));
    let (gs, ge) = gold;
    let inter_start = ps.max(gs);
    let inter_end = pe.min(ge);
    if inter_end < inter_start {
        return 0.0;
    }
    let inter = (inter_end - inter_start + 1) as f32;
    let p_len = (pe - ps + 1) as f32;
    let g_len = (ge - gs + 1) as f32;
    let precision = inter / p_len;
    let recall = inter / g_len;
    2.0 * precision * recall / (precision + recall)
}

impl Model for BertQa {
    fn name(&self) -> &str {
        &self.name
    }

    fn modules(&self) -> Vec<ModuleMeta> {
        let n = self.blocks.len();
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut params: usize = b.params().iter().map(|p| p.numel()).sum();
                if i == 0 {
                    params += self.embed.table.numel();
                }
                if i == n - 1 {
                    params += self
                        .span_head
                        .params()
                        .iter()
                        .map(|p| p.numel())
                        .sum::<usize>();
                }
                ModuleMeta {
                    name: format!("block.{i}"),
                    param_count: params,
                }
            })
            .collect()
    }

    fn frozen_prefix(&self) -> usize {
        self.frozen
    }

    fn freeze_prefix(&mut self, k: usize) -> Result<()> {
        if k >= self.blocks.len() {
            return Err(TensorError::Numerical(format!(
                "cannot freeze {k} of {} bert modules",
                self.blocks.len()
            )));
        }
        for (i, b) in self.blocks.iter_mut().enumerate() {
            for p in b.params_mut() {
                p.requires_grad = i >= k;
            }
        }
        self.embed.table.requires_grad = k == 0;
        self.frozen = k;
        Ok(())
    }

    fn unfreeze_all(&mut self) {
        let _ = self.freeze_prefix(0);
    }

    fn train_step(&mut self, batch: &Batch, capture: Option<usize>) -> Result<StepResult> {
        let tokens = Self::tokens(batch)?.to_vec();
        let spans = Self::spans(&batch.targets)?.to_vec();
        let (start, end, captured) = self.forward_spans(&tokens, Mode::Train, capture)?;
        let starts: Vec<usize> = spans.iter().map(|s| s.0).collect();
        let ends: Vec<usize> = spans.iter().map(|s| s.1).collect();
        let (l1, g1) = cross_entropy(&start, &starts, 0.0)?;
        let (l2, g2) = cross_entropy(&end, &ends, 0.0)?;
        let ran = self.backward_spans(&g1, &g2)?;
        Ok(StepResult {
            loss: 0.5 * (l1 + l2),
            captured,
            modules_backpropped: ran,
        })
    }

    fn supports_cached_fp(&self, prefix: usize) -> bool {
        prefix > 0 && prefix < self.blocks.len()
    }

    fn train_step_from(
        &mut self,
        batch: &Batch,
        prefix: usize,
        prefix_activation: &egeria_tensor::Tensor,
        capture: Option<usize>,
    ) -> Result<StepResult> {
        if !self.supports_cached_fp(prefix) {
            return Err(TensorError::AxisOutOfRange {
                axis: prefix,
                rank: self.blocks.len(),
            });
        }
        let spans = Self::spans(&batch.targets)?.to_vec();
        let mut h = prefix_activation.clone();
        let mut captured = None;
        for (i, b) in self.blocks.iter_mut().enumerate().skip(prefix) {
            h = b.forward(&h, Mode::Train)?;
            if capture == Some(i) {
                captured = Some(h.clone());
            }
        }
        let logits = self.span_head.forward(&h, Mode::Train)?;
        let b = logits.dims()[0];
        let t = logits.dims()[1];
        let mut start = Tensor::zeros(&[b, t]);
        let mut end = Tensor::zeros(&[b, t]);
        for bi in 0..b {
            for ti in 0..t {
                start.data_mut()[bi * t + ti] = logits.data()[(bi * t + ti) * 2];
                end.data_mut()[bi * t + ti] = logits.data()[(bi * t + ti) * 2 + 1];
            }
        }
        let starts: Vec<usize> = spans.iter().map(|s| s.0).collect();
        let ends: Vec<usize> = spans.iter().map(|s| s.1).collect();
        let (l1, g1) = cross_entropy(&start, &starts, 0.0)?;
        let (l2, g2) = cross_entropy(&end, &ends, 0.0)?;
        let ran = self.backward_spans(&g1, &g2)?;
        Ok(StepResult {
            loss: 0.5 * (l1 + l2),
            captured,
            modules_backpropped: ran,
        })
    }

    fn eval_batch(&mut self, batch: &Batch) -> Result<EvalResult> {
        let tokens = Self::tokens(batch)?.to_vec();
        let spans = Self::spans(&batch.targets)?.to_vec();
        let (start, end, _) = self.forward_spans(&tokens, Mode::Eval, None)?;
        let starts: Vec<usize> = spans.iter().map(|s| s.0).collect();
        let ends: Vec<usize> = spans.iter().map(|s| s.1).collect();
        let (l1, _) = cross_entropy(&start, &starts, 0.0)?;
        let (l2, _) = cross_entropy(&end, &ends, 0.0)?;
        let ps = start.argmax_last()?;
        let pe = end.argmax_last()?;
        let mut f1 = 0.0f32;
        for ((&s, &e), &(gs, ge)) in ps.iter().zip(pe.iter()).zip(spans.iter()) {
            f1 += span_f1((s, e), (gs, ge));
        }
        let n = spans.len().max(1);
        Ok(EvalResult {
            loss: 0.5 * (l1 + l2),
            metric: f1 / n as f32,
            count: n,
        })
    }

    fn capture_activation(&mut self, batch: &Batch, module: usize) -> Result<Tensor> {
        let tokens = Self::tokens(batch)?.to_vec();
        if module >= self.blocks.len() {
            return Err(TensorError::AxisOutOfRange {
                axis: module,
                rank: self.blocks.len(),
            });
        }
        let mut h = self.embed.forward_ids(&tokens, Mode::Eval)?;
        for b in self.blocks.iter_mut().take(module + 1) {
            h = b.forward(&h, Mode::Eval)?;
        }
        Ok(h)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.embed.table];
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.span_head.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.embed.table];
        for b in &mut self.blocks {
            v.extend(b.params_mut());
        }
        v.extend(self.span_head.params_mut());
        v
    }

    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        let mut copy = BertQa::new(self.name.clone(), self.cfg, self.seed)
            .expect("config already validated");
        let src = self.params();
        let mut dst = copy.params_mut();
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            d.value = s.value.clone();
        }
        Box::new(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BertQa {
        BertQa::new(
            "bert",
            BertConfig {
                vocab: 12,
                d_model: 8,
                heads: 2,
                d_ff: 16,
                layers: 3,
            },
            1,
        )
        .unwrap()
    }

    fn batch(vocab: usize, b: usize, t: usize) -> Batch {
        let tokens: Vec<Vec<usize>> = (0..b).map(|i| (0..t).map(|j| (i + j) % vocab).collect()).collect();
        let spans: Vec<(usize, usize)> = (0..b).map(|i| (i % t, (i % t + 2).min(t - 1))).collect();
        Batch {
            input: Input::Tokens(tokens),
            targets: Targets::Spans(spans),
            sample_ids: (0..b as u64).collect(),
        }
    }

    #[test]
    fn span_f1_cases() {
        assert!((span_f1((2, 4), (2, 4)) - 1.0).abs() < 1e-6);
        assert_eq!(span_f1((0, 1), (3, 4)), 0.0);
        // Pred [1,2], gold [2,3]: inter 1, p=0.5, r=0.5 → F1 0.5.
        assert!((span_f1((1, 2), (2, 3)) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn train_step_and_eval_run() {
        let mut m = tiny();
        let b = batch(12, 3, 6);
        let r = m.train_step(&b, Some(0)).unwrap();
        assert!(r.loss.is_finite());
        assert!(r.captured.is_some());
        let e = m.eval_batch(&b).unwrap();
        assert!(e.metric >= 0.0 && e.metric <= 1.0);
    }

    #[test]
    fn freezing_blocks_skips_their_grads() {
        let mut m = tiny();
        m.freeze_prefix(2).unwrap();
        let b = batch(12, 2, 6);
        let r = m.train_step(&b, None).unwrap();
        assert_eq!(r.modules_backpropped, 1);
        assert!(m.blocks[0].params().iter().all(|p| p.grad.is_none()));
        assert!(m.blocks[2].params().iter().any(|p| p.grad.is_some()));
        assert!(m.embed.table.grad.is_none());
    }

    #[test]
    fn fine_tuning_reduces_span_loss() {
        let mut m = tiny();
        let b = batch(12, 4, 6);
        let mut opt = egeria_nn::optim::Adam::new(3e-3, 0.0);
        let first = m.train_step(&b, None).unwrap().loss;
        for _ in 0..30 {
            opt.step(&mut m.params_mut()).unwrap();
            m.zero_grad();
            let _ = m.train_step(&b, None).unwrap();
        }
        let last = m.eval_batch(&b).unwrap().loss;
        assert!(last < first, "loss {first} → {last}");
    }

    #[test]
    fn modules_fold_embed_and_head() {
        let m = tiny();
        let mods = m.modules();
        assert_eq!(mods.len(), 3);
        assert!(mods[0].param_count > mods[1].param_count);
        assert!(mods[2].param_count > mods[1].param_count);
    }
}
