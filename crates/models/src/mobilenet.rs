//! MobileNetV2-style network built from inverted residual blocks.
//!
//! The paper's Table 1 lists MobileNetV2 as 17 inverted-residual building
//! modules; this builder reproduces that block table (expansion factor,
//! channel, repeat, stride) at a configurable width multiplier.

use crate::module_parser::{plan_groups, ParserConfig, UnitSpec};
use crate::vision::{VisionModel, VisionTask};
use egeria_nn::activation::{Act, Activation};
use egeria_nn::conv_layers::{Conv2d, DepthwiseConv2d, GlobalAvgPool};
use egeria_nn::layer::{Layer, Mode};
use egeria_nn::linear::Linear;
use egeria_nn::norm::BatchNorm2d;
use egeria_nn::{Network, Parameter, Sequential};
use egeria_tensor::{Result, Rng, Tensor};
use std::sync::Arc;

/// An inverted residual block: 1×1 expand → depthwise 3×3 → 1×1 project,
/// with a residual connection when stride is 1 and channels match.
pub struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d, Activation)>,
    dw: DepthwiseConv2d,
    dw_bn: BatchNorm2d,
    dw_act: Activation,
    project: Conv2d,
    project_bn: BatchNorm2d,
    residual: bool,
}

impl InvertedResidual {
    /// Creates a block with expansion factor `t`.
    pub fn new(name: &str, c_in: usize, c_out: usize, stride: usize, t: usize, rng: &mut Rng) -> Self {
        let hidden = c_in * t;
        let expand = (t != 1).then(|| {
            (
                Conv2d::new(&format!("{name}.expand"), c_in, hidden, 1, 1, 0, false, rng),
                BatchNorm2d::new(&format!("{name}.expand_bn"), hidden),
                Activation::new(Act::Relu6),
            )
        });
        InvertedResidual {
            expand,
            dw: DepthwiseConv2d::new(&format!("{name}.dw"), hidden, 3, stride, 1, rng),
            dw_bn: BatchNorm2d::new(&format!("{name}.dw_bn"), hidden),
            dw_act: Activation::new(Act::Relu6),
            project: Conv2d::new(&format!("{name}.project"), hidden, c_out, 1, 1, 0, false, rng),
            project_bn: BatchNorm2d::new(&format!("{name}.project_bn"), c_out),
            residual: stride == 1 && c_in == c_out,
        }
    }
}

impl Layer for InvertedResidual {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut h = match &mut self.expand {
            Some((conv, bn, act)) => {
                let t = conv.forward(x, mode)?;
                let t = bn.forward(&t, mode)?;
                act.forward(&t, mode)?
            }
            None => x.clone(),
        };
        h = self.dw.forward(&h, mode)?;
        h = self.dw_bn.forward(&h, mode)?;
        h = self.dw_act.forward(&h, mode)?;
        h = self.project.forward(&h, mode)?;
        h = self.project_bn.forward(&h, mode)?;
        if self.residual {
            h = h.add(x)?;
        }
        Ok(h)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = self.project_bn.backward(grad_out)?;
        g = self.project.backward(&g)?;
        g = self.dw_act.backward(&g)?;
        g = self.dw_bn.backward(&g)?;
        g = self.dw.backward(&g)?;
        let gx = match &mut self.expand {
            Some((conv, bn, act)) => {
                let t = act.backward(&g)?;
                let t = bn.backward(&t)?;
                conv.backward(&t)?
            }
            None => g,
        };
        if self.residual {
            gx.add(grad_out)
        } else {
            Ok(gx)
        }
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = Vec::new();
        if let Some((c, b, _)) = &self.expand {
            v.extend(c.params());
            v.extend(b.params());
        }
        v.extend(self.dw.params());
        v.extend(self.dw_bn.params());
        v.extend(self.project.params());
        v.extend(self.project_bn.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = Vec::new();
        if let Some((c, b, _)) = &mut self.expand {
            v.extend(c.params_mut());
            v.extend(b.params_mut());
        }
        v.extend(self.dw.params_mut());
        v.extend(self.dw_bn.params_mut());
        v.extend(self.project.params_mut());
        v.extend(self.project_bn.params_mut());
        v
    }

    fn state_buffers(&self) -> Vec<&Tensor> {
        let mut v = Vec::new();
        if let Some((_, b, _)) = &self.expand {
            v.extend(b.state_buffers());
        }
        v.extend(self.dw_bn.state_buffers());
        v.extend(self.project_bn.state_buffers());
        v
    }

    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = Vec::new();
        if let Some((_, b, _)) = &mut self.expand {
            v.extend(b.state_buffers_mut());
        }
        v.extend(self.dw_bn.state_buffers_mut());
        v.extend(self.project_bn.state_buffers_mut());
        v
    }

    fn kind(&self) -> &'static str {
        "InvertedResidual"
    }
}

/// Configuration for the MobileNetV2-style builder.
#[derive(Debug, Clone, Copy)]
pub struct MobileNetConfig {
    /// Width divisor relative to the paper-scale channel table (4 → quarter
    /// width).
    pub width_div: usize,
    /// Output classes.
    pub classes: usize,
    /// Module-parser configuration.
    pub parser: ParserConfig,
}

impl Default for MobileNetConfig {
    fn default() -> Self {
        MobileNetConfig {
            width_div: 4,
            classes: 10,
            parser: ParserConfig::default(),
        }
    }
}

/// The MobileNetV2 block table `(expansion, channels, repeats, stride)` —
/// 17 inverted residual blocks, matching Table 1 of the paper.
pub const MOBILENET_V2_TABLE: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds a MobileNetV2-style classifier.
pub fn mobilenet_v2(cfg: MobileNetConfig, seed: u64) -> VisionModel {
    let classes = cfg.classes;
    let builder = Arc::new(move || {
        let mut rng = Rng::new(seed);
        let scale = |c: usize| (c / cfg.width_div).max(2);
        let stem_c = scale(32);
        let stem: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("stem.conv", 3, stem_c, 3, 1, 1, false, &mut rng)),
            Box::new(BatchNorm2d::new("stem.bn", stem_c)),
            Box::new(Activation::new(Act::Relu6)),
        ];
        let mut units: Vec<(UnitSpec, Box<dyn Layer>)> = Vec::new();
        let mut c_in = stem_c;
        let mut block_idx = 0usize;
        for (stage, &(t, c, reps, s)) in MOBILENET_V2_TABLE.iter().enumerate() {
            let c_out = scale(c);
            for r in 0..reps {
                // Reduced input resolution: keep only the first two
                // downsampling strides so 16×16 inputs stay viable.
                let stride = if r == 0 && s == 2 && stage < 3 { 2 } else { 1 };
                let name = format!("block{block_idx}");
                let block = InvertedResidual::new(&name, c_in, c_out, stride, t, &mut rng);
                let params = block.param_count();
                units.push((
                    UnitSpec {
                        stage,
                        label: name,
                        params,
                    },
                    Box::new(block),
                ));
                c_in = c_out;
                block_idx += 1;
            }
        }
        let head_c = scale(1280);
        let head: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("head.conv", c_in, head_c, 1, 1, 0, false, &mut rng)),
            Box::new(BatchNorm2d::new("head.bn", head_c)),
            Box::new(Activation::new(Act::Relu6)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new("classifier", head_c, cfg.classes, true, &mut rng)),
        ];
        let specs: Vec<UnitSpec> = units.iter().map(|(s, _)| s.clone()).collect();
        let groups = plan_groups(&specs, &cfg.parser);
        let mut layers: Vec<Option<Box<dyn Layer>>> =
            units.into_iter().map(|(_, l)| Some(l)).collect();
        let mut net = Network::new();
        let mut stem = stem;
        let mut head = head;
        let n_groups = groups.len();
        for (gi, group) in groups.iter().enumerate() {
            let mut seq = Sequential::new();
            if gi == 0 {
                for s in stem.drain(..) {
                    seq.add(s);
                }
            }
            for &idx in group {
                seq.add(layers[idx].take().expect("unit used once"));
            }
            if gi == n_groups - 1 {
                for h in head.drain(..) {
                    seq.add(h);
                }
            }
            let name = format!(
                "{}-{}",
                specs[*group.first().expect("non-empty")].label,
                specs[*group.last().expect("non-empty")].label
            );
            net.add_block(name, Box::new(seq));
        }
        net
    });
    VisionModel::new("mobilenet_v2", VisionTask::Classification, classes, builder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{Batch, Input, Targets};
    use crate::model::Model;

    #[test]
    fn inverted_residual_shapes_and_residual_flag() {
        let mut rng = Rng::new(1);
        let mut b = InvertedResidual::new("b", 4, 4, 1, 6, &mut rng);
        assert!(b.residual);
        let x = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let y = b.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), x.dims());
        let mut b2 = InvertedResidual::new("b2", 4, 8, 2, 6, &mut rng);
        assert!(!b2.residual);
        let y2 = b2.forward(&x, Mode::Train).unwrap();
        assert_eq!(y2.dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn inverted_residual_gradcheck() {
        let mut rng = Rng::new(2);
        let mut b = InvertedResidual::new("b", 3, 3, 1, 2, &mut rng);
        let x = Tensor::randn(&[1, 3, 4, 4], &mut rng);
        let worst = egeria_nn::layer::gradcheck_input(&mut b, &x, &[0, 13, 31, 47], 1e-2).unwrap();
        assert!(worst < 5e-2, "inverted residual gradcheck {worst}");
    }

    #[test]
    fn mobilenet_has_17_inverted_residual_blocks() {
        let total_blocks: usize = MOBILENET_V2_TABLE.iter().map(|&(_, _, n, _)| n).sum();
        assert_eq!(total_blocks, 17);
    }

    #[test]
    fn mobilenet_trains_one_step() {
        let mut m = mobilenet_v2(
            MobileNetConfig {
                width_div: 8,
                classes: 10,
                parser: ParserConfig::default(),
            },
            3,
        );
        let mut rng = Rng::new(4);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[2, 3, 16, 16], &mut rng)),
            targets: Targets::Classes(vec![1, 2]),
            sample_ids: vec![0, 1],
        };
        let r = m.train_step(&batch, None).unwrap();
        assert!(r.loss.is_finite());
        assert!(m.modules().len() >= 3);
    }
}
