//! CIFAR-style and ImageNet-style residual networks.
//!
//! `resnet_cifar(n, …)` builds the 3-stage basic-block ResNet family of the
//! paper's CIFAR experiments (`n = 9` → ResNet-56: 6n+2 layers, 3 stages of
//! 9 blocks). `resnet_bottleneck(…)` builds the 4-stage bottleneck family
//! (ResNet-50 at `[3, 4, 6, 3]`). Both are width-reduced but structurally
//! faithful: stage boundaries, stride-2 downsampling, and projection
//! shortcuts land in the same places.

use crate::module_parser::{plan_groups, ParserConfig, UnitSpec};
use crate::vision::{VisionModel, VisionTask};
use egeria_nn::activation::{Act, Activation};
use egeria_nn::conv_layers::{Conv2d, GlobalAvgPool};
use egeria_nn::layer::{Layer, Mode};
use egeria_nn::linear::Linear;
use egeria_nn::norm::BatchNorm2d;
use egeria_nn::{Network, Parameter, Sequential};
use egeria_tensor::{Result, Rng, Tensor, TensorError};
use std::sync::Arc;

/// A basic residual block: `relu(bn(conv(relu(bn(conv(x))))) + shortcut(x))`.
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Activation,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    cached_sum: Option<Tensor>,
}

impl BasicBlock {
    /// Creates a basic block; a projection shortcut is added when the
    /// channel count or stride changes.
    pub fn new(name: &str, c_in: usize, c_out: usize, stride: usize, rng: &mut Rng) -> Self {
        let shortcut = (stride != 1 || c_in != c_out).then(|| {
            (
                Conv2d::new(&format!("{name}.down"), c_in, c_out, 1, stride, 0, false, rng),
                BatchNorm2d::new(&format!("{name}.down_bn"), c_out),
            )
        });
        BasicBlock {
            conv1: Conv2d::new(&format!("{name}.conv1"), c_in, c_out, 3, stride, 1, false, rng),
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), c_out),
            relu1: Activation::new(Act::Relu),
            conv2: Conv2d::new(&format!("{name}.conv2"), c_out, c_out, 3, 1, 1, false, rng),
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), c_out),
            shortcut,
            cached_sum: None,
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut h = self.conv1.forward(x, mode)?;
        h = self.bn1.forward(&h, mode)?;
        h = self.relu1.forward(&h, mode)?;
        h = self.conv2.forward(&h, mode)?;
        h = self.bn2.forward(&h, mode)?;
        let s = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = conv.forward(x, mode)?;
                bn.forward(&t, mode)?
            }
            None => x.clone(),
        };
        let sum = h.add(&s)?;
        self.cached_sum = Some(sum.clone());
        Ok(sum.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let sum = self.cached_sum.as_ref().ok_or_else(|| {
            TensorError::Numerical("BasicBlock::backward before forward".into())
        })?;
        // Through the final ReLU.
        let mut g = grad_out.clone();
        for (gv, &sv) in g.data_mut().iter_mut().zip(sum.data().iter()) {
            if sv <= 0.0 {
                *gv = 0.0;
            }
        }
        // Main branch.
        let mut gm = self.bn2.backward(&g)?;
        gm = self.conv2.backward(&gm)?;
        gm = self.relu1.backward(&gm)?;
        gm = self.bn1.backward(&gm)?;
        gm = self.conv1.backward(&gm)?;
        // Shortcut branch.
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = bn.backward(&g)?;
                conv.backward(&t)?
            }
            None => g,
        };
        gm.add(&gs)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = self.conv1.params();
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        if let Some((c, b)) = &self.shortcut {
            v.extend(c.params());
            v.extend(b.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = self.conv1.params_mut();
        v.extend(self.bn1.params_mut());
        v.extend(self.conv2.params_mut());
        v.extend(self.bn2.params_mut());
        if let Some((c, b)) = &mut self.shortcut {
            v.extend(c.params_mut());
            v.extend(b.params_mut());
        }
        v
    }

    fn state_buffers(&self) -> Vec<&Tensor> {
        let mut v = self.bn1.state_buffers();
        v.extend(self.bn2.state_buffers());
        if let Some((_, b)) = &self.shortcut {
            v.extend(b.state_buffers());
        }
        v
    }

    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = self.bn1.state_buffers_mut();
        v.extend(self.bn2.state_buffers_mut());
        if let Some((_, b)) = &mut self.shortcut {
            v.extend(b.state_buffers_mut());
        }
        v
    }

    fn kind(&self) -> &'static str {
        "BasicBlock"
    }
}

/// A bottleneck residual block (1×1 reduce, 3×3, 1×1 expand ×4).
pub struct Bottleneck {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Activation,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: Activation,
    conv3: Conv2d,
    bn3: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    cached_sum: Option<Tensor>,
}

/// Channel expansion of the bottleneck output relative to its inner width.
pub const BOTTLENECK_EXPANSION: usize = 4;

impl Bottleneck {
    /// Creates a bottleneck block with inner width `planes` and output
    /// width `planes * 4`.
    pub fn new(name: &str, c_in: usize, planes: usize, stride: usize, rng: &mut Rng) -> Self {
        let c_out = planes * BOTTLENECK_EXPANSION;
        let shortcut = (stride != 1 || c_in != c_out).then(|| {
            (
                Conv2d::new(&format!("{name}.down"), c_in, c_out, 1, stride, 0, false, rng),
                BatchNorm2d::new(&format!("{name}.down_bn"), c_out),
            )
        });
        Bottleneck {
            conv1: Conv2d::new(&format!("{name}.conv1"), c_in, planes, 1, 1, 0, false, rng),
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), planes),
            relu1: Activation::new(Act::Relu),
            conv2: Conv2d::new(&format!("{name}.conv2"), planes, planes, 3, stride, 1, false, rng),
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), planes),
            relu2: Activation::new(Act::Relu),
            conv3: Conv2d::new(&format!("{name}.conv3"), planes, c_out, 1, 1, 0, false, rng),
            bn3: BatchNorm2d::new(&format!("{name}.bn3"), c_out),
            shortcut,
            cached_sum: None,
        }
    }
}

impl Layer for Bottleneck {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut h = self.conv1.forward(x, mode)?;
        h = self.bn1.forward(&h, mode)?;
        h = self.relu1.forward(&h, mode)?;
        h = self.conv2.forward(&h, mode)?;
        h = self.bn2.forward(&h, mode)?;
        h = self.relu2.forward(&h, mode)?;
        h = self.conv3.forward(&h, mode)?;
        h = self.bn3.forward(&h, mode)?;
        let s = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = conv.forward(x, mode)?;
                bn.forward(&t, mode)?
            }
            None => x.clone(),
        };
        let sum = h.add(&s)?;
        self.cached_sum = Some(sum.clone());
        Ok(sum.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let sum = self.cached_sum.as_ref().ok_or_else(|| {
            TensorError::Numerical("Bottleneck::backward before forward".into())
        })?;
        let mut g = grad_out.clone();
        for (gv, &sv) in g.data_mut().iter_mut().zip(sum.data().iter()) {
            if sv <= 0.0 {
                *gv = 0.0;
            }
        }
        let mut gm = self.bn3.backward(&g)?;
        gm = self.conv3.backward(&gm)?;
        gm = self.relu2.backward(&gm)?;
        gm = self.bn2.backward(&gm)?;
        gm = self.conv2.backward(&gm)?;
        gm = self.relu1.backward(&gm)?;
        gm = self.bn1.backward(&gm)?;
        gm = self.conv1.backward(&gm)?;
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = bn.backward(&g)?;
                conv.backward(&t)?
            }
            None => g,
        };
        gm.add(&gs)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = self.conv1.params();
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        v.extend(self.conv3.params());
        v.extend(self.bn3.params());
        if let Some((c, b)) = &self.shortcut {
            v.extend(c.params());
            v.extend(b.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = self.conv1.params_mut();
        v.extend(self.bn1.params_mut());
        v.extend(self.conv2.params_mut());
        v.extend(self.bn2.params_mut());
        v.extend(self.conv3.params_mut());
        v.extend(self.bn3.params_mut());
        if let Some((c, b)) = &mut self.shortcut {
            v.extend(c.params_mut());
            v.extend(b.params_mut());
        }
        v
    }

    fn state_buffers(&self) -> Vec<&Tensor> {
        let mut v = self.bn1.state_buffers();
        v.extend(self.bn2.state_buffers());
        v.extend(self.bn3.state_buffers());
        if let Some((_, b)) = &self.shortcut {
            v.extend(b.state_buffers());
        }
        v
    }

    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = self.bn1.state_buffers_mut();
        v.extend(self.bn2.state_buffers_mut());
        v.extend(self.bn3.state_buffers_mut());
        if let Some((_, b)) = &mut self.shortcut {
            v.extend(b.state_buffers_mut());
        }
        v
    }

    fn kind(&self) -> &'static str {
        "Bottleneck"
    }
}

/// Shared assembly: groups raw residual blocks into freezable Network
/// blocks via the module parser, merging the stem into the first group and
/// the classifier head into the last.
fn assemble_network(
    mut stem: Vec<Box<dyn Layer>>,
    units: Vec<(UnitSpec, Box<dyn Layer>)>,
    mut head: Vec<Box<dyn Layer>>,
    cfg: &ParserConfig,
) -> Network {
    let specs: Vec<UnitSpec> = units.iter().map(|(s, _)| s.clone()).collect();
    let groups = plan_groups(&specs, cfg);
    let mut layers: Vec<Option<Box<dyn Layer>>> = units.into_iter().map(|(_, l)| Some(l)).collect();
    let mut net = Network::new();
    let n_groups = groups.len();
    for (gi, group) in groups.iter().enumerate() {
        let mut seq = Sequential::new();
        if gi == 0 {
            for s in stem.drain_all() {
                seq.add(s);
            }
        }
        let first = specs[*group.first().expect("non-empty group")].label.clone();
        let last = specs[*group.last().expect("non-empty group")].label.clone();
        for &idx in group {
            seq.add(layers[idx].take().expect("each unit used once"));
        }
        if gi == n_groups - 1 {
            for h in head.drain_all() {
                seq.add(h);
            }
        }
        let name = if first == last {
            first
        } else {
            format!("{first}-{last}")
        };
        net.add_block(name, Box::new(seq));
    }
    net
}

/// Helper to drain a `Vec` passed by value inside a closure-captured move.
trait DrainAll<T> {
    fn drain_all(&mut self) -> Vec<T>;
}

impl<T> DrainAll<T> for Vec<T> {
    fn drain_all(&mut self) -> Vec<T> {
        std::mem::take(self)
    }
}

/// Configuration for the CIFAR-style ResNet family.
#[derive(Debug, Clone, Copy)]
pub struct ResNetCifarConfig {
    /// Blocks per stage (`n = 9` → ResNet-56).
    pub n: usize,
    /// Base channel width (the paper-scale model uses 16).
    pub width: usize,
    /// Output classes.
    pub classes: usize,
    /// Module-parser configuration.
    pub parser: ParserConfig,
}

impl Default for ResNetCifarConfig {
    fn default() -> Self {
        ResNetCifarConfig {
            n: 9,
            width: 4,
            classes: 10,
            parser: ParserConfig::default(),
        }
    }
}

/// Builds a CIFAR-style ResNet (`6n+2` layers) as a freezable vision model.
pub fn resnet_cifar(cfg: ResNetCifarConfig, seed: u64) -> VisionModel {
    let builder = Arc::new(move || {
        let mut rng = Rng::new(seed);
        let w = cfg.width;
        let stem: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("stem.conv", 3, w, 3, 1, 1, false, &mut rng)),
            Box::new(BatchNorm2d::new("stem.bn", w)),
            Box::new(Activation::new(Act::Relu)),
        ];
        let mut units: Vec<(UnitSpec, Box<dyn Layer>)> = Vec::new();
        let widths = [w, 2 * w, 4 * w];
        let mut c_in = w;
        for (stage, &c_out) in widths.iter().enumerate() {
            for b in 0..cfg.n {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                let name = format!("layer{}.{}", stage + 1, b);
                let block = BasicBlock::new(&name, c_in, c_out, stride, &mut rng);
                let params = block.param_count();
                units.push((
                    UnitSpec {
                        stage,
                        label: name,
                        params,
                    },
                    Box::new(block),
                ));
                c_in = c_out;
            }
        }
        let head: Vec<Box<dyn Layer>> = vec![
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new("fc", 4 * w, cfg.classes, true, &mut rng)),
        ];
        assemble_network(stem, units, head, &cfg.parser)
    });
    VisionModel::new(
        format!("resnet{}", 6 * cfg.n + 2),
        VisionTask::Classification,
        cfg.classes,
        builder,
    )
}

/// Configuration for the bottleneck (ImageNet-style) ResNet family.
#[derive(Debug, Clone)]
pub struct ResNetBottleneckConfig {
    /// Blocks per stage (`[3, 4, 6, 3]` → ResNet-50).
    pub stages: Vec<usize>,
    /// Base inner width (the paper-scale model uses 64).
    pub width: usize,
    /// Output classes.
    pub classes: usize,
    /// Module-parser configuration.
    pub parser: ParserConfig,
}

impl Default for ResNetBottleneckConfig {
    fn default() -> Self {
        ResNetBottleneckConfig {
            stages: vec![3, 4, 6, 3],
            width: 4,
            classes: 10,
            parser: ParserConfig::default(),
        }
    }
}

/// Builds an ImageNet-style bottleneck ResNet as a freezable vision model.
pub fn resnet_bottleneck(cfg: ResNetBottleneckConfig, seed: u64) -> VisionModel {
    let classes = cfg.classes;
    let builder = Arc::new(move || {
        let mut rng = Rng::new(seed);
        let w = cfg.width;
        let stem: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("stem.conv", 3, w, 3, 1, 1, false, &mut rng)),
            Box::new(BatchNorm2d::new("stem.bn", w)),
            Box::new(Activation::new(Act::Relu)),
        ];
        let mut units: Vec<(UnitSpec, Box<dyn Layer>)> = Vec::new();
        let mut c_in = w;
        for (stage, &reps) in cfg.stages.iter().enumerate() {
            let planes = w << stage;
            for b in 0..reps {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                let name = format!("layer{}.{}", stage + 1, b);
                let block = Bottleneck::new(&name, c_in, planes, stride, &mut rng);
                let params = block.param_count();
                units.push((
                    UnitSpec {
                        stage,
                        label: name,
                        params,
                    },
                    Box::new(block),
                ));
                c_in = planes * BOTTLENECK_EXPANSION;
            }
        }
        let head: Vec<Box<dyn Layer>> = vec![
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new("fc", c_in, cfg.classes, true, &mut rng)),
        ];
        assemble_network(stem, units, head, &cfg.parser)
    });
    VisionModel::new("resnet50", VisionTask::Classification, classes, builder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn basic_block_identity_shortcut_shapes() {
        let mut rng = Rng::new(1);
        let mut b = BasicBlock::new("b", 4, 4, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 8, 8], &mut rng);
        let y = b.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        let gx = b.backward(&Tensor::ones(&[2, 4, 8, 8])).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn basic_block_downsampling_shortcut() {
        let mut rng = Rng::new(2);
        let mut b = BasicBlock::new("b", 4, 8, 2, &mut rng);
        let x = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        let y = b.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
        assert!(b.shortcut.is_some());
        let gx = b.backward(&Tensor::ones(&[1, 8, 4, 4])).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn basic_block_gradcheck() {
        let mut rng = Rng::new(3);
        let mut b = BasicBlock::new("b", 2, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let worst = egeria_nn::layer::gradcheck_input(&mut b, &x, &[0, 9, 21, 31], 1e-2).unwrap();
        assert!(worst < 5e-2, "basic block gradcheck {worst}");
    }

    #[test]
    fn bottleneck_expands_channels() {
        let mut rng = Rng::new(4);
        let mut b = Bottleneck::new("b", 8, 4, 1, &mut rng);
        let x = Tensor::randn(&[1, 8, 4, 4], &mut rng);
        let y = b.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 16, 4, 4]);
        let gx = b.backward(&Tensor::ones(&[1, 16, 4, 4])).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn resnet_cifar_builds_and_trains_a_step() {
        let cfg = ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 10,
            parser: ParserConfig::default(),
        };
        let mut m = resnet_cifar(cfg, 7);
        assert_eq!(m.name(), "resnet14");
        assert!(m.modules().len() >= 3);
        let mut rng = Rng::new(8);
        let batch = crate::input::Batch {
            input: crate::input::Input::Image(Tensor::randn(&[4, 3, 8, 8], &mut rng)),
            targets: crate::input::Targets::Classes(vec![0, 1, 2, 3]),
            sample_ids: vec![0, 1, 2, 3],
        };
        let r = m.train_step(&batch, Some(0)).unwrap();
        assert!(r.loss.is_finite());
        assert!(r.captured.is_some());
        assert_eq!(r.modules_backpropped, m.modules().len());
    }

    #[test]
    fn resnet56_has_27_basic_blocks_grouped() {
        let cfg = ResNetCifarConfig::default();
        let m = resnet_cifar(cfg, 1);
        assert_eq!(m.name(), "resnet56");
        // 27 blocks grouped into a handful of modules; layer3 (~75% of
        // params) must be split finer than layer1.
        let mods = m.modules();
        assert!(mods.len() >= 4 && mods.len() <= 10, "{} modules", mods.len());
        let total: usize = mods.iter().map(|m| m.param_count).sum();
        assert_eq!(total, m.param_count());
    }

    #[test]
    fn clone_boxed_copies_weights_and_running_stats() {
        let cfg = ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            parser: ParserConfig::default(),
        };
        let mut m = resnet_cifar(cfg, 9);
        let mut rng = Rng::new(10);
        // Run a train step so running stats move.
        let batch = crate::input::Batch {
            input: crate::input::Input::Image(Tensor::randn(&[4, 3, 8, 8], &mut rng)),
            targets: crate::input::Targets::Classes(vec![0, 1, 2, 3]),
            sample_ids: vec![0, 1, 2, 3],
        };
        let _ = m.train_step(&batch, None).unwrap();
        let mut copy = m.clone_boxed();
        // Same eval output on the same batch.
        let a = m.eval_batch(&batch).unwrap();
        let b = copy.eval_batch(&batch).unwrap();
        assert!((a.loss - b.loss).abs() < 1e-5);
    }

    #[test]
    fn freezing_prefix_reduces_backprop_work() {
        let cfg = ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            parser: ParserConfig::default(),
        };
        let mut m = resnet_cifar(cfg, 11);
        let nmods = m.modules().len();
        m.freeze_prefix(1).unwrap();
        let mut rng = Rng::new(12);
        let batch = crate::input::Batch {
            input: crate::input::Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
            targets: crate::input::Targets::Classes(vec![0, 1]),
            sample_ids: vec![0, 1],
        };
        let r = m.train_step(&batch, None).unwrap();
        assert_eq!(r.modules_backpropped, nmods - 1);
        assert!(m.active_param_fraction() < 1.0);
    }
}
