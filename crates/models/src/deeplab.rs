//! DeepLabv3-style semantic segmentation model.
//!
//! Structure per the paper (§6.2): "a backbone module for feature
//! computation and extraction plus a classifier module that takes the output
//! of the backbone and returns a dense prediction. KGT will parse the
//! backbone same as the ResNet-50 training and consider the classifier
//! module as a whole." The classifier here is a reduced ASPP-style context
//! head (parallel 1×1 and dilated-equivalent 3×3 branches folded into a
//! small conv stack) followed by upsampling back to input resolution.

use crate::module_parser::{plan_groups, ParserConfig, UnitSpec};
use crate::resnet::{Bottleneck, BOTTLENECK_EXPANSION};
use crate::vision::{VisionModel, VisionTask};
use egeria_nn::activation::{Act, Activation};
use egeria_nn::conv_layers::{Conv2d, UpsampleNearest};
use egeria_nn::layer::Layer;
use egeria_nn::norm::BatchNorm2d;
use egeria_nn::{Network, Sequential};
use egeria_tensor::Rng;
use std::sync::Arc;

/// Configuration for the DeepLabv3-style builder.
#[derive(Debug, Clone)]
pub struct DeepLabConfig {
    /// Backbone blocks per stage.
    pub stages: Vec<usize>,
    /// Base inner width of the backbone.
    pub width: usize,
    /// Segmentation classes.
    pub classes: usize,
    /// Module-parser configuration (applied to the backbone only).
    pub parser: ParserConfig,
}

impl Default for DeepLabConfig {
    fn default() -> Self {
        DeepLabConfig {
            stages: vec![2, 2, 2, 2],
            width: 4,
            classes: 6,
            parser: ParserConfig::default(),
        }
    }
}

/// Builds a DeepLabv3-style segmentation model (backbone modules + one
/// classifier module, frozen last).
pub fn deeplab_v3(cfg: DeepLabConfig, seed: u64) -> VisionModel {
    let classes = cfg.classes;
    let builder = Arc::new(move || {
        let mut rng = Rng::new(seed);
        let w = cfg.width;
        let stem: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("stem.conv", 3, w, 3, 1, 1, false, &mut rng)),
            Box::new(BatchNorm2d::new("stem.bn", w)),
            Box::new(Activation::new(Act::Relu)),
        ];
        let mut units: Vec<(UnitSpec, Box<dyn Layer>)> = Vec::new();
        let mut c_in = w;
        // Downsample only twice (output stride 4) so the dense head keeps
        // spatial context, mirroring DeepLab's output-stride-8/16 choice.
        for (stage, &reps) in cfg.stages.iter().enumerate() {
            let planes = w << stage.min(2);
            for b in 0..reps {
                let stride = if (stage == 1 || stage == 2) && b == 0 { 2 } else { 1 };
                let name = format!("layer{}.{}", stage + 1, b);
                let block = Bottleneck::new(&name, c_in, planes, stride, &mut rng);
                let params = block.param_count();
                units.push((
                    UnitSpec {
                        stage,
                        label: name,
                        params,
                    },
                    Box::new(block),
                ));
                c_in = planes * BOTTLENECK_EXPANSION;
            }
        }
        // Classifier head: context conv stack + per-pixel logits + upsample
        // back to input resolution (one whole module, per the paper).
        let head_c = c_in / 2;
        let mut head = Sequential::new();
        head.add(Box::new(Conv2d::new("head.context", c_in, head_c, 3, 1, 1, false, &mut rng)));
        head.add(Box::new(BatchNorm2d::new("head.bn", head_c)));
        head.add(Box::new(Activation::new(Act::Relu)));
        head.add(Box::new(Conv2d::new("head.proj", head_c, head_c, 1, 1, 0, false, &mut rng)));
        head.add(Box::new(Activation::new(Act::Relu)));
        head.add(Box::new(Conv2d::new(
            "head.logits",
            head_c,
            cfg.classes,
            1,
            1,
            0,
            true,
            &mut rng,
        )));
        head.add(Box::new(UpsampleNearest::new(4)));

        let specs: Vec<UnitSpec> = units.iter().map(|(s, _)| s.clone()).collect();
        let groups = plan_groups(&specs, &cfg.parser);
        let mut layers: Vec<Option<Box<dyn Layer>>> =
            units.into_iter().map(|(_, l)| Some(l)).collect();
        let mut net = Network::new();
        let mut stem = stem;
        for (gi, group) in groups.iter().enumerate() {
            let mut seq = Sequential::new();
            if gi == 0 {
                for s in stem.drain(..) {
                    seq.add(s);
                }
            }
            for &idx in group {
                seq.add(layers[idx].take().expect("unit used once"));
            }
            let name = format!(
                "backbone.{}-{}",
                specs[*group.first().expect("non-empty")].label,
                specs[*group.last().expect("non-empty")].label
            );
            net.add_block(name, Box::new(seq));
        }
        net.add_block("classifier", Box::new(head));
        net
    });
    VisionModel::new("deeplabv3", VisionTask::Segmentation, classes, builder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{Batch, Input, Targets};
    use crate::model::Model;
    use egeria_tensor::Tensor;

    fn tiny() -> VisionModel {
        deeplab_v3(
            DeepLabConfig {
                stages: vec![1, 1, 1, 1],
                width: 2,
                classes: 4,
                parser: ParserConfig::default(),
            },
            5,
        )
    }

    #[test]
    fn output_is_dense_per_pixel() {
        let mut m = tiny();
        let mut rng = Rng::new(6);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let targets: Vec<usize> = (0..2 * 8 * 8).map(|i| i % 4).collect();
        let batch = Batch {
            input: Input::Image(x),
            targets: Targets::Pixels(targets),
            sample_ids: vec![0, 1],
        };
        let r = m.train_step(&batch, None).unwrap();
        assert!(r.loss.is_finite());
        let e = m.eval_batch(&batch).unwrap();
        assert!(e.metric >= 0.0 && e.metric <= 1.0);
    }

    #[test]
    fn classifier_is_the_last_whole_module() {
        let m = tiny();
        let mods = m.modules();
        assert_eq!(mods.last().unwrap().name, "classifier");
        assert!(mods.len() >= 3);
    }
}
