//! The uniform model interface Egeria trains through.

use crate::input::{Batch, EvalResult, StepResult};
use egeria_nn::Parameter;
use egeria_tensor::Result;

/// Metadata about one freezable layer module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleMeta {
    /// Module name, e.g. `"layer3.0-3.3"` or `"encoder.2"`.
    pub name: String,
    /// Total scalar parameters in the module.
    pub param_count: usize,
}

/// A trainable model exposed as an ordered list of freezable layer modules.
///
/// The contract mirrors what Egeria needs from `nn.Module` in the paper:
///
/// - modules are frozen strictly as a *prefix* (the frontmost active module
///   advances monotonically between unfreeze events),
/// - `train_step` computes forward + loss + backward but does **not** apply
///   an optimizer update (the trainer owns the optimizer), and it can
///   capture the output activation of one module (the forward hook used for
///   plasticity evaluation),
/// - `capture_activation` is a forward-only hook path used to run the
///   *reference* model on the same batch,
/// - `clone_boxed` produces an identical architecture with copied weights —
///   the snapshot that quantization turns into a reference model (§4.1.3).
pub trait Model: Send {
    /// Model name for reports, e.g. `"resnet56"`.
    fn name(&self) -> &str;

    /// The freezable layer modules, in forward order.
    fn modules(&self) -> Vec<ModuleMeta>;

    /// Current frozen-prefix length.
    fn frozen_prefix(&self) -> usize;

    /// Freezes exactly the first `k` modules (thawing any others).
    fn freeze_prefix(&mut self, k: usize) -> Result<()>;

    /// Unfreezes every module.
    fn unfreeze_all(&mut self);

    /// Forward + loss + backward on one batch.
    ///
    /// `capture` asks for the output activation of module index `capture`
    /// (after its forward). Backward stops at the frozen boundary.
    fn train_step(&mut self, batch: &Batch, capture: Option<usize>) -> Result<StepResult>;

    /// Whether [`Model::train_step_from`] supports resuming at the given
    /// frozen-prefix length (i.e. the prefix boundary carries a single
    /// activation tensor).
    fn supports_cached_fp(&self, _prefix: usize) -> bool {
        false
    }

    /// Train step that *skips the frozen prefix's forward pass*: resumes
    /// from `prefix_activation`, the cached output of module `prefix − 1`
    /// (§4.3 of the paper). `capture` follows the same semantics as
    /// [`Model::train_step`] but must address a module `≥ prefix`.
    ///
    /// The default implementation reports the capability as absent.
    fn train_step_from(
        &mut self,
        _batch: &Batch,
        _prefix: usize,
        _prefix_activation: &egeria_tensor::Tensor,
        _capture: Option<usize>,
    ) -> Result<StepResult> {
        Err(egeria_tensor::TensorError::Numerical(
            "cached-FP training is not supported by this model".into(),
        ))
    }

    /// Forward-only evaluation of one batch (loss + task metric).
    fn eval_batch(&mut self, batch: &Batch) -> Result<EvalResult>;

    /// Forward-only activation capture of one module (reference-model path;
    /// always runs in eval mode).
    fn capture_activation(&mut self, batch: &Batch, module: usize) -> Result<egeria_tensor::Tensor>;

    /// All parameters.
    fn params(&self) -> Vec<&Parameter>;

    /// All parameters, mutably (optimizer access).
    fn params_mut(&mut self) -> Vec<&mut Parameter>;

    /// Non-parameter state buffers (BatchNorm running statistics) in a
    /// stable architecture-defined order; empty for models without such
    /// state. Checkpoints must capture these: frozen BatchNorm layers
    /// normalize with running statistics even during training, so the
    /// training trajectory after a resume depends on them.
    fn state_buffers(&self) -> Vec<&egeria_tensor::Tensor> {
        Vec::new()
    }

    /// Mutable view of [`Model::state_buffers`] (checkpoint restore).
    fn state_buffers_mut(&mut self) -> Vec<&mut egeria_tensor::Tensor> {
        Vec::new()
    }

    /// Clears gradients.
    fn zero_grad(&mut self);

    /// Deep-copies the model (same architecture, copied weights).
    fn clone_boxed(&self) -> Box<dyn Model>;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Fraction of parameters still trainable (Figure 12's y-axis).
    fn active_param_fraction(&self) -> f32 {
        let mods = self.modules();
        let total: usize = mods.iter().map(|m| m.param_count).sum();
        if total == 0 {
            return 1.0;
        }
        let frozen: usize = mods
            .iter()
            .take(self.frozen_prefix())
            .map(|m| m.param_count)
            .sum();
        1.0 - frozen as f32 / total as f32
    }
}
