//! A generic vision model: a freezable [`Network`] plus a task head/loss.

use crate::input::{Batch, EvalResult, Input, StepResult, Targets};
use crate::model::{Model, ModuleMeta};
use egeria_nn::loss::{accuracy, cross_entropy};
use egeria_nn::{Mode, Network, Parameter};
use egeria_tensor::{Result, Tensor, TensorError};
use std::sync::Arc;

/// The supervised task a [`VisionModel`] solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisionTask {
    /// Image classification: logits `(n, k)` against per-sample classes.
    Classification,
    /// Semantic segmentation: logits `(n, k, h, w)` against per-pixel
    /// classes; the metric is mean IoU over classes.
    Segmentation,
}

/// A convolutional model assembled from freezable blocks.
///
/// `builder` reconstructs the architecture from scratch; [`Model::clone_boxed`]
/// uses it to deep-copy the model (rebuild + copy weights), which is how
/// reference-model snapshots are taken.
pub struct VisionModel {
    name: String,
    net: Network,
    task: VisionTask,
    classes: usize,
    builder: Arc<dyn Fn() -> Network + Send + Sync>,
}

impl VisionModel {
    /// Creates a vision model from a builder closure.
    pub fn new(
        name: impl Into<String>,
        task: VisionTask,
        classes: usize,
        builder: Arc<dyn Fn() -> Network + Send + Sync>,
    ) -> Self {
        VisionModel {
            name: name.into(),
            net: builder(),
            task,
            classes,
            builder,
        }
    }

    /// Direct access to the underlying network (tests and quantization).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn image_of(batch: &Batch) -> Result<&Tensor> {
        match &batch.input {
            Input::Image(t) => Ok(t),
            other => Err(TensorError::Numerical(format!(
                "vision model got non-image input with batch size {}",
                other.batch_size()
            ))),
        }
    }

    /// Flattens segmentation logits `(n, k, h, w)` into `(n·h·w, k)` rows.
    fn seg_rows(&self, logits: &Tensor) -> Result<Tensor> {
        logits.permute(&[0, 2, 3, 1])?.reshape(&[
            logits.numel() / self.classes,
            self.classes,
        ])
    }

    /// Inverse of [`Self::seg_rows`] for the gradient.
    fn seg_rows_inverse(&self, grad: &Tensor, logits_dims: &[usize]) -> Result<Tensor> {
        let (n, k, h, w) = (logits_dims[0], logits_dims[1], logits_dims[2], logits_dims[3]);
        grad.reshape(&[n, h, w, k])?.permute(&[0, 3, 1, 2])
    }

    fn loss_and_grad(&self, logits: &Tensor, targets: &Targets) -> Result<(f32, Tensor, f32)> {
        match (self.task, targets) {
            (VisionTask::Classification, Targets::Classes(ys)) => {
                let (loss, grad) = cross_entropy(logits, ys, 0.0)?;
                let acc = accuracy(logits, ys)?;
                Ok((loss, grad, acc))
            }
            (VisionTask::Segmentation, Targets::Pixels(ys)) => {
                let rows = self.seg_rows(logits)?;
                let (loss, grad_rows) = cross_entropy(&rows, ys, 0.0)?;
                let grad = self.seg_rows_inverse(&grad_rows, logits.dims())?;
                let miou = mean_iou(&rows, ys, self.classes)?;
                Ok((loss, grad, miou))
            }
            _ => Err(TensorError::Numerical(
                "target kind does not match vision task".into(),
            )),
        }
    }
}

/// Mean intersection-over-union over classes present in targets or
/// predictions.
pub fn mean_iou(logit_rows: &Tensor, targets: &[usize], classes: usize) -> Result<f32> {
    let preds = logit_rows.argmax_last()?;
    if preds.len() != targets.len() {
        return Err(TensorError::ShapeMismatch {
            op: "mean_iou",
            lhs: vec![preds.len()],
            rhs: vec![targets.len()],
        });
    }
    let mut inter = vec![0usize; classes];
    let mut union = vec![0usize; classes];
    for (&p, &t) in preds.iter().zip(targets.iter()) {
        if p == t {
            inter[t] += 1;
            union[t] += 1;
        } else {
            union[p.min(classes - 1)] += 1;
            union[t] += 1;
        }
    }
    let mut sum = 0.0f32;
    let mut seen = 0usize;
    for c in 0..classes {
        if union[c] > 0 {
            sum += inter[c] as f32 / union[c] as f32;
            seen += 1;
        }
    }
    Ok(if seen == 0 { 0.0 } else { sum / seen as f32 })
}

impl Model for VisionModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn modules(&self) -> Vec<ModuleMeta> {
        self.net
            .blocks()
            .iter()
            .map(|b| ModuleMeta {
                name: b.name.clone(),
                param_count: b.param_count(),
            })
            .collect()
    }

    fn frozen_prefix(&self) -> usize {
        self.net.frozen_prefix()
    }

    fn freeze_prefix(&mut self, k: usize) -> Result<()> {
        self.net.freeze_prefix(k)
    }

    fn unfreeze_all(&mut self) {
        self.net.unfreeze_all()
    }

    fn train_step(&mut self, batch: &Batch, capture: Option<usize>) -> Result<StepResult> {
        let x = Self::image_of(batch)?;
        let (logits, captured) = match capture {
            Some(idx) => {
                let (y, a) = self.net.forward_capture(x, Mode::Train, idx)?;
                (y, Some(a))
            }
            None => (self.net.forward(x, Mode::Train)?, None),
        };
        let (loss, grad, _) = self.loss_and_grad(&logits, &batch.targets)?;
        let ran = self.net.backward(&grad)?;
        Ok(StepResult {
            loss,
            captured,
            modules_backpropped: ran,
        })
    }

    fn supports_cached_fp(&self, prefix: usize) -> bool {
        prefix > 0 && prefix < self.net.num_blocks()
    }

    fn train_step_from(
        &mut self,
        batch: &Batch,
        prefix: usize,
        prefix_activation: &Tensor,
        capture: Option<usize>,
    ) -> Result<StepResult> {
        if !self.supports_cached_fp(prefix) {
            return Err(TensorError::AxisOutOfRange {
                axis: prefix,
                rank: self.net.num_blocks(),
            });
        }
        let mut cur = prefix_activation.clone();
        let mut captured = None;
        // Resume the forward pass at the first active block.
        for idx in prefix..self.net.num_blocks() {
            let block = self.net.block_mut(idx).expect("index in range");
            let m = if block.is_frozen() { Mode::Eval } else { Mode::Train };
            cur = block.layer_mut().forward(&cur, m)?;
            if capture == Some(idx) {
                captured = Some(cur.clone());
            }
        }
        let (loss, grad, _) = self.loss_and_grad(&cur, &batch.targets)?;
        let ran = self.net.backward(&grad)?;
        Ok(StepResult {
            loss,
            captured,
            modules_backpropped: ran,
        })
    }

    fn eval_batch(&mut self, batch: &Batch) -> Result<EvalResult> {
        let x = Self::image_of(batch)?;
        let logits = self.net.forward(x, Mode::Eval)?;
        let (loss, _, metric) = self.loss_and_grad(&logits, &batch.targets)?;
        Ok(EvalResult {
            loss,
            metric,
            count: batch.input.batch_size(),
        })
    }

    fn capture_activation(&mut self, batch: &Batch, module: usize) -> Result<Tensor> {
        let x = Self::image_of(batch)?;
        self.net.forward_until(x, Mode::Eval, module)
    }

    fn params(&self) -> Vec<&Parameter> {
        self.net.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.net.params_mut()
    }

    fn state_buffers(&self) -> Vec<&Tensor> {
        self.net.state_buffers()
    }

    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.net.state_buffers_mut()
    }

    fn zero_grad(&mut self) {
        self.net.zero_grad()
    }

    fn clone_boxed(&self) -> Box<dyn Model> {
        let mut copy = VisionModel {
            name: self.name.clone(),
            net: (self.builder)(),
            task: self.task,
            classes: self.classes,
            builder: Arc::clone(&self.builder),
        };
        copy.net
            .copy_params_from(&self.net)
            .expect("builder reproduces the architecture");
        copy.net
            .copy_running_stats_from(&self.net)
            .expect("builder reproduces the architecture");
        Box::new(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_iou_perfect_and_disjoint() {
        let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2]).unwrap();
        assert!((mean_iou(&logits, &[0, 1], 2).unwrap() - 1.0).abs() < 1e-6);
        assert_eq!(mean_iou(&logits, &[1, 0], 2).unwrap(), 0.0);
    }

    #[test]
    fn mean_iou_partial_overlap() {
        // Predictions: [0, 0, 1, 1]; targets: [0, 1, 1, 1].
        let logits = Tensor::from_vec(
            vec![5.0, 0.0, 5.0, 0.0, 0.0, 5.0, 0.0, 5.0],
            &[4, 2],
        )
        .unwrap();
        let iou = mean_iou(&logits, &[0, 1, 1, 1], 2).unwrap();
        // Class 0: inter 1, union 2 → 0.5; class 1: inter 2, union 3 → 2/3.
        assert!((iou - (0.5 + 2.0 / 3.0) / 2.0).abs() < 1e-5);
    }
}
