//! The LZ-class lossless codec of the chunk pipeline.
//!
//! A dependency-free LZSS with a single-slot hash table over 4-byte
//! prefixes and greedy parsing — chosen for decode simplicity and
//! deterministic output (no heuristics that depend on allocator state or
//! timing; identical input bytes always produce identical output bytes,
//! which the golden-run fingerprint relies on transitively).
//!
//! ## Wire format
//!
//! ```text
//! raw_len   u64 LE        (decompressed size, validated on decode)
//! tokens:
//!   ctrl 0x00..=0x7F      literal run of (ctrl + 1) bytes, verbatim
//!   ctrl 0x80..=0xFF      match: len = (ctrl & 0x7F) + MIN_MATCH,
//!                         followed by dist u16 LE (1..=65535, backwards)
//! ```
//!
//! Matches may overlap their own output (dist < len), RLE-style, and the
//! decoder copies byte-by-byte to honour that. Every token is bounds
//! checked against `raw_len` and the bytes produced so far; any violation
//! surfaces as [`TensorError::Corrupt`], never a panic — the store maps
//! that to chunk quarantine.

use egeria_tensor::{Result, TensorError};

/// Shortest match worth encoding (a token costs 3 bytes).
pub const MIN_MATCH: usize = 4;
/// Longest match one token can carry.
pub const MAX_MATCH: usize = MIN_MATCH + 0x7F;
/// Longest backwards distance (u16).
pub const MAX_DIST: usize = u16::MAX as usize;
/// Longest literal run one control byte can carry.
const MAX_LITERALS: usize = 0x80;

const HASH_BITS: u32 = 15;

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn push_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for run in lits.chunks(MAX_LITERALS) {
        out.push((run.len() - 1) as u8);
        out.extend_from_slice(run);
    }
}

/// Compresses `input`. Worst case (incompressible data) grows the buffer
/// by one control byte per 128 literals plus the 8-byte header.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    let n = input.len();
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..]);
        let cand = head[h] as usize;
        head[h] = i as u32;
        let dist = i.wrapping_sub(cand);
        if cand != u32::MAX as usize
            && (1..=MAX_DIST).contains(&dist)
            && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            let mut len = MIN_MATCH;
            let cap = (n - i).min(MAX_MATCH);
            while len < cap && input[cand + len] == input[i + len] {
                len += 1;
            }
            push_literals(&mut out, &input[lit_start..i]);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            // Seed the table across the matched span so the next match
            // can start anywhere inside it.
            let stop = (i + len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < stop {
                head[hash4(&input[j..])] = j as u32;
                j += 1;
            }
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    push_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompresses a buffer produced by [`compress`], validating the header
/// length, every token, and the final size.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 8 {
        return Err(TensorError::Corrupt("lz: buffer shorter than header".into()));
    }
    let raw_len = u64::from_le_bytes([
        data[0], data[1], data[2], data[3], data[4], data[5], data[6], data[7],
    ]) as usize;
    // A match token (3 bytes) yields at most MAX_MATCH bytes, a literal
    // token at most its own size; a header declaring more than the token
    // stream could possibly produce is corrupt — and must be rejected
    // *before* the allocation it would size.
    if raw_len > (data.len() - 8).saturating_mul(MAX_MATCH) {
        return Err(TensorError::Corrupt(format!(
            "lz: declared length {raw_len} impossible for {} token bytes",
            data.len() - 8
        )));
    }
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 8usize;
    while i < data.len() {
        let ctrl = data[i];
        i += 1;
        if ctrl < 0x80 {
            let run = ctrl as usize + 1;
            let end = i.checked_add(run).filter(|&e| e <= data.len()).ok_or_else(|| {
                TensorError::Corrupt("lz: literal run past end of buffer".into())
            })?;
            out.extend_from_slice(&data[i..end]);
            i = end;
        } else {
            let len = (ctrl & 0x7F) as usize + MIN_MATCH;
            if i + 2 > data.len() {
                return Err(TensorError::Corrupt("lz: truncated match token".into()));
            }
            let dist = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(TensorError::Corrupt(format!(
                    "lz: match distance {dist} exceeds {} produced bytes",
                    out.len()
                )));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return Err(TensorError::Corrupt(format!(
                "lz: output overran declared length {raw_len}"
            )));
        }
    }
    if out.len() != raw_len {
        return Err(TensorError::Corrupt(format!(
            "lz: produced {} bytes, header declares {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(&[]);
        round_trip(&[1]);
        round_trip(&[1, 2, 3]);
        round_trip(&[0; 4]);
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = vec![7u8; 4096];
        let c = compress(&data);
        assert!(c.len() < data.len() / 8, "RLE-ish input must compress hard");
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn mixed_patterns_round_trip() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(&(i % 37).to_le_bytes());
        }
        data.extend_from_slice(&[0u8; 300]);
        data.extend((0..255u8).cycle().take(1000));
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_survives() {
        // Xorshift noise: nothing to match, pure literal runs.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / MAX_LITERALS + 16);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_is_rle() {
        let mut data = vec![1u8, 2, 3, 4];
        data.extend(std::iter::repeat_n([1u8, 2, 3, 4], 50).flatten());
        round_trip(&data);
    }

    #[test]
    fn corrupt_buffers_error_not_panic() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0, 0, 0]).is_err());
        // Declared length 10 but no tokens.
        let mut buf = 10u64.to_le_bytes().to_vec();
        assert!(decompress(&buf).is_err());
        // Match referring before the start of the output.
        buf = 4u64.to_le_bytes().to_vec();
        buf.push(0x80);
        buf.extend_from_slice(&5u16.to_le_bytes());
        assert!(decompress(&buf).is_err());
        // Literal run past the end.
        buf = 4u64.to_le_bytes().to_vec();
        buf.push(0x7F);
        buf.push(1);
        assert!(decompress(&buf).is_err());
        // A valid compressed buffer with a flipped byte errors or
        // mismatches, never panics.
        let good = compress(&[9u8; 100]);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            let _ = decompress(&bad);
        }
    }
}
