//! The chunked, compressed, sharded activation store.
//!
//! [`ChunkStore`] owns a directory laid out as
//!
//! ```text
//! manifest.egm      CRC'd index (see `manifest`)
//! shard_00000.egs   append-only bag of encoded chunk blocks
//! shard_00001.egs   ...
//! ```
//!
//! Sample ids map onto a fixed grid: chunk `id / chunk_samples`, slot
//! `id % chunk_samples`, shard `chunk / chunks_per_shard`. Puts land in a
//! bounded dirty buffer of in-memory chunks; a flush encodes each dirty
//! chunk through the codec chain (merging slots already on disk), appends
//! it to its shard, and repoints the manifest. Rewritten extents become
//! garbage inside the shard until compaction folds the shard down to its
//! live chunks.
//!
//! Degradation contract (mirrors the flat cache, at chunk granularity):
//! a chunk that cannot be materialized — unreadable extent, CRC mismatch,
//! codec or block decode failure — is **quarantined**: its manifest entry
//! is dropped, `corrupt_chunks` counts one, its samples read as misses,
//! and nothing aborts. A corrupt manifest degrades the whole store to
//! empty the same way at open.
//!
//! Eviction: when live on-disk bytes exceed the configured cap, whole
//! chunks leave in least-recently-accessed order, driven by a logical
//! access clock (never wall-clock — reopening a store on another day must
//! not reorder evictions). A shard whose last live chunk leaves is
//! deleted outright.

use crate::chunk::ChunkBlock;
use crate::codec::{ByteCodec, StoreCodec, Transform};
use crate::manifest::{Manifest, ManifestEntry};
use crate::readers::{ExtentReq, ReaderPool};
use egeria_obs::Telemetry;
use egeria_tensor::serialize::crc32;
use egeria_tensor::{Result, Tensor, TensorError};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Store geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Codec chain applied to every chunk.
    pub codec: StoreCodec,
    /// Sample ids per grid cell.
    pub chunk_samples: u16,
    /// Grid cells per shard file.
    pub chunks_per_shard: u16,
    /// Live on-disk byte cap; `None` is unbounded.
    pub disk_cap_bytes: Option<u64>,
    /// Shard reader threads for multi-extent fetches.
    pub reader_threads: usize,
    /// Dirty chunks buffered before an automatic flush.
    pub dirty_chunk_cap: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            codec: StoreCodec::Lossless,
            chunk_samples: 64,
            chunks_per_shard: 16,
            disk_cap_bytes: None,
            reader_threads: 2,
            dirty_chunk_cap: 32,
        }
    }
}

/// Counters and level gauges, snapshotted by [`ChunkStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Chunk blocks written (initial writes and rewrites).
    pub chunks_written: u64,
    /// Pre-codec block bytes across all writes.
    pub bytes_raw: u64,
    /// Post-codec bytes across all writes (what hit the disk).
    pub bytes_encoded: u64,
    /// Chunk blocks read and decoded from shards.
    pub chunk_reads: u64,
    /// Multi-extent fetches served concurrently by the reader pool.
    pub coalesced_reads: u64,
    /// Chunks evicted by the capacity bound.
    pub evicted_chunks: u64,
    /// Encoded bytes those evictions released.
    pub evicted_bytes: u64,
    /// Chunks quarantined for corruption (plus 1 for a corrupt manifest).
    pub corrupt_chunks: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Chunk flushes that failed at the I/O layer.
    pub write_errors: u64,
    /// Live (referenced) on-disk bytes right now.
    pub live_bytes: u64,
    /// Shard files right now.
    pub shard_files: u64,
}

impl StoreStats {
    /// Compression ratio achieved so far (raw / encoded); 1.0 when nothing
    /// has been written.
    pub fn codec_ratio(&self) -> f64 {
        if self.bytes_encoded == 0 {
            1.0
        } else {
            self.bytes_raw as f64 / self.bytes_encoded as f64
        }
    }
}

/// What a flush did; failures are counts, not errors (training goes on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Chunks successfully written.
    pub written: usize,
    /// Chunks dropped because their shard append failed.
    pub failed: usize,
}

/// Compact a shard once garbage exceeds live bytes and the file is at
/// least this large.
const COMPACT_MIN_BYTES: u64 = 4096;
/// Decoded chunk blocks kept hot for repeated slot lookups.
const BLOCK_CACHE_CAP: usize = 8;

/// The store. Not internally locked: callers (the activation cache)
/// already serialize access behind their own mutex.
pub struct ChunkStore {
    dir: PathBuf,
    cfg: StoreConfig,
    transform: Transform,
    byte_codec: ByteCodec,
    manifest: Manifest,
    /// chunk id → slot → encoded record; unflushed writes.
    dirty: BTreeMap<u64, BTreeMap<u16, Vec<u8>>>,
    /// Small LRU of decoded blocks (chunk id, slot → record).
    block_cache: Vec<(u64, BTreeMap<u16, Vec<u8>>)>,
    readers: ReaderPool,
    stats: StoreStats,
    telemetry: Telemetry,
    /// Whether open found a manifest it had to throw away.
    recovered_corrupt_manifest: bool,
}

impl ChunkStore {
    /// Opens (or creates) a store rooted at `dir`.
    ///
    /// A readable manifest whose codec/grid matches `cfg` is adopted, so
    /// chunks survive a reopen. A mismatched manifest wipes the store
    /// (a config change, not corruption); a corrupt manifest wipes it too
    /// *and* counts one `corrupt_chunks` — the degraded-open row of the
    /// degradation matrix.
    pub fn open(dir: impl Into<PathBuf>, cfg: StoreConfig) -> Result<ChunkStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (transform, byte_codec) = cfg.codec.stages();
        let chunk_samples = cfg.chunk_samples.max(1);
        let chunks_per_shard = cfg.chunks_per_shard.max(1);
        let mut recovered = false;
        let manifest = match Manifest::load(&dir) {
            Ok(Some(m))
                if m.codec == cfg.codec
                    && m.chunk_samples == chunk_samples
                    && m.chunks_per_shard == chunks_per_shard =>
            {
                m
            }
            Ok(Some(_)) => {
                // Config changed: the old blocks are undecodable under the
                // new chain. Start over.
                wipe_dir(&dir);
                Manifest::empty(cfg.codec, chunk_samples, chunks_per_shard)
            }
            Ok(None) => Manifest::empty(cfg.codec, chunk_samples, chunks_per_shard),
            Err(e) => {
                eprintln!("egeria: corrupt store manifest ({e}); starting empty");
                recovered = true;
                wipe_dir(&dir);
                Manifest::empty(cfg.codec, chunk_samples, chunks_per_shard)
            }
        };
        let mut store = ChunkStore {
            dir,
            cfg: StoreConfig {
                chunk_samples,
                chunks_per_shard,
                ..cfg
            },
            transform,
            byte_codec,
            manifest,
            dirty: BTreeMap::new(),
            block_cache: Vec::new(),
            readers: ReaderPool::new(cfg.reader_threads),
            stats: StoreStats::default(),
            telemetry: Telemetry::disabled(),
            recovered_corrupt_manifest: recovered,
        };
        if recovered {
            store.count_corrupt_chunk();
        }
        store.sync_level_stats();
        Ok(store)
    }

    /// Attaches a telemetry handle; store counters use the `store.`
    /// prefix (`store.chunks_written`, `store.bytes_raw`,
    /// `store.bytes_encoded`, `store.chunk_reads`,
    /// `store.coalesced_reads`, `store.evicted_chunks`,
    /// `store.evicted_bytes`, `store.corrupt_chunks`,
    /// `store.compactions`, `store.write_errors`).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether open had to discard a corrupt manifest.
    pub fn recovered_corrupt_manifest(&self) -> bool {
        self.recovered_corrupt_manifest
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Frozen-prefix tag persisted in the manifest.
    pub fn valid_prefix(&self) -> Option<u64> {
        self.manifest.valid_prefix
    }

    /// Sets the frozen-prefix tag (persisted at the next manifest save).
    pub fn set_valid_prefix(&mut self, prefix: Option<u64>) {
        self.manifest.valid_prefix = prefix;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn chunk_of(&self, id: u64) -> u64 {
        id / self.cfg.chunk_samples as u64
    }

    fn slot_of(&self, id: u64) -> u16 {
        (id % self.cfg.chunk_samples as u64) as u16
    }

    fn shard_of(&self, chunk: u64) -> u32 {
        (chunk / self.cfg.chunks_per_shard as u64) as u32
    }

    fn shard_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard_{shard:05}.egs"))
    }

    fn tick(&mut self) -> u64 {
        self.manifest.clock += 1;
        self.manifest.clock
    }

    /// Stores one sample tensor. Sits in the dirty buffer until a flush;
    /// an overfull buffer flushes automatically.
    pub fn put(&mut self, id: u64, t: &Tensor) -> Result<()> {
        let rec = self.transform.encode_sample(t)?;
        let chunk = self.chunk_of(id);
        let slot = self.slot_of(id);
        self.dirty.entry(chunk).or_default().insert(slot, rec);
        // The on-disk copy (if any) is stale for this slot now.
        self.block_cache.retain(|(c, _)| *c != chunk);
        if self.dirty.len() > self.cfg.dirty_chunk_cap {
            self.flush();
        }
        Ok(())
    }

    /// Fetches one sample; `None` on a miss. A chunk that fails to
    /// materialize is quarantined (visible in `corrupt_chunks`) and its
    /// samples read as misses.
    pub fn get(&mut self, id: u64) -> Option<Tensor> {
        let chunk = self.chunk_of(id);
        let slot = self.slot_of(id);
        if let Some(rec) = self.dirty.get(&chunk).and_then(|slots| slots.get(&slot)) {
            let rec = rec.clone();
            return self.decode_record(chunk, &rec);
        }
        let slots = self.materialize_chunk(chunk)?;
        let rec = slots.get(&slot)?.clone();
        self.touch(chunk);
        self.decode_record(chunk, &rec)
    }

    /// Fetches many samples at once; extents from distinct chunks are read
    /// concurrently through the reader pool. Results are in request
    /// order, `None` per missing sample.
    pub fn get_many(&mut self, ids: &[u64]) -> Vec<Option<Tensor>> {
        // Which chunks must come off disk?
        let mut need: Vec<u64> = Vec::new();
        for &id in ids {
            let chunk = self.chunk_of(id);
            let slot = self.slot_of(id);
            let in_dirty = self
                .dirty
                .get(&chunk)
                .is_some_and(|slots| slots.contains_key(&slot));
            let cached = self.block_cache.iter().any(|(c, _)| *c == chunk);
            if !in_dirty && !cached && self.manifest.chunks.contains_key(&chunk) && !need.contains(&chunk)
            {
                need.push(chunk);
            }
        }
        need.sort_unstable();
        if need.len() > 1 {
            let reqs: Vec<ExtentReq> = need
                .iter()
                .map(|&chunk| {
                    let e = &self.manifest.chunks[&chunk];
                    ExtentReq {
                        path: self.shard_path(e.shard),
                        offset: e.offset,
                        len: e.len,
                    }
                })
                .collect();
            self.stats.coalesced_reads += 1;
            self.telemetry.counter("store.coalesced_reads").inc();
            let fetched = self.readers.read_extents(reqs);
            for (&chunk, bytes) in need.iter().zip(fetched) {
                match bytes.and_then(|b| self.validate_block(chunk, &b)) {
                    Ok(slots) => self.cache_block(chunk, slots),
                    Err(e) => self.quarantine_chunk(chunk, &e),
                }
            }
        }
        // Assemble in request order; single-chunk loads (or reloads after
        // an eviction from the tiny block cache) go through `get`.
        ids.iter().map(|&id| self.get(id)).collect()
    }

    /// Removes specific samples (the shape-audit quarantine path): their
    /// chunks are read back, the slots dropped, and the chunks rewritten,
    /// so innocent neighbours survive.
    pub fn delete_samples(&mut self, ids: &[u64]) {
        let mut by_chunk: BTreeMap<u64, Vec<u16>> = BTreeMap::new();
        for &id in ids {
            by_chunk.entry(self.chunk_of(id)).or_default().push(self.slot_of(id));
        }
        for (chunk, slots) in by_chunk {
            if let Some(dirty) = self.dirty.get_mut(&chunk) {
                for s in &slots {
                    dirty.remove(s);
                }
                if dirty.is_empty() {
                    self.dirty.remove(&chunk);
                }
            }
            if self.manifest.chunks.contains_key(&chunk) {
                // A `None` materialize means the chunk was already
                // quarantined; nothing to re-stage.
                if let Some(mut block_slots) = self.materialize_chunk(chunk) {
                    for s in &slots {
                        block_slots.remove(s);
                    }
                    self.drop_entry(chunk);
                    if !block_slots.is_empty() {
                        // Re-stage the survivors; next flush rewrites.
                        self.dirty.insert(chunk, block_slots);
                    }
                }
            }
            self.block_cache.retain(|(c, _)| *c != chunk);
        }
        self.sync_level_stats();
    }

    /// Drops everything: dirty buffer, manifest, every file in the store
    /// directory. The unfreeze-path invalidation lands here.
    pub fn clear(&mut self) {
        self.dirty.clear();
        self.block_cache.clear();
        wipe_dir(&self.dir);
        self.manifest = Manifest::empty(
            self.cfg.codec,
            self.cfg.chunk_samples,
            self.cfg.chunks_per_shard,
        );
        self.sync_level_stats();
    }

    /// Writes every dirty chunk to its shard. I/O failures drop the chunk
    /// (counted, stderr-noted) rather than erroring — the activation is
    /// still memory-resident upstream and a later lookup just misses.
    /// Enforces the disk cap and compacts garbage-heavy shards after.
    pub fn flush(&mut self) -> FlushOutcome {
        let mut outcome = FlushOutcome::default();
        let dirty = std::mem::take(&mut self.dirty);
        for (chunk, mut slots) in dirty {
            // Merge slots already on disk (dirty wins on conflict).
            if self.manifest.chunks.contains_key(&chunk) {
                if let Some(existing) = self.materialize_chunk(chunk) {
                    for (slot, rec) in existing {
                        slots.entry(slot).or_insert(rec);
                    }
                }
                self.drop_entry(chunk);
            }
            match self.write_chunk(chunk, &slots) {
                Ok(()) => {
                    outcome.written += 1;
                    self.cache_block(chunk, slots);
                }
                Err(e) => {
                    if outcome.failed == 0 {
                        eprintln!("egeria: store flush failed for chunk {chunk} ({e}); dropping");
                    }
                    outcome.failed += 1;
                    self.stats.write_errors += 1;
                    self.telemetry.counter("store.write_errors").inc();
                }
            }
        }
        self.enforce_cap();
        self.compact_garbage();
        self.sync_level_stats();
        outcome
    }

    /// Flushes and saves the manifest: the store's checkpoint boundary.
    pub fn persist(&mut self) -> Result<FlushOutcome> {
        let outcome = self.flush();
        self.manifest.save(&self.dir)?;
        Ok(outcome)
    }

    // ---- internals --------------------------------------------------------

    fn decode_record(&mut self, chunk: u64, rec: &[u8]) -> Option<Tensor> {
        match self.transform.decode_sample(rec) {
            Ok(t) => Some(t),
            Err(e) => {
                // A record that fails to decode despite a good CRC means
                // the chunk can't be trusted; quarantine it whole.
                self.quarantine_chunk(chunk, &e);
                None
            }
        }
    }

    /// Returns the chunk's slot map from the block cache or disk; `None`
    /// when absent or quarantined-just-now.
    fn materialize_chunk(&mut self, chunk: u64) -> Option<BTreeMap<u16, Vec<u8>>> {
        if let Some((_, slots)) = self.block_cache.iter().find(|(c, _)| *c == chunk) {
            return Some(slots.clone());
        }
        let entry = *self.manifest.chunks.get(&chunk)?;
        let req = ExtentReq {
            path: self.shard_path(entry.shard),
            offset: entry.offset,
            len: entry.len,
        };
        let loaded = crate::readers::read_one(&req).and_then(|b| self.validate_block(chunk, &b));
        match loaded {
            Ok(slots) => {
                self.cache_block(chunk, slots.clone());
                Some(slots)
            }
            Err(e) => {
                self.quarantine_chunk(chunk, &e);
                None
            }
        }
    }

    /// CRC-checks and decodes an encoded block fetched for `chunk`.
    fn validate_block(&mut self, chunk: u64, encoded: &[u8]) -> Result<BTreeMap<u16, Vec<u8>>> {
        let entry = self
            .manifest
            .chunks
            .get(&chunk)
            .ok_or_else(|| TensorError::Corrupt(format!("store: chunk {chunk} vanished")))?;
        let actual = crc32(encoded);
        if actual != entry.crc {
            return Err(TensorError::Corrupt(format!(
                "store: chunk {chunk} crc mismatch (stored {:#010x}, computed {actual:#010x})",
                entry.crc
            )));
        }
        let raw = self.byte_codec.decode(encoded)?;
        let block = ChunkBlock::decode(&raw)?;
        let base = chunk * self.cfg.chunk_samples as u64;
        if block.base_id != base
            || block.chunk_samples != self.cfg.chunk_samples
            || block.transform != self.transform
        {
            return Err(TensorError::Corrupt(format!(
                "store: chunk {chunk} block header disagrees with the grid"
            )));
        }
        self.stats.chunk_reads += 1;
        self.telemetry.counter("store.chunk_reads").inc();
        Ok(block.records)
    }

    fn cache_block(&mut self, chunk: u64, slots: BTreeMap<u16, Vec<u8>>) {
        self.block_cache.retain(|(c, _)| *c != chunk);
        self.block_cache.push((chunk, slots));
        if self.block_cache.len() > BLOCK_CACHE_CAP {
            self.block_cache.remove(0);
        }
    }

    fn touch(&mut self, chunk: u64) {
        let tick = self.tick();
        if let Some(e) = self.manifest.chunks.get_mut(&chunk) {
            e.last_access = tick;
        }
    }

    /// Encodes and appends one chunk block, then repoints the manifest.
    fn write_chunk(&mut self, chunk: u64, slots: &BTreeMap<u16, Vec<u8>>) -> Result<()> {
        let block = ChunkBlock {
            transform: self.transform,
            base_id: chunk * self.cfg.chunk_samples as u64,
            chunk_samples: self.cfg.chunk_samples,
            records: slots.clone(),
        };
        let raw = block.encode();
        let encoded = self.byte_codec.encode(&raw);
        let crc = crc32(&encoded);
        let shard = self.shard_of(chunk);
        let offset = self.manifest.shard_lens.get(&shard).copied().unwrap_or(0);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.shard_path(shard))?;
        f.write_all(&encoded)?;
        let tick = self.tick();
        self.manifest.shard_lens.insert(shard, offset + encoded.len() as u64);
        self.manifest.chunks.insert(
            chunk,
            ManifestEntry {
                shard,
                offset,
                len: encoded.len() as u32,
                raw_len: raw.len() as u32,
                crc,
                samples: slots.len() as u16,
                last_access: tick,
            },
        );
        self.stats.chunks_written += 1;
        self.stats.bytes_raw += raw.len() as u64;
        self.stats.bytes_encoded += encoded.len() as u64;
        self.telemetry.counter("store.chunks_written").inc();
        self.telemetry.counter("store.bytes_raw").add(raw.len() as u64);
        self.telemetry.counter("store.bytes_encoded").add(encoded.len() as u64);
        Ok(())
    }

    fn count_corrupt_chunk(&mut self) {
        self.stats.corrupt_chunks += 1;
        self.telemetry.counter("store.corrupt_chunks").inc();
    }

    /// Drops a chunk that failed to materialize. Its samples are gone
    /// (miss + recompute upstream); neighbours in other chunks are not.
    fn quarantine_chunk(&mut self, chunk: u64, why: &TensorError) {
        eprintln!("egeria: quarantining store chunk {chunk} ({why})");
        self.drop_entry(chunk);
        self.block_cache.retain(|(c, _)| *c != chunk);
        self.count_corrupt_chunk();
        self.sync_level_stats();
    }

    /// Removes a manifest entry, deleting its shard file if nothing live
    /// remains inside.
    fn drop_entry(&mut self, chunk: u64) {
        if let Some(e) = self.manifest.chunks.remove(&chunk) {
            if self.manifest.shard_live_bytes(e.shard) == 0 {
                let _ = std::fs::remove_file(self.shard_path(e.shard));
                self.manifest.shard_lens.remove(&e.shard);
            }
        }
    }

    /// LRU eviction down to the configured live-byte cap.
    fn enforce_cap(&mut self) {
        let Some(cap) = self.cfg.disk_cap_bytes else {
            return;
        };
        let mut live = self.manifest.live_bytes();
        while live > cap {
            // Oldest logical access wins; chunk id breaks ties so the
            // order is total and deterministic.
            let Some((&victim, entry)) = self
                .manifest
                .chunks
                .iter()
                .min_by_key(|(id, e)| (e.last_access, **id))
            else {
                break;
            };
            let freed = entry.len as u64;
            self.drop_entry(victim);
            self.block_cache.retain(|(c, _)| *c != victim);
            live -= freed;
            self.stats.evicted_chunks += 1;
            self.stats.evicted_bytes += freed;
            self.telemetry.counter("store.evicted_chunks").inc();
            self.telemetry.counter("store.evicted_bytes").add(freed);
        }
    }

    /// Rewrites shards whose garbage outweighs their live bytes.
    fn compact_garbage(&mut self) {
        let shards: Vec<u32> = self.manifest.shard_lens.keys().copied().collect();
        for shard in shards {
            let total = self.manifest.shard_lens[&shard];
            let live = self.manifest.shard_live_bytes(shard);
            if total < COMPACT_MIN_BYTES || total - live <= live {
                continue;
            }
            if let Err(e) = self.compact_shard(shard) {
                // Compaction is an optimization; a failure leaves the
                // shard as it was.
                eprintln!("egeria: shard {shard} compaction failed ({e}); keeping as-is");
            }
        }
    }

    fn compact_shard(&mut self, shard: u32) -> Result<()> {
        let chunks: Vec<u64> = self
            .manifest
            .chunks
            .iter()
            .filter(|(_, e)| e.shard == shard)
            .map(|(&c, _)| c)
            .collect();
        // Pull the encoded extents (already validated by CRC below).
        let mut keep: Vec<(u64, Vec<u8>)> = Vec::with_capacity(chunks.len());
        for &chunk in &chunks {
            let e = self.manifest.chunks[&chunk];
            let bytes = crate::readers::read_one(&ExtentReq {
                path: self.shard_path(shard),
                offset: e.offset,
                len: e.len,
            })?;
            if crc32(&bytes) != e.crc {
                self.quarantine_chunk(chunk, &TensorError::Corrupt("crc mismatch during compaction".into()));
                continue;
            }
            keep.push((chunk, bytes));
        }
        let tmp = self.dir.join(format!("shard_{shard:05}.egs.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        let mut offset = 0u64;
        let mut new_offsets: Vec<(u64, u64)> = Vec::with_capacity(keep.len());
        for (chunk, bytes) in &keep {
            f.write_all(bytes)?;
            new_offsets.push((*chunk, offset));
            offset += bytes.len() as u64;
        }
        drop(f);
        if keep.is_empty() {
            let _ = std::fs::remove_file(&tmp);
            let _ = std::fs::remove_file(self.shard_path(shard));
            self.manifest.shard_lens.remove(&shard);
            return Ok(());
        }
        std::fs::rename(&tmp, self.shard_path(shard))?;
        for (chunk, off) in new_offsets {
            if let Some(e) = self.manifest.chunks.get_mut(&chunk) {
                e.offset = off;
            }
        }
        self.manifest.shard_lens.insert(shard, offset);
        self.stats.compactions += 1;
        self.telemetry.counter("store.compactions").inc();
        Ok(())
    }

    fn sync_level_stats(&mut self) {
        self.stats.live_bytes = self.manifest.live_bytes();
        self.stats.shard_files = self.manifest.shard_lens.len() as u64;
        self.telemetry.gauge("store.live_bytes").set(self.stats.live_bytes as f64);
        self.telemetry.gauge("store.shard_files").set(self.stats.shard_files as f64);
    }
}

/// Deletes every regular file directly inside `dir` (shards, manifest).
fn wipe_dir(dir: &Path) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MANIFEST_FILE;
    use egeria_tensor::Rng;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("egeria-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            chunk_samples: 4,
            chunks_per_shard: 2,
            dirty_chunk_cap: 64,
            ..StoreConfig::default()
        }
    }

    fn sample(seed: u64) -> Tensor {
        let mut rng = Rng::new(seed);
        Tensor::randn(&[1, 6], &mut rng)
    }

    #[test]
    fn put_get_round_trips_across_flush() {
        let mut s = ChunkStore::open(tmp_dir("rt"), small_cfg()).unwrap();
        let tensors: Vec<Tensor> = (0..10).map(sample).collect();
        for (i, t) in tensors.iter().enumerate() {
            s.put(i as u64, t).unwrap();
        }
        // Served from the dirty buffer before any flush.
        assert_eq!(s.get(3).unwrap(), tensors[3]);
        s.flush();
        assert!(s.dirty.is_empty());
        for (i, t) in tensors.iter().enumerate() {
            assert_eq!(s.get(i as u64).as_ref(), Some(t), "id {i}");
        }
        assert!(s.get(99).is_none());
        assert!(s.stats().live_bytes > 0);
    }

    #[test]
    fn lossless_survives_reopen() {
        let dir = tmp_dir("reopen");
        let t = sample(7);
        {
            let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
            s.put(5, &t).unwrap();
            s.persist().unwrap();
        }
        let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
        assert!(!s.recovered_corrupt_manifest());
        let got = s.get(5).unwrap();
        assert_eq!(got.dims(), t.dims());
        for (a, b) in got.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn config_change_wipes_instead_of_misreading() {
        let dir = tmp_dir("cfgchange");
        {
            let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
            s.put(1, &sample(1)).unwrap();
            s.persist().unwrap();
        }
        let mut s = ChunkStore::open(
            &dir,
            StoreConfig {
                codec: StoreCodec::Int8,
                ..small_cfg()
            },
        )
        .unwrap();
        assert!(s.get(1).is_none());
        assert_eq!(s.stats().corrupt_chunks, 0, "a config change is not corruption");
    }

    #[test]
    fn merge_rewrite_keeps_older_slots() {
        let mut s = ChunkStore::open(tmp_dir("merge"), small_cfg()).unwrap();
        let a = sample(1);
        let b = sample(2);
        s.put(0, &a).unwrap();
        s.flush();
        s.put(1, &b).unwrap(); // same chunk, different slot
        s.flush();
        assert_eq!(s.get(0).unwrap(), a, "slot 0 must survive the rewrite");
        assert_eq!(s.get(1).unwrap(), b);
    }

    #[test]
    fn eviction_respects_cap_and_lru_order() {
        let mut s = ChunkStore::open(
            tmp_dir("evict"),
            StoreConfig {
                disk_cap_bytes: Some(1), // everything must go
                ..small_cfg()
            },
        )
        .unwrap();
        for i in 0..8u64 {
            s.put(i, &sample(i)).unwrap();
        }
        s.flush();
        let st = s.stats();
        assert_eq!(st.live_bytes, 0, "cap of 1 byte evicts every chunk");
        assert!(st.evicted_chunks >= 2);
        assert!(st.evicted_bytes > 0);
        assert_eq!(st.shard_files, 0, "empty shards are deleted");
        assert!(s.get(0).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_touched_first() {
        let mut s = ChunkStore::open(tmp_dir("lru"), small_cfg()).unwrap();
        for i in 0..8u64 {
            s.put(i, &sample(i)).unwrap();
        }
        s.flush(); // chunks 0 and 1 exist
        let _ = s.get(1); // touch chunk 0's sibling? id 1 is chunk 0
        let _ = s.get(6); // chunk 1
        let _ = s.get(2); // chunk 0 — now chunk 0 is the most recent
        let live = s.manifest.live_bytes();
        s.cfg.disk_cap_bytes = Some(live - 1); // force exactly one eviction
        s.enforce_cap();
        assert!(s.get(6).is_none(), "chunk 1 (older access) must be evicted");
        assert!(s.get(2).is_some(), "chunk 0 (newer access) must survive");
    }

    #[test]
    fn corrupt_shard_quarantines_only_its_chunk() {
        let dir = tmp_dir("corruptshard");
        let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
        for i in 0..8u64 {
            s.put(i, &sample(i)).unwrap(); // chunks 0,1 → shard 0
        }
        s.put(100, &sample(100)).unwrap(); // chunk 25 → shard 12
        s.flush();
        // Flip a byte in chunk 0's extent.
        let e0 = s.manifest.chunks[&0];
        let path = s.shard_path(e0.shard);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[e0.offset as usize + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        s.block_cache.clear();
        assert!(s.get(0).is_none(), "corrupt chunk reads as a miss");
        assert_eq!(s.stats().corrupt_chunks, 1);
        // Sibling chunk in the same shard and the other shard both live.
        assert!(s.get(5).is_some(), "chunk 1 shares the shard and survives");
        assert!(s.get(100).is_some(), "other shard untouched");
        // The same miss again does not double-count: the entry is gone.
        assert!(s.get(0).is_none());
        assert_eq!(s.stats().corrupt_chunks, 1);
    }

    #[test]
    fn truncated_shard_quarantines_on_read() {
        let dir = tmp_dir("truncshard");
        let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
        for i in 0..8u64 {
            s.put(i, &sample(i)).unwrap();
        }
        s.flush();
        let e1 = s.manifest.chunks[&1];
        let path = s.shard_path(e1.shard);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..e1.offset as usize + 2]).unwrap();
        s.block_cache.clear();
        assert!(s.get(5).is_none(), "chunk 1 extends past the truncation");
        assert_eq!(s.stats().corrupt_chunks, 1);
    }

    #[test]
    fn corrupt_manifest_degrades_to_empty_store() {
        let dir = tmp_dir("corruptmanifest");
        {
            let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
            s.put(1, &sample(1)).unwrap();
            s.persist().unwrap();
        }
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
        assert!(s.recovered_corrupt_manifest());
        assert_eq!(s.stats().corrupt_chunks, 1, "degraded open counts once");
        assert!(s.get(1).is_none());
        // The store still works after the degraded open.
        s.put(1, &sample(1)).unwrap();
        s.persist().unwrap();
        assert!(s.get(1).is_some());
    }

    #[test]
    fn delete_samples_spares_neighbours() {
        let mut s = ChunkStore::open(tmp_dir("delsample"), small_cfg()).unwrap();
        for i in 0..4u64 {
            s.put(i, &sample(i)).unwrap(); // all in chunk 0
        }
        s.flush();
        s.delete_samples(&[1, 2]);
        s.flush();
        assert!(s.get(1).is_none());
        assert!(s.get(2).is_none());
        assert!(s.get(0).is_some(), "neighbour slots survive");
        assert!(s.get(3).is_some());
        assert_eq!(s.stats().corrupt_chunks, 0, "precise delete is not corruption");
    }

    #[test]
    fn clear_wipes_disk_and_state() {
        let dir = tmp_dir("clear");
        let mut s = ChunkStore::open(&dir, small_cfg()).unwrap();
        for i in 0..8u64 {
            s.put(i, &sample(i)).unwrap();
        }
        s.persist().unwrap();
        assert!(s.stats().live_bytes > 0);
        s.clear();
        assert_eq!(s.stats().live_bytes, 0);
        assert_eq!(s.stats().shard_files, 0);
        assert!(s.get(0).is_none());
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
        assert!(leftovers.is_empty(), "no files may survive a clear");
    }

    #[test]
    fn get_many_coalesces_multi_shard_reads() {
        let mut s = ChunkStore::open(tmp_dir("coalesce"), small_cfg()).unwrap();
        let ids: Vec<u64> = vec![0, 9, 17, 33]; // four distinct chunks
        for &id in &ids {
            s.put(id, &sample(id)).unwrap();
        }
        s.flush();
        s.block_cache.clear();
        let got = s.get_many(&ids);
        assert!(got.iter().all(|g| g.is_some()));
        assert_eq!(s.stats().coalesced_reads, 1);
        // Request order is preserved.
        for (g, &id) in got.iter().zip(&ids) {
            assert_eq!(g.as_ref().unwrap(), &sample(id));
        }
        let missing = s.get_many(&[500, 501]);
        assert!(missing.iter().all(|g| g.is_none()));
    }

    #[test]
    fn compaction_folds_garbage_heavy_shards() {
        let mut s = ChunkStore::open(tmp_dir("compact"), small_cfg()).unwrap();
        // Chunk 1 stays put while chunk 0 (same shard) is rewritten over
        // and over: every rewrite strands chunk 0's previous extent as
        // garbage in shard 0. (A shard whose *only* chunk is rewritten
        // self-cleans — the file is deleted and recreated — so garbage
        // only builds next to a live neighbour.)
        for slot in 4..8u64 {
            s.put(slot, &sample(slot)).unwrap();
        }
        for round in 0..30u64 {
            for slot in 0..4u64 {
                s.put(slot, &sample(round * 4 + slot)).unwrap();
            }
            s.flush();
        }
        let st = s.stats();
        assert!(st.compactions >= 1, "garbage must trigger compaction");
        let total: u64 = s.manifest.shard_lens.values().sum();
        let live = s.manifest.live_bytes();
        // Per shard, garbage is either ≤ live bytes or under the
        // COMPACT_MIN_BYTES floor that makes tiny shards not worth it.
        assert!(
            total <= live * 2 + COMPACT_MIN_BYTES,
            "post-compaction garbage stays bounded (total {total}, live {live})"
        );
        // Data still reads back.
        for slot in 0..4u64 {
            assert_eq!(s.get(slot).unwrap(), sample(29 * 4 + slot));
        }
    }

    #[test]
    fn file_count_stays_bounded() {
        let mut s = ChunkStore::open(tmp_dir("files"), StoreConfig::default()).unwrap();
        for i in 0..1000u64 {
            s.put(i, &sample(i)).unwrap();
        }
        s.persist().unwrap();
        // 1000 samples / 64 per chunk / 16 chunks per shard → 1 shard.
        assert_eq!(s.stats().shard_files, 1);
        let files = std::fs::read_dir(&s.dir).unwrap().flatten().count();
        assert!(files <= 2, "shard + manifest only, got {files}");
    }

    #[test]
    fn codec_ratio_tracks_raw_vs_encoded() {
        let mut s = ChunkStore::open(tmp_dir("ratio"), small_cfg()).unwrap();
        // Constant tensors compress extremely well.
        for i in 0..16u64 {
            s.put(i, &Tensor::ones(&[1, 64])).unwrap();
        }
        s.flush();
        let st = s.stats();
        assert!(st.bytes_raw > st.bytes_encoded);
        assert!(st.codec_ratio() > 2.0, "ratio {}", st.codec_ratio());
    }
}
