//! The concurrent shard reader pool.
//!
//! A chunked lookup that misses memory may need extents from several
//! shard files at once (a shuffled batch of 32 ids can straddle a handful
//! of chunks). Reading them sequentially serializes on disk latency; the
//! pool fans the extent reads across a few worker threads instead, which
//! is what lets the existing prefetcher hide chunk decode + I/O behind
//! compute in chunked mode just as it hides flat-file reads today.
//!
//! Determinism: workers race on I/O only. Results are slotted back by
//! request index, so the caller always sees them in request order no
//! matter which worker finished first, and a read failure is a value
//! (`Err` in that slot), never a panic — the store maps it to chunk
//! quarantine. Workers hold no store state; they turn `(path, offset,
//! len)` into bytes and nothing else.

use crossbeam::channel::{bounded, Receiver, Sender};
use egeria_tensor::{Result, TensorError};
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// One extent to fetch.
#[derive(Debug, Clone)]
pub struct ExtentReq {
    /// Shard file to read from.
    pub path: PathBuf,
    /// Byte offset of the extent.
    pub offset: u64,
    /// Extent length in bytes.
    pub len: u32,
}

struct Job {
    index: usize,
    req: ExtentReq,
    done: mpsc::Sender<(usize, Result<Vec<u8>>)>,
}

/// A fixed pool of shard reader threads.
pub struct ReaderPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReaderPool {
    /// Spawns `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ReaderPool {
        let threads = threads.max(1);
        let (tx, rx) = bounded::<Job>(threads * 4);
        let workers = (0..threads)
            .map(|_| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let out = read_extent(&job.req);
                        // The requester may have given up (its receiver
                        // dropped); that is not the worker's problem.
                        let _ = job.done.send((job.index, out));
                    }
                })
            })
            .collect();
        ReaderPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Fetches every extent, returning results in request order. Failures
    /// come back as per-slot `Err`s so one bad shard never hides the
    /// others.
    pub fn read_extents(&self, reqs: Vec<ExtentReq>) -> Vec<Result<Vec<u8>>> {
        let n = reqs.len();
        if n == 0 {
            return Vec::new();
        }
        // A single extent is not worth a thread handoff.
        if n == 1 {
            return vec![read_extent(&reqs[0])];
        }
        let (done_tx, done_rx) = mpsc::channel();
        let tx = self.tx.as_ref().expect("reader pool already shut down");
        for (index, req) in reqs.into_iter().enumerate() {
            let job = Job {
                index,
                req,
                done: done_tx.clone(),
            };
            if let Err(e) = tx.send(job) {
                // Channel closed mid-shutdown: fail this slot inline.
                let _ = done_tx.send((
                    e.0.index,
                    Err(TensorError::Io("reader pool shut down".into())),
                ));
            }
        }
        drop(done_tx);
        let mut out: Vec<Result<Vec<u8>>> = (0..n)
            .map(|_| Err(TensorError::Io("shard read never completed".into())))
            .collect();
        while let Ok((index, res)) = done_rx.recv() {
            out[index] = res;
        }
        out
    }
}

impl Drop for ReaderPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel so workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Reads one extent synchronously (no pool handoff).
pub fn read_one(req: &ExtentReq) -> Result<Vec<u8>> {
    read_extent(req)
}

/// Reads one extent, validating that the file actually contains it.
fn read_extent(req: &ExtentReq) -> Result<Vec<u8>> {
    let mut f = std::fs::File::open(&req.path)?;
    let file_len = f.metadata()?.len();
    let end = req.offset + req.len as u64;
    if end > file_len {
        return Err(TensorError::Corrupt(format!(
            "shard {}: extent [{}, {end}) past file end {file_len}",
            req.path.display(),
            req.offset
        )));
    }
    f.seek(SeekFrom::Start(req.offset))?;
    let mut buf = vec![0u8; req.len as usize];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("egeria-readers-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn reads_come_back_in_request_order() {
        let dir = tmp_dir("order");
        let mut reqs = Vec::new();
        for i in 0..20u8 {
            let p = dir.join(format!("f{i}"));
            std::fs::write(&p, vec![i; 64]).unwrap();
            reqs.push(ExtentReq {
                path: p,
                offset: 8,
                len: 16,
            });
        }
        let pool = ReaderPool::new(4);
        let got = pool.read_extents(reqs);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &vec![i as u8; 16]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failures_are_per_slot() {
        let dir = tmp_dir("fail");
        let good = dir.join("good");
        std::fs::write(&good, vec![1u8; 32]).unwrap();
        let pool = ReaderPool::new(2);
        let got = pool.read_extents(vec![
            ExtentReq {
                path: good.clone(),
                offset: 0,
                len: 32,
            },
            ExtentReq {
                path: dir.join("missing"),
                offset: 0,
                len: 4,
            },
            ExtentReq {
                path: good,
                offset: 16,
                len: 32, // past end of file
            },
        ]);
        assert!(got[0].is_ok());
        assert!(got[1].is_err());
        assert!(got[2].is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_single_requests() {
        let pool = ReaderPool::new(2);
        assert!(pool.read_extents(Vec::new()).is_empty());
        let dir = tmp_dir("single");
        let p = dir.join("one");
        std::fs::write(&p, b"abcdef").unwrap();
        let got = pool.read_extents(vec![ExtentReq {
            path: p,
            offset: 2,
            len: 3,
        }]);
        assert_eq!(got[0].as_ref().unwrap(), b"cde");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
