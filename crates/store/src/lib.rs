//! Chunked, compressed, sharded activation store — the cache v2 backend.
//!
//! The flat activation cache writes one file per sample: at the millions
//! of cached samples the paper's training-loop savings (§4.3) imply, that
//! is millions of inodes of incompressible f32. This crate stores
//! activations the way chunked array stores (zarr, and zarrs' codec
//! pipeline in particular) do:
//!
//! - [`store::ChunkStore`]: a fixed grid over sample-id space — chunk
//!   `id / chunk_samples`, shard `chunk / chunks_per_shard` — with a
//!   bounded dirty buffer, append-only shard files, LRU eviction against
//!   a live-byte cap, and garbage compaction,
//! - [`codec`]: the pluggable chain — a per-sample transform (bit-exact
//!   f32, or lossy f16/int8 re-quantization with `egeria-quant`
//!   semantics) under a per-chunk byte codec ([`shuffle`] byte-plane
//!   transpose + the [`lz`] LZSS stage),
//! - [`chunk`]: the slot-directory block format one grid cell serializes
//!   to,
//! - [`manifest`]: the CRC'd index mapping chunks to shard extents,
//! - [`readers`]: a small thread pool fanning multi-shard extent reads.
//!
//! The load-bearing contract: **lossless configurations are bit-exact**
//! (`get` returns the identical f32 bits `put` stored), which is what
//! lets the chunked cache reproduce the flat cache's golden-run
//! fingerprint. Corruption anywhere — a flipped shard byte, a truncated
//! extent, a bad manifest — quarantines exactly one chunk (or degrades
//! open to an empty store) and reads as a miss, never an abort.

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod chunk;
pub mod codec;
pub mod lz;
pub mod manifest;
pub mod readers;
pub mod shuffle;
pub mod store;

pub use codec::StoreCodec;
pub use store::{ChunkStore, FlushOutcome, StoreConfig, StoreStats};
