//! The CRC'd manifest: the store's single source of truth for what lives
//! where.
//!
//! Shard files are append-only bags of encoded chunk blocks; nothing in a
//! shard is self-describing enough to enumerate. The manifest maps every
//! live chunk to its extent (shard, offset, len) together with the CRC of
//! the encoded bytes, the pre-codec size (for codec-ratio telemetry), the
//! populated sample count, and the logical last-access tick that drives
//! LRU eviction.
//!
//! ## File format (`manifest.egm`)
//!
//! ```text
//! magic            u32 LE   "EGMF"
//! version          u8       1
//! codec            u8       StoreCodec::id
//! chunk_samples    u16 LE
//! chunks_per_shard u16 LE
//! clock            u64 LE   logical access clock high-water mark
//! valid_prefix     u8 flag + u64 LE (cache prefix the data belongs to)
//! chunk_count      u32 LE
//!   per chunk: chunk_id u64, shard u32, offset u64, len u32,
//!              raw_len u32, crc u32, samples u16, last_access u64
//! shard_count      u32 LE
//!   per shard: shard u32, file_len u64
//! crc              u32 LE   crc32 of everything above
//! ```
//!
//! Chunks and shards serialize from `BTreeMap`s, so identical state
//! always produces identical bytes. Writes go through a temp file +
//! rename so a crash mid-save leaves the previous manifest intact; a
//! corrupt or missing manifest degrades to an empty store (the cache
//! counts one corrupt entry and recomputes), never an abort.

use crate::codec::StoreCodec;
use egeria_tensor::serialize::crc32;
use egeria_tensor::{Result, TensorError};
use std::collections::BTreeMap;
use std::path::Path;

/// `"EGMF"` little-endian.
pub const MANIFEST_MAGIC: u32 = u32::from_le_bytes(*b"EGMF");
/// Current manifest layout version.
pub const MANIFEST_VERSION: u8 = 1;
/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "manifest.egm";

impl StoreCodec {
    /// Stable one-byte id for the manifest header.
    pub fn id(&self) -> u8 {
        match self {
            StoreCodec::Lossless => 0,
            StoreCodec::Raw => 1,
            StoreCodec::F16 => 2,
            StoreCodec::Int8 => 3,
        }
    }

    /// Inverse of [`StoreCodec::id`].
    pub fn from_id(id: u8) -> Option<StoreCodec> {
        match id {
            0 => Some(StoreCodec::Lossless),
            1 => Some(StoreCodec::Raw),
            2 => Some(StoreCodec::F16),
            3 => Some(StoreCodec::Int8),
            _ => None,
        }
    }
}

/// Where one chunk's encoded block lives, plus its accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Shard file the extent lives in.
    pub shard: u32,
    /// Byte offset of the encoded block inside the shard.
    pub offset: u64,
    /// Encoded (on-disk) length in bytes.
    pub len: u32,
    /// Decoded block length in bytes (codec-ratio telemetry).
    pub raw_len: u32,
    /// CRC-32 of the encoded bytes.
    pub crc: u32,
    /// Populated sample slots in the block.
    pub samples: u16,
    /// Logical clock tick of the most recent put/get touching the chunk.
    pub last_access: u64,
}

/// The in-memory manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Codec every block in this store was written with.
    pub codec: StoreCodec,
    /// Grid cell width (sample ids per chunk).
    pub chunk_samples: u16,
    /// Grid cells per shard file.
    pub chunks_per_shard: u16,
    /// Logical access clock; monotonic across saves.
    pub clock: u64,
    /// Frozen-prefix the cached activations belong to, if pinned.
    pub valid_prefix: Option<u64>,
    /// chunk_id → extent.
    pub chunks: BTreeMap<u64, ManifestEntry>,
    /// shard id → current file length (includes garbage from rewrites).
    pub shard_lens: BTreeMap<u32, u64>,
}

impl Manifest {
    /// An empty manifest for a fresh store.
    pub fn empty(codec: StoreCodec, chunk_samples: u16, chunks_per_shard: u16) -> Manifest {
        Manifest {
            codec,
            chunk_samples,
            chunks_per_shard,
            clock: 0,
            valid_prefix: None,
            chunks: BTreeMap::new(),
            shard_lens: BTreeMap::new(),
        }
    }

    /// Live (referenced) bytes across all shards.
    pub fn live_bytes(&self) -> u64 {
        self.chunks.values().map(|e| e.len as u64).sum()
    }

    /// Live bytes inside one shard.
    pub fn shard_live_bytes(&self, shard: u32) -> u64 {
        self.chunks
            .values()
            .filter(|e| e.shard == shard)
            .map(|e| e.len as u64)
            .sum()
    }

    /// Serializes the manifest, CRC trailer included.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.chunks.len() * 42 + self.shard_lens.len() * 12);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.push(MANIFEST_VERSION);
        out.push(self.codec.id());
        out.extend_from_slice(&self.chunk_samples.to_le_bytes());
        out.extend_from_slice(&self.chunks_per_shard.to_le_bytes());
        out.extend_from_slice(&self.clock.to_le_bytes());
        match self.valid_prefix {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for (&id, e) in &self.chunks {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&e.shard.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.raw_len.to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
            out.extend_from_slice(&e.samples.to_le_bytes());
            out.extend_from_slice(&e.last_access.to_le_bytes());
        }
        out.extend_from_slice(&(self.shard_lens.len() as u32).to_le_bytes());
        for (&shard, &len) in &self.shard_lens {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a serialized manifest.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < 4 {
            return Err(TensorError::Corrupt("manifest: too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        let actual = crc32(body);
        if stored != actual {
            return Err(TensorError::Corrupt(format!(
                "manifest: crc mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let mut r = Reader { buf: body, pos: 0 };
        let magic = r.u32("magic")?;
        if magic != MANIFEST_MAGIC {
            return Err(TensorError::Corrupt(format!(
                "manifest: bad magic {magic:#010x}"
            )));
        }
        let version = r.u8("version")?;
        if version != MANIFEST_VERSION {
            return Err(TensorError::Corrupt(format!(
                "manifest: unsupported version {version}"
            )));
        }
        let cid = r.u8("codec")?;
        let codec = StoreCodec::from_id(cid)
            .ok_or_else(|| TensorError::Corrupt(format!("manifest: unknown codec {cid}")))?;
        let chunk_samples = r.u16("chunk_samples")?;
        let chunks_per_shard = r.u16("chunks_per_shard")?;
        if chunk_samples == 0 || chunks_per_shard == 0 {
            return Err(TensorError::Corrupt("manifest: zero-sized grid".into()));
        }
        let clock = r.u64("clock")?;
        let has_prefix = r.u8("prefix flag")?;
        let prefix_val = r.u64("prefix")?;
        let valid_prefix = match has_prefix {
            0 => None,
            1 => Some(prefix_val),
            f => {
                return Err(TensorError::Corrupt(format!(
                    "manifest: bad prefix flag {f}"
                )))
            }
        };
        let chunk_count = r.u32("chunk count")?;
        let mut chunks = BTreeMap::new();
        for _ in 0..chunk_count {
            let id = r.u64("chunk id")?;
            let e = ManifestEntry {
                shard: r.u32("shard")?,
                offset: r.u64("offset")?,
                len: r.u32("len")?,
                raw_len: r.u32("raw_len")?,
                crc: r.u32("crc")?,
                samples: r.u16("samples")?,
                last_access: r.u64("last_access")?,
            };
            if chunks.insert(id, e).is_some() {
                return Err(TensorError::Corrupt(format!(
                    "manifest: duplicate chunk {id}"
                )));
            }
        }
        let shard_count = r.u32("shard count")?;
        let mut shard_lens = BTreeMap::new();
        for _ in 0..shard_count {
            let shard = r.u32("shard id")?;
            let len = r.u64("shard len")?;
            if shard_lens.insert(shard, len).is_some() {
                return Err(TensorError::Corrupt(format!(
                    "manifest: duplicate shard {shard}"
                )));
            }
        }
        if r.pos != body.len() {
            return Err(TensorError::Corrupt(format!(
                "manifest: {} trailing bytes",
                body.len() - r.pos
            )));
        }
        // Cross-check extents against the shard table so a manifest that
        // passed its CRC but disagrees with itself is still rejected.
        for (&id, e) in &chunks {
            let shard_len = shard_lens.get(&e.shard).copied().ok_or_else(|| {
                TensorError::Corrupt(format!("manifest: chunk {id} in unknown shard {}", e.shard))
            })?;
            if e.offset + e.len as u64 > shard_len {
                return Err(TensorError::Corrupt(format!(
                    "manifest: chunk {id} extent past end of shard {}",
                    e.shard
                )));
            }
        }
        Ok(Manifest {
            codec,
            chunk_samples,
            chunks_per_shard,
            clock,
            valid_prefix,
            chunks,
            shard_lens,
        })
    }

    /// Atomically writes the manifest (temp file + rename).
    pub fn save(&self, dir: &Path) -> Result<()> {
        let tmp = dir.join("manifest.egm.tmp");
        let dst = dir.join(MANIFEST_FILE);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, &dst)?;
        Ok(())
    }

    /// Loads a manifest from the store directory. `Ok(None)` when no
    /// manifest exists (fresh store); `Err(Corrupt)` when one exists but
    /// fails validation — the caller quarantines and starts empty.
    pub fn load(dir: &Path) -> Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(Manifest::decode(&bytes)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| TensorError::Corrupt(format!("manifest: truncated {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        let mut m = Manifest::empty(StoreCodec::Lossless, 64, 16);
        m.clock = 42;
        m.valid_prefix = Some(3);
        m.shard_lens.insert(0, 1000);
        m.shard_lens.insert(7, 50);
        m.chunks.insert(
            2,
            ManifestEntry {
                shard: 0,
                offset: 0,
                len: 600,
                raw_len: 2400,
                crc: 0xDEAD_BEEF,
                samples: 64,
                last_access: 41,
            },
        );
        m.chunks.insert(
            112,
            ManifestEntry {
                shard: 7,
                offset: 10,
                len: 40,
                raw_len: 100,
                crc: 1,
                samples: 3,
                last_access: 42,
            },
        );
        m
    }

    #[test]
    fn round_trips() {
        let m = sample_manifest();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest::empty(StoreCodec::Int8, 32, 8);
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn live_byte_accounting() {
        let m = sample_manifest();
        assert_eq!(m.live_bytes(), 640);
        assert_eq!(m.shard_live_bytes(0), 600);
        assert_eq!(m.shard_live_bytes(7), 40);
        assert_eq!(m.shard_live_bytes(99), 0);
    }

    #[test]
    fn crc_catches_any_flip() {
        let enc = sample_manifest().encode();
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x01;
            assert!(Manifest::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn extent_past_shard_end_rejected() {
        let mut m = sample_manifest();
        m.chunks.get_mut(&112).unwrap().len = 100;
        let enc = m.encode(); // CRC is over the inconsistent state: valid CRC
        assert!(Manifest::decode(&enc).is_err());
    }

    #[test]
    fn save_load_cycle_and_fresh_dir() {
        let dir = std::env::temp_dir().join(format!("egeria-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Manifest::load(&dir).unwrap().is_none(), "fresh dir");
        let m = sample_manifest();
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        std::fs::write(dir.join(MANIFEST_FILE), b"garbage").unwrap();
        assert!(Manifest::load(&dir).is_err(), "corrupt manifest errors");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_codec_ids_round_trip() {
        for c in [
            StoreCodec::Lossless,
            StoreCodec::Raw,
            StoreCodec::F16,
            StoreCodec::Int8,
        ] {
            assert_eq!(StoreCodec::from_id(c.id()), Some(c));
        }
        assert_eq!(StoreCodec::from_id(200), None);
    }
}
