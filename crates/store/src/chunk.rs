//! Chunk blocks: how a grid cell's samples are laid out in bytes.
//!
//! The store divides the sample-id axis into fixed cells of
//! `chunk_samples` ids: chunk `c` owns ids `[c*chunk_samples,
//! (c+1)*chunk_samples)`. One chunk serializes to one **block** — a slot
//! directory plus the concatenated per-sample records — which then passes
//! through the byte codec before landing inside a shard file.
//!
//! ## Block layout (before the byte codec)
//!
//! ```text
//! magic          u32 LE   "EGCB" (0x4243_4745 on disk: 45 47 43 42)
//! version        u8       1
//! transform      u8       Transform::id of the per-sample records
//! chunk_samples  u16 LE   grid cell width (validated against the store's)
//! base_id        u64 LE   first sample id of the cell
//! slot_count     u16 LE   number of populated slots
//! directory      slot_count × { slot u16 LE, rec_len u32 LE }
//!                (slots strictly ascending — deterministic bytes)
//! records        concatenated, directory order
//! ```
//!
//! Sparse cells are first-class: a shuffled sampler fills slots out of
//! order and eviction may drop a cell before it fills. The directory
//! makes absent slots free (a miss, not an error). Every field is bounds
//! checked on decode; violations surface as [`TensorError::Corrupt`] and
//! the store maps that to quarantining this one chunk.

use crate::codec::Transform;
use egeria_tensor::{Result, TensorError};
use std::collections::BTreeMap;

/// `"EGCB"` little-endian.
pub const CHUNK_MAGIC: u32 = u32::from_le_bytes(*b"EGCB");
/// Current block layout version.
pub const CHUNK_VERSION: u8 = 1;

/// A decoded chunk block: the populated slots of one grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkBlock {
    /// Per-sample record transform the payloads were written with.
    pub transform: Transform,
    /// First sample id of the grid cell.
    pub base_id: u64,
    /// Grid cell width the writer used.
    pub chunk_samples: u16,
    /// slot → encoded sample record. BTreeMap keeps encode deterministic.
    pub records: BTreeMap<u16, Vec<u8>>,
}

impl ChunkBlock {
    /// Serializes the block (byte codec not yet applied).
    pub fn encode(&self) -> Vec<u8> {
        let payload: usize = self.records.values().map(|r| r.len() + 6).sum();
        let mut out = Vec::with_capacity(18 + payload);
        out.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
        out.push(CHUNK_VERSION);
        out.push(self.transform.id());
        out.extend_from_slice(&self.chunk_samples.to_le_bytes());
        out.extend_from_slice(&self.base_id.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u16).to_le_bytes());
        for (&slot, rec) in &self.records {
            out.extend_from_slice(&slot.to_le_bytes());
            out.extend_from_slice(&(rec.len() as u32).to_le_bytes());
        }
        for rec in self.records.values() {
            out.extend_from_slice(rec);
        }
        out
    }

    /// Parses and validates a block.
    pub fn decode(bytes: &[u8]) -> Result<ChunkBlock> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.u32("magic")?;
        if magic != CHUNK_MAGIC {
            return Err(TensorError::Corrupt(format!(
                "chunk: bad magic {magic:#010x}"
            )));
        }
        let version = r.u8("version")?;
        if version != CHUNK_VERSION {
            return Err(TensorError::Corrupt(format!(
                "chunk: unsupported version {version}"
            )));
        }
        let tid = r.u8("transform")?;
        let transform = Transform::from_id(tid)
            .ok_or_else(|| TensorError::Corrupt(format!("chunk: unknown transform {tid}")))?;
        let chunk_samples = r.u16("chunk_samples")?;
        if chunk_samples == 0 {
            return Err(TensorError::Corrupt("chunk: zero-width grid cell".into()));
        }
        let base_id = r.u64("base_id")?;
        let slot_count = r.u16("slot_count")?;
        if slot_count > chunk_samples {
            return Err(TensorError::Corrupt(format!(
                "chunk: {slot_count} slots in a {chunk_samples}-wide cell"
            )));
        }
        let mut dir = Vec::with_capacity(slot_count as usize);
        let mut prev: Option<u16> = None;
        for _ in 0..slot_count {
            let slot = r.u16("slot")?;
            if slot >= chunk_samples {
                return Err(TensorError::Corrupt(format!(
                    "chunk: slot {slot} outside {chunk_samples}-wide cell"
                )));
            }
            if prev.is_some_and(|p| slot <= p) {
                return Err(TensorError::Corrupt("chunk: slots not ascending".into()));
            }
            prev = Some(slot);
            let len = r.u32("rec_len")? as usize;
            dir.push((slot, len));
        }
        let mut records = BTreeMap::new();
        for (slot, len) in dir {
            let rec = r.take(len, "record payload")?;
            records.insert(slot, rec.to_vec());
        }
        if r.pos != bytes.len() {
            return Err(TensorError::Corrupt(format!(
                "chunk: {} trailing bytes",
                bytes.len() - r.pos
            )));
        }
        Ok(ChunkBlock {
            transform,
            base_id,
            chunk_samples,
            records,
        })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| TensorError::Corrupt(format!("chunk: truncated {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> ChunkBlock {
        let mut records = BTreeMap::new();
        records.insert(0u16, vec![1u8, 2, 3]);
        records.insert(5u16, vec![]);
        records.insert(63u16, vec![9u8; 100]);
        ChunkBlock {
            transform: Transform::Exact,
            base_id: 640,
            chunk_samples: 64,
            records,
        }
    }

    #[test]
    fn round_trips_sparse_slots() {
        let b = sample_block();
        let enc = b.encode();
        assert_eq!(ChunkBlock::decode(&enc).unwrap(), b);
    }

    #[test]
    fn empty_cell_round_trips() {
        let b = ChunkBlock {
            transform: Transform::F16,
            base_id: 0,
            chunk_samples: 32,
            records: BTreeMap::new(),
        };
        assert_eq!(ChunkBlock::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn encode_is_deterministic() {
        assert_eq!(sample_block().encode(), sample_block().encode());
    }

    #[test]
    fn corrupt_blocks_error_not_panic() {
        let enc = sample_block().encode();
        assert!(ChunkBlock::decode(&[]).is_err());
        assert!(ChunkBlock::decode(&enc[..enc.len() - 1]).is_err(), "truncated");
        let mut bad = enc.clone();
        bad[0] ^= 0xFF;
        assert!(ChunkBlock::decode(&bad).is_err(), "magic");
        let mut bad = enc.clone();
        bad[4] = 99;
        assert!(ChunkBlock::decode(&bad).is_err(), "version");
        let mut bad = enc.clone();
        bad[5] = 99;
        assert!(ChunkBlock::decode(&bad).is_err(), "transform");
        // Every single-byte flip either errors or decodes; never panics.
        for i in 0..enc.len() {
            let mut b = enc.clone();
            b[i] ^= 0x55;
            let _ = ChunkBlock::decode(&b);
        }
        // Trailing garbage is rejected.
        let mut b = enc.clone();
        b.push(0);
        assert!(ChunkBlock::decode(&b).is_err());
    }
}
