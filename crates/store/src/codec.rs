//! The pluggable codec chain: sample transform + chunk byte codec.
//!
//! A cached activation passes two stages on its way to a shard file
//! (mirroring the zarrs array→array / array→bytes / bytes→bytes codec
//! pipeline, collapsed to the two levels this store needs):
//!
//! 1. **Sample transform** (array→bytes, per sample): turns one tensor
//!    into a self-describing record. [`Transform::Exact`] is the
//!    existing `egeria_tensor::serialize` wire format, byte-for-byte —
//!    the lossless contract below rests on that. [`Transform::F16`] and
//!    [`Transform::Int8`] re-quantize frozen-layer activations through
//!    `egeria-quant` semantics and are *lossy within a documented
//!    tolerance* (see the encode functions).
//! 2. **Byte codec** (bytes→bytes, per chunk): byte-shuffle planes sized
//!    to the record's element width, then the LZ stage. Always lossless.
//!
//! ## The lossless-is-bit-exact rule (DESIGN §5j)
//!
//! `decode(encode(bytes))` must equal `bytes` for every byte codec, and
//! `decode_sample(encode_sample(t))` must reproduce `t` **bit-for-bit**
//! under [`Transform::Exact`]. This is what lets
//! `EGERIA_CACHE_STORE=chunked` hold the same golden-run fingerprint as
//! the flat store: compression may change how bytes rest on disk, never
//! which f32 bits come back.

use crate::lz;
use crate::shuffle::{shuffle, unshuffle};
use egeria_quant::qtensor::Granularity;
use egeria_quant::QTensor;
use egeria_tensor::{serialize, Result, Tensor, TensorError};

/// The user-facing codec selection (`EGERIA_CACHE_CODEC`). Picks a
/// (transform, byte-codec) pair for the whole store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreCodec {
    /// Byte-shuffle (width 4) + LZ over exact f32 records. Bit-exact.
    #[default]
    Lossless,
    /// Exact f32 records, no compression (debugging / incompressible
    /// data). Bit-exact.
    Raw,
    /// f16 re-quantization + shuffle (width 2) + LZ. Lossy: each element
    /// carries one IEEE-half rounding, identical to
    /// `egeria_quant::fake::fake_f16`.
    F16,
    /// int8 per-sample symmetric re-quantization + LZ. Lossy: absolute
    /// error ≤ scale/2 with `scale = max_abs/127`, identical to
    /// `egeria_quant::QTensor` per-tensor semantics.
    Int8,
}

impl StoreCodec {
    /// Stable short name (reports, bench JSON, manifest debugging).
    pub fn name(&self) -> &'static str {
        match self {
            StoreCodec::Lossless => "lossless",
            StoreCodec::Raw => "raw",
            StoreCodec::F16 => "f16",
            StoreCodec::Int8 => "int8",
        }
    }

    /// Parses the `EGERIA_CACHE_CODEC` spellings.
    pub fn parse(s: &str) -> Option<StoreCodec> {
        match s.trim() {
            "lossless" | "shuffle-lz" => Some(StoreCodec::Lossless),
            "raw" | "none" => Some(StoreCodec::Raw),
            "f16" => Some(StoreCodec::F16),
            "int8" => Some(StoreCodec::Int8),
            _ => None,
        }
    }

    /// Reads `EGERIA_CACHE_CODEC`; `None` when unset. An unparsable value
    /// is reported once and ignored rather than aborting training.
    pub fn from_env() -> Option<StoreCodec> {
        let raw = std::env::var("EGERIA_CACHE_CODEC").ok()?;
        match StoreCodec::parse(&raw) {
            Some(c) => Some(c),
            None => {
                eprintln!(
                    "egeria: ignoring unparsable EGERIA_CACHE_CODEC={raw:?} \
                     (expected lossless|raw|f16|int8)"
                );
                None
            }
        }
    }

    /// Whether decode reproduces the stored tensor bit-for-bit.
    pub fn is_lossless(&self) -> bool {
        matches!(self, StoreCodec::Lossless | StoreCodec::Raw)
    }

    /// The (transform, byte codec) pair this selection runs.
    pub fn stages(&self) -> (Transform, ByteCodec) {
        match self {
            StoreCodec::Lossless => (Transform::Exact, ByteCodec::ShuffleLz { width: 4 }),
            StoreCodec::Raw => (Transform::Exact, ByteCodec::Raw),
            StoreCodec::F16 => (Transform::F16, ByteCodec::ShuffleLz { width: 2 }),
            StoreCodec::Int8 => (Transform::Int8, ByteCodec::ShuffleLz { width: 1 }),
        }
    }
}

/// The chunk-level bytes→bytes stage. Always lossless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteCodec {
    /// Identity.
    Raw,
    /// Byte-shuffle with the given element width, then LZ.
    ShuffleLz {
        /// Element width in bytes the planes are sized to.
        width: u8,
    },
}

impl ByteCodec {
    /// Stable one-byte id for the manifest.
    pub fn id(&self) -> u8 {
        match self {
            ByteCodec::Raw => 0,
            ByteCodec::ShuffleLz { width: 4 } => 1,
            ByteCodec::ShuffleLz { width: 2 } => 2,
            ByteCodec::ShuffleLz { .. } => 3,
        }
    }

    /// Inverse of [`ByteCodec::id`].
    pub fn from_id(id: u8) -> Option<ByteCodec> {
        match id {
            0 => Some(ByteCodec::Raw),
            1 => Some(ByteCodec::ShuffleLz { width: 4 }),
            2 => Some(ByteCodec::ShuffleLz { width: 2 }),
            3 => Some(ByteCodec::ShuffleLz { width: 1 }),
            _ => None,
        }
    }

    /// Encodes a chunk block.
    pub fn encode(&self, bytes: &[u8]) -> Vec<u8> {
        match self {
            ByteCodec::Raw => bytes.to_vec(),
            ByteCodec::ShuffleLz { width } => lz::compress(&shuffle(bytes, *width as usize)),
        }
    }

    /// Decodes a chunk block; corruption surfaces as
    /// [`TensorError::Corrupt`].
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<u8>> {
        match self {
            ByteCodec::Raw => Ok(bytes.to_vec()),
            ByteCodec::ShuffleLz { width } => {
                Ok(unshuffle(&lz::decompress(bytes)?, *width as usize))
            }
        }
    }
}

/// The per-sample array→bytes stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// `egeria_tensor::serialize` wire format, bit-exact.
    Exact,
    /// IEEE-half storage; decode carries exactly the `fake_f16` rounding.
    F16,
    /// Per-sample symmetric int8; decode carries exactly the per-tensor
    /// `QTensor` rounding.
    Int8,
}

impl Transform {
    /// Stable one-byte id for chunk headers and the manifest.
    pub fn id(&self) -> u8 {
        match self {
            Transform::Exact => 0,
            Transform::F16 => 1,
            Transform::Int8 => 2,
        }
    }

    /// Inverse of [`Transform::id`].
    pub fn from_id(id: u8) -> Option<Transform> {
        match id {
            0 => Some(Transform::Exact),
            1 => Some(Transform::F16),
            2 => Some(Transform::Int8),
            _ => None,
        }
    }

    /// Encodes one sample tensor into a record.
    pub fn encode_sample(&self, t: &Tensor) -> Result<Vec<u8>> {
        match self {
            Transform::Exact => Ok(serialize::to_bytes(t).to_vec()),
            Transform::F16 => Ok(encode_f16(t)),
            Transform::Int8 => encode_int8(t),
        }
    }

    /// Decodes one record back into a tensor.
    pub fn decode_sample(&self, bytes: &[u8]) -> Result<Tensor> {
        match self {
            Transform::Exact => serialize::from_bytes(bytes),
            Transform::F16 => decode_f16(bytes),
            Transform::Int8 => decode_int8(bytes),
        }
    }
}

// ---- record helpers -------------------------------------------------------

fn put_dims(out: &mut Vec<u8>, dims: &[usize]) {
    out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
}

struct RecordReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        RecordReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| TensorError::Corrupt(format!("record: truncated {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self, what: &str) -> Result<f32> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn dims(&mut self) -> Result<Vec<usize>> {
        let rank = self.u32("rank")? as usize;
        if rank > 8 {
            return Err(TensorError::Corrupt(format!("record: implausible rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let b = self.take(8, "dims")?;
            dims.push(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]) as usize);
        }
        Ok(dims)
    }

    fn done(&self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(TensorError::Corrupt(format!(
                "record: {} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---- f16 ------------------------------------------------------------------

/// Packs the IEEE-754 half bits of an f16-representable f32. The input
/// must already be rounded through [`egeria_quant::fake::f16_round`]
/// (which [`encode_f16`] guarantees), so no second rounding happens here
/// and `decode ∘ encode == fake_f16` holds exactly.
fn f16_bits_of_rounded(y: f32) -> u16 {
    let bits = y.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    if y.is_nan() {
        return sign | 0x7E00;
    }
    if y.is_infinite() {
        return sign | 0x7C00;
    }
    let abs = f32::from_bits(bits & 0x7FFF_FFFF);
    // egeria-lint: allow(float-exact-eq): ±0.0 maps to the signed zero
    // half; every other representable value goes through the exponent
    // split below.
    if abs == 0.0 {
        return sign;
    }
    const MIN_NORMAL_F16: f32 = 6.103_515_6e-5; // 2^-14 exactly in f32
    if abs < MIN_NORMAL_F16 {
        // Subnormal half: the value is an exact multiple of 2^-24.
        let m = (abs * 16_777_216.0) as u32; // abs / 2^-24
        return sign | (m as u16 & 0x03FF);
    }
    let exp32 = ((bits >> 23) & 0xFF) as i32 - 127;
    let exp16 = (exp32 + 15) as u16; // 1..=30 for in-range rounded input
    let mant = ((bits >> 13) & 0x03FF) as u16; // top 10 of 23 mantissa bits
    sign | (exp16 << 10) | mant
}

/// Unpacks IEEE-754 half bits to f32, exactly.
fn f32_of_f16_bits(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let mant = (h & 0x03FF) as u32;
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign
            } else {
                // Subnormal half: mant * 2^-24, an exact f32 product.
                let mag = mant as f32 * 5.960_464_5e-8; // 2^-24 exactly in f32
                return if sign == 0 { mag } else { -mag };
            }
        }
        0x1F => sign | 0x7F80_0000 | (mant << 13),
        _ => sign | ((exp as u32 + 127 - 15) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

fn encode_f16(t: &Tensor) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + t.rank() * 8 + t.numel() * 2);
    put_dims(&mut out, t.dims());
    for &x in t.data() {
        let h = f16_bits_of_rounded(egeria_quant::fake::f16_round(x));
        out.extend_from_slice(&h.to_le_bytes());
    }
    out
}

fn decode_f16(bytes: &[u8]) -> Result<Tensor> {
    let mut r = RecordReader::new(bytes);
    let dims = r.dims()?;
    let numel: usize = dims.iter().product();
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        let b = r.take(2, "f16 payload")?;
        data.push(f32_of_f16_bits(u16::from_le_bytes([b[0], b[1]])));
    }
    r.done("f16 record")?;
    Tensor::from_vec(data, &dims)
}

// ---- int8 -----------------------------------------------------------------

fn encode_int8(t: &Tensor) -> Result<Vec<u8>> {
    let q = QTensor::quantize(t, Granularity::PerTensor)?;
    let scale = q.scales().first().copied().unwrap_or(1.0);
    let mut out = Vec::with_capacity(12 + t.rank() * 8 + q.data().len());
    put_dims(&mut out, t.dims());
    out.extend_from_slice(&scale.to_le_bytes());
    out.extend(q.data().iter().map(|&v| v as u8));
    Ok(out)
}

fn decode_int8(bytes: &[u8]) -> Result<Tensor> {
    let mut r = RecordReader::new(bytes);
    let dims = r.dims()?;
    let scale = r.f32("int8 scale")?;
    let numel: usize = dims.iter().product();
    let payload = r.take(numel, "int8 payload")?;
    r.done("int8 record")?;
    let data: Vec<f32> = payload.iter().map(|&b| (b as i8) as f32 * scale).collect();
    Tensor::from_vec(data, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_quant::fake::{fake_f16, fake_int8};
    use egeria_tensor::Rng;

    #[test]
    fn exact_transform_is_bit_exact() {
        let mut rng = Rng::new(3);
        let t = Tensor::randn(&[2, 3, 5], &mut rng);
        let rec = Transform::Exact.encode_sample(&t).unwrap();
        let back = Transform::Exact.decode_sample(&rec).unwrap();
        assert_eq!(back.dims(), t.dims());
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn byte_codecs_round_trip_records() {
        let mut rng = Rng::new(4);
        let t = Tensor::randn(&[4, 7], &mut rng);
        let rec = Transform::Exact.encode_sample(&t).unwrap();
        for codec in [
            ByteCodec::Raw,
            ByteCodec::ShuffleLz { width: 4 },
            ByteCodec::ShuffleLz { width: 2 },
            ByteCodec::ShuffleLz { width: 1 },
        ] {
            let enc = codec.encode(&rec);
            assert_eq!(codec.decode(&enc).unwrap(), rec, "{codec:?}");
            assert_eq!(ByteCodec::from_id(codec.id()), Some(codec));
        }
    }

    #[test]
    fn f16_transform_matches_fake_f16_exactly() {
        let mut rng = Rng::new(5);
        let mut t = Tensor::randn(&[3, 8], &mut rng);
        // Include the awkward corners: zeros, subnormals, large values.
        t.data_mut()[0] = 0.0;
        t.data_mut()[1] = -0.0;
        t.data_mut()[2] = 3.0e-6;
        t.data_mut()[3] = -7.0e-8;
        t.data_mut()[4] = 60000.0;
        t.data_mut()[5] = -65519.0;
        let rec = Transform::F16.encode_sample(&t).unwrap();
        let back = Transform::F16.decode_sample(&rec).unwrap();
        let want = fake_f16(&t);
        for (i, (a, b)) in back.data().iter().zip(want.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn int8_transform_matches_fake_int8_exactly() {
        let mut rng = Rng::new(6);
        let t = Tensor::randn(&[2, 9], &mut rng);
        let rec = Transform::Int8.encode_sample(&t).unwrap();
        let back = Transform::Int8.decode_sample(&rec).unwrap();
        let want = fake_int8(&t, Granularity::PerTensor).unwrap();
        for (a, b) in back.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupt_records_error_not_panic() {
        let t = Tensor::ones(&[2, 2]);
        for tf in [Transform::Exact, Transform::F16, Transform::Int8] {
            let rec = tf.encode_sample(&t).unwrap();
            assert!(tf.decode_sample(&rec[..rec.len() - 1]).is_err(), "{tf:?}");
            assert!(tf.decode_sample(&[]).is_err());
            assert_eq!(Transform::from_id(tf.id()), Some(tf));
        }
    }

    #[test]
    fn codec_env_parsing() {
        assert_eq!(StoreCodec::parse("lossless"), Some(StoreCodec::Lossless));
        assert_eq!(StoreCodec::parse("shuffle-lz"), Some(StoreCodec::Lossless));
        assert_eq!(StoreCodec::parse("raw"), Some(StoreCodec::Raw));
        assert_eq!(StoreCodec::parse("f16"), Some(StoreCodec::F16));
        assert_eq!(StoreCodec::parse("int8"), Some(StoreCodec::Int8));
        assert_eq!(StoreCodec::parse("zstd"), None);
        assert!(StoreCodec::Lossless.is_lossless());
        assert!(!StoreCodec::Int8.is_lossless());
    }
}
