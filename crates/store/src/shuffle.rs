//! Byte-shuffle: the plane-transpose stage of the codec chain.
//!
//! Multi-byte values (f32 activations, u16 halves) spread their entropy
//! unevenly across byte positions: sign/exponent bytes take few distinct
//! values while mantissa bytes are near-random. Grouping byte position
//! `p` of every element into one contiguous plane ("shuffling") turns
//! that skew into long runs the LZ stage can match — the same trick
//! Blosc/zarrs ship as their default pre-filter.
//!
//! Both directions are pure permutations: `unshuffle(shuffle(b, w), w)`
//! is the identity for every width, which is what keeps the lossless
//! chain bit-exact. A trailing remainder (`len % width`) is carried
//! verbatim after the planes.
//!
//! This is the store's hot loop (every cached byte passes through twice),
//! so it is registered as a lint kernel entry: no panic sites, no
//! wall-clock, no entropy anywhere in its call footprint.

/// Transposes `data` into `width` byte planes. `width == 0` or `1` (or a
/// buffer shorter than one element) degenerates to a plain copy.
pub fn shuffle(data: &[u8], width: usize) -> Vec<u8> {
    if width <= 1 || data.len() < width {
        return data.to_vec();
    }
    let elems = data.len() / width;
    let body = elems * width;
    let mut out = vec![0u8; data.len()];
    for plane in 0..width {
        let dst = &mut out[plane * elems..(plane + 1) * elems];
        let mut src = plane;
        for slot in dst.iter_mut() {
            *slot = data[src];
            src += width;
        }
    }
    out[body..].copy_from_slice(&data[body..]);
    out
}

/// Inverts [`shuffle`]: gathers the byte planes back into interleaved
/// elements. Must be called with the same `width` the data was shuffled
/// with; the caller (the codec chain) records the width in the codec id.
pub fn unshuffle(data: &[u8], width: usize) -> Vec<u8> {
    if width <= 1 || data.len() < width {
        return data.to_vec();
    }
    let elems = data.len() / width;
    let body = elems * width;
    let mut out = vec![0u8; data.len()];
    for plane in 0..width {
        let src = &data[plane * elems..(plane + 1) * elems];
        let mut dst = plane;
        for &b in src.iter() {
            out[dst] = b;
            dst += width;
        }
    }
    out[body..].copy_from_slice(&data[body..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_with_remainder() {
        let data: Vec<u8> = (0..23u8).collect();
        for width in [1usize, 2, 4, 8] {
            let s = shuffle(&data, width);
            assert_eq!(unshuffle(&s, width), data, "width {width}");
        }
    }

    #[test]
    fn planes_are_contiguous() {
        // Elements 0x01020304, 0x05060708 (LE on disk: 04 03 02 01 ...).
        let data = vec![4u8, 3, 2, 1, 8, 7, 6, 5];
        let s = shuffle(&data, 4);
        assert_eq!(s, vec![4, 8, 3, 7, 2, 6, 1, 5]);
    }

    #[test]
    fn degenerate_widths_copy() {
        let data = vec![9u8, 8, 7];
        assert_eq!(shuffle(&data, 0), data);
        assert_eq!(shuffle(&data, 1), data);
        assert_eq!(shuffle(&data, 4), data, "shorter than one element");
        assert_eq!(unshuffle(&data, 4), data);
    }

    #[test]
    fn empty_is_fine() {
        assert!(shuffle(&[], 4).is_empty());
        assert!(unshuffle(&[], 4).is_empty());
    }
}
