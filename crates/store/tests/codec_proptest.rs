//! Property tests for the codec chain contract (DESIGN §5j):
//!
//! * byte-shuffle is a bijection for every plane width, including widths
//!   that do not divide the buffer length;
//! * the LZ stage round-trips arbitrary bytes bit-exactly — both
//!   incompressible noise and the run/match-heavy inputs the encoder
//!   actually takes branches on;
//! * every [`ByteCodec`] chain (shuffle+LZ at widths 4/2/1, raw) is the
//!   identity end to end;
//! * [`Transform::Exact`] reproduces arbitrary tensors **bit-for-bit**
//!   (the lossless-is-bit-exact rule the golden run rests on);
//! * [`Transform::F16`] decode equals `egeria_quant::fake::fake_f16`
//!   bitwise — storage adds no rounding beyond the documented one;
//! * [`Transform::Int8`] decode stays within the documented per-tensor
//!   tolerance: |x − x̂| ≤ scale/2 with scale = max_abs/127.

use egeria_quant::fake::fake_f16;
use egeria_store::codec::{ByteCodec, Transform};
use egeria_store::lz;
use egeria_store::shuffle::{shuffle, unshuffle};
use egeria_tensor::Tensor;
use proptest::prelude::*;

/// Arbitrary raw bytes, biased toward the shapes the LZ encoder has real
/// branches for: incompressible noise, short motifs tiled past
/// `MAX_MATCH` (match emission splits), and zero spans with nonzero
/// islands (the post-ReLU case).
fn byte_buffers() -> impl Strategy<Value = Vec<u8>> {
    (0u8..3, prop::collection::vec(any::<u8>(), 0..768), 1usize..64).prop_map(
        |(mode, raw, reps)| match mode {
            0 => raw,
            1 => {
                let motif_len = raw.len().clamp(1, 12);
                if raw.is_empty() {
                    vec![0xA5; reps]
                } else {
                    raw[..motif_len].repeat(reps)
                }
            }
            _ => raw
                .into_iter()
                .map(|b| if b < 232 { 0 } else { b })
                .collect(),
        },
    )
}

/// Small tensors with finite values spanning the f16 normal, subnormal,
/// and overflow ranges, plus exact zeros. Values are drawn from a seeded
/// stream so one strategy covers all the magnitude regimes per tensor.
fn tensors() -> impl Strategy<Value = Tensor> {
    (1usize..5, 1usize..9, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = TestRng::new(seed);
        let data: Vec<f32> = (0..r * c)
            .map(|_| {
                let u = (rng.unit_f64() - 0.5) as f32;
                match rng.next_u64() % 8 {
                    0 => 0.0,
                    1 => u * 2.0e-6, // f16-subnormal territory
                    2 => u * 2.0e5,  // overflows f16 range
                    _ => u * 2.0e3,
                }
            })
            .collect();
        Tensor::from_vec(data, &[r, c]).expect("proptest tensor")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn shuffle_round_trips_every_width(bytes in byte_buffers(), width in 1usize..9) {
        prop_assert_eq!(unshuffle(&shuffle(&bytes, width), width), bytes);
    }

    #[test]
    fn lz_round_trips_bit_exact(bytes in byte_buffers()) {
        let enc = lz::compress(&bytes);
        prop_assert_eq!(lz::decompress(&enc).expect("decompress"), bytes);
    }

    #[test]
    fn byte_codec_chain_is_identity(bytes in byte_buffers()) {
        for codec in [
            ByteCodec::Raw,
            ByteCodec::ShuffleLz { width: 4 },
            ByteCodec::ShuffleLz { width: 2 },
            ByteCodec::ShuffleLz { width: 1 },
        ] {
            let enc = codec.encode(&bytes);
            prop_assert_eq!(codec.decode(&enc).expect("decode"), bytes.clone(), "{:?}", codec);
        }
    }

    #[test]
    fn exact_transform_is_bit_exact(t in tensors()) {
        let rec = Transform::Exact.encode_sample(&t).expect("encode");
        let back = Transform::Exact.decode_sample(&rec).expect("decode");
        prop_assert_eq!(back.dims(), t.dims());
        for (a, b) in back.data().iter().zip(t.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f16_transform_matches_fake_f16_bitwise(t in tensors()) {
        let rec = Transform::F16.encode_sample(&t).expect("encode");
        let back = Transform::F16.decode_sample(&rec).expect("decode");
        let want = fake_f16(&t);
        for (i, (a, b)) in back.data().iter().zip(want.data()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "elem {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn int8_transform_error_within_half_scale(t in tensors()) {
        let rec = Transform::Int8.encode_sample(&t).expect("encode");
        let back = Transform::Int8.decode_sample(&rec).expect("decode");
        let max_abs = t.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        // Half-a-step quantization error, with a hair of slack for the
        // f32 arithmetic computing the bound itself.
        let tol = scale * 0.5 * (1.0 + 1.0e-5);
        for (i, (a, b)) in back.data().iter().zip(t.data()).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "elem {}: decoded {} vs {} exceeds tol {}",
                i, a, b, tol
            );
        }
    }
}
