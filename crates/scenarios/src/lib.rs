//! The policy A/B scenario harness (DESIGN §5i).
//!
//! Drives every [`PolicyKind`] across the five model families on fixed
//! seeds and tiny reproduction-scale configs, producing per-(policy, model)
//! results: a bit-exact *fingerprint* (loss bits + decision timeline,
//! pinned under `tests/golden/policies/`) and A/B metrics (time-to-accuracy
//! vs the never-freeze baseline, compute saved, communication skipped).
//!
//! ## Determinism contract
//!
//! Every scenario is a pure function of its hard-coded `(seed, config)`
//! pair: synthetic data, shuffling, and weight init all derive from fixed
//! seeds; the scalar ISA is forced (vector ISAs are toleranced, not
//! bit-identical, per DESIGN §5g); and only the sync controller is used, so
//! no decision depends on thread scheduling. Fingerprints are therefore
//! bit-stable across machines and `EGERIA_THREADS` settings — any drift is
//! a behavioral change, and CI treats it as such. Scenario runs must not
//! have `EGERIA_FREEZE_POLICY` set (it would override the matrix); the
//! `scenario_ab` binary clears it defensively.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::{EgeriaConfig, PolicyKind};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::qa::{QaDataConfig, SyntheticQa};
use egeria_data::segmentation::{SegDataConfig, SyntheticSegmentation};
use egeria_data::translation::{SyntheticTranslation, TranslationConfig};
use egeria_data::{DataLoader, Dataset};
use egeria_models::bert::{BertConfig, BertQa};
use egeria_models::deeplab::{deeplab_v3, DeepLabConfig};
use egeria_models::mobilenet::{mobilenet_v2, MobileNetConfig};
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::transformer::{Seq2SeqTransformer, TransformerConfig};
use egeria_nn::optim::{Adam, Sgd};
use egeria_nn::sched::{InverseSqrt, LinearDecay, LrSchedule, MultiStepDecay};
use egeria_tensor::Result;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Fraction of a training step spent in the backward pass (the 2/3 rule of
/// thumb the paper's compute accounting uses: backward ≈ 2× forward).
const BACKWARD_FRACTION: f64 = 2.0 / 3.0;

/// TTA tolerance: a policy "reaches accuracy" at the first epoch whose
/// training loss is within 2% of the never-freeze baseline's final loss.
const TTA_TOLERANCE: f64 = 1.02;

/// The model families in the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// ResNet-style CIFAR classifier (the golden run's architecture).
    ResNet,
    /// MobileNetV2-style classifier.
    MobileNet,
    /// DeepLabv3-style segmenter.
    DeepLab,
    /// Encoder–decoder Transformer on synthetic translation.
    Transformer,
    /// BERT-style QA fine-tuning.
    BertTiny,
}

impl ModelFamily {
    /// Every family, in matrix order.
    pub fn all() -> [ModelFamily; 5] {
        [
            ModelFamily::ResNet,
            ModelFamily::MobileNet,
            ModelFamily::DeepLab,
            ModelFamily::Transformer,
            ModelFamily::BertTiny,
        ]
    }

    /// Stable short name (fingerprint files, report keys).
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::ResNet => "resnet",
            ModelFamily::MobileNet => "mobilenet",
            ModelFamily::DeepLab => "deeplab",
            ModelFamily::Transformer => "transformer",
            ModelFamily::BertTiny => "bert_tiny",
        }
    }
}

/// The policy axis of the matrix: the paper rule, the learned predictor,
/// the two baselines, and the regression-aware variant.
pub fn policy_matrix() -> [PolicyKind; 5] {
    [
        PolicyKind::Paper,
        PolicyKind::Learned,
        PolicyKind::Interval { every: 3 },
        PolicyKind::NeverFreeze,
        PolicyKind::RegressionAware,
    ]
}

/// One (policy, model) cell of the A/B matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Model family name.
    pub model: String,
    /// Policy name (plus period for interval).
    pub policy: String,
    /// Bit-exact fingerprint of the run (losses, timeline, counters).
    #[serde(skip)]
    pub fingerprint: String,
    /// Final-epoch training loss.
    pub final_loss: f32,
    /// First epoch (0-based) whose loss is within [`TTA_TOLERANCE`] of the
    /// never-freeze baseline's final loss; `None` if never reached.
    pub tta_epochs: Option<usize>,
    /// Mean fraction of training compute skipped across iterations
    /// (frozen-parameter share × backward fraction, full share when the
    /// cached-FP path also skipped the forward).
    pub compute_saved: f64,
    /// Mean fraction of gradient-synchronization traffic skipped (frozen
    /// parameter share per iteration).
    pub comm_skipped: f64,
    /// Activation-cache hit rate over cache lookups (0 when caching never
    /// engaged).
    pub cache_hit_rate: f64,
    /// Frozen-prefix length at the end of training.
    pub frozen_final: usize,
    /// Freeze events over the run.
    pub freezes: usize,
    /// Unfreeze events over the run.
    pub unfreezes: usize,
    /// Per-epoch loss curve (kept for TTA evaluation, not serialized).
    #[serde(skip)]
    pub curve: Vec<f32>,
}

/// One scenario: a family trained once under one policy.
pub fn run_scenario(family: ModelFamily, policy: PolicyKind) -> Result<ScenarioResult> {
    // Pin the scalar-ISA numerics (DESIGN §5g): fingerprints must not
    // depend on the host's SIMD support.
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let (mut trainer, data, loader) = build(family, policy);
    let module_params: Vec<usize> = trainer
        .model()
        .modules()
        .iter()
        .map(|m| m.param_count)
        .collect();
    let report = trainer.train(data.as_ref(), &loader, None)?;

    // Fingerprint: epoch losses bit-for-bit plus the decision timeline.
    let mut fp = String::new();
    let _ = writeln!(
        fp,
        "scenario fingerprint v1 model {} policy {}",
        family.name(),
        policy_label(policy)
    );
    for e in &report.epochs {
        let _ = writeln!(
            fp,
            "epoch {} loss 0x{:08x} ({:.6}) frozen {}",
            e.epoch,
            e.train_loss.to_bits(),
            e.train_loss,
            e.frozen_prefix
        );
    }
    for ev in &report.events {
        let _ = writeln!(fp, "event iter {} {} prefix {}", ev.iteration, ev.kind, ev.prefix);
    }

    // Compute/communication accounting from the per-iteration records.
    let total_params: usize = module_params.iter().sum();
    let mut compute = 0.0f64;
    let mut comm = 0.0f64;
    for it in &report.iterations {
        let frozen: usize = module_params
            .iter()
            .take(it.frozen_prefix as usize)
            .sum();
        let share = frozen as f64 / total_params.max(1) as f64;
        comm += share;
        compute += if it.fp_cached {
            share // Cached FP skips the prefix's forward AND backward.
        } else {
            share * BACKWARD_FRACTION
        };
    }
    let iters = report.iterations.len().max(1) as f64;
    let lookups = report.cache_stats.hits + report.cache_stats.misses;

    let final_loss = report.epochs.last().map(|e| e.train_loss).unwrap_or(f32::NAN);
    Ok(ScenarioResult {
        model: family.name().to_string(),
        policy: policy_label(policy),
        fingerprint: fp,
        final_loss,
        tta_epochs: None, // Filled in by `run_family` against the baseline.
        compute_saved: compute / iters,
        comm_skipped: comm / iters,
        cache_hit_rate: if lookups > 0 {
            report.cache_stats.hits as f64 / lookups as f64
        } else {
            0.0
        },
        frozen_final: report.epochs.last().map(|e| e.frozen_prefix).unwrap_or(0),
        freezes: report.events.iter().filter(|e| e.kind == "freeze").count(),
        unfreezes: report.events.iter().filter(|e| e.kind == "unfreeze").count(),
        curve: report.epochs.iter().map(|e| e.train_loss).collect(),
    })
}

/// Runs one family across the whole policy matrix; TTA is measured against
/// the never-freeze run of the same family.
pub fn run_family(family: ModelFamily) -> Result<Vec<ScenarioResult>> {
    // The baseline must run first: its final loss defines the TTA target.
    let baseline = run_scenario(family, PolicyKind::NeverFreeze)?;
    let target = baseline.final_loss as f64 * TTA_TOLERANCE;
    let mut out = Vec::new();
    for policy in policy_matrix() {
        let mut r = if policy == PolicyKind::NeverFreeze {
            baseline.clone()
        } else {
            run_scenario(family, policy)?
        };
        r.tta_epochs = r
            .curve
            .iter()
            .position(|&l| (l as f64) <= target);
        out.push(r);
    }
    Ok(out)
}

/// Runs the full 5×5 matrix.
pub fn run_matrix() -> Result<Vec<ScenarioResult>> {
    let mut out = Vec::new();
    for family in ModelFamily::all() {
        out.extend(run_family(family)?);
    }
    Ok(out)
}

/// Stable label for a policy cell (`interval` carries its period).
pub fn policy_label(policy: PolicyKind) -> String {
    match policy {
        PolicyKind::Interval { every } => format!("interval{every}"),
        other => other.name().to_string(),
    }
}

/// Fingerprint golden file name of a (family, policy) cell.
pub fn golden_file_name(family: ModelFamily, policy: PolicyKind) -> String {
    format!("{}_{}.txt", family.name(), policy_label(policy))
}

/// Writes the A/B report as JSON and CSV into `dir` (created if missing).
pub fn write_report(results: &[ScenarioResult], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let json = serde_json::to_string_pretty(&results).expect("report serializes");
    std::fs::write(dir.join("scenario_ab_report.json"), json)?;
    let mut csv = String::from(
        "model,policy,final_loss,tta_epochs,compute_saved,comm_skipped,\
         cache_hit_rate,frozen_final,freezes,unfreezes\n",
    );
    for r in results {
        let _ = writeln!(
            csv,
            "{},{},{:.6},{},{:.4},{:.4},{:.4},{},{},{}",
            r.model,
            r.policy,
            r.final_loss,
            r.tta_epochs.map(|t| t.to_string()).unwrap_or_default(),
            r.compute_saved,
            r.comm_skipped,
            r.cache_hit_rate,
            r.frozen_final,
            r.freezes,
            r.unfreezes
        );
    }
    std::fs::write(dir.join("scenario_ab_report.csv"), csv)
}

// ---------------------------------------------------------------------------
// Per-family scenario construction (fixed seeds, tiny configs)
// ---------------------------------------------------------------------------

type Scenario = (EgeriaTrainer, Box<dyn Dataset>, DataLoader);

fn egeria_cfg(policy: PolicyKind, n: usize, w: usize, s: usize, t: f32) -> EgeriaConfig {
    EgeriaConfig {
        n,
        w,
        s,
        t,
        bootstrap_rate: 0.9,
        reference_update_every: 4,
        policy,
        ..Default::default()
    }
}

fn build(family: ModelFamily, policy: PolicyKind) -> Scenario {
    match family {
        ModelFamily::ResNet => {
            let model = resnet_cifar(
                ResNetCifarConfig {
                    n: 2,
                    width: 4,
                    classes: 4,
                    ..Default::default()
                },
                7,
            );
            let data = SyntheticImages::new(
                ImageDataConfig {
                    samples: 64,
                    classes: 4,
                    size: 8,
                    noise: 0.3,
                    augment: true,
                },
                2,
            );
            let epochs = 8;
            let trainer = EgeriaTrainer::new(
                Box::new(model),
                Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
                Box::new(MultiStepDecay::new(0.05, 0.1, vec![5])) as Box<dyn LrSchedule>,
                TrainerOptions {
                    epochs,
                    egeria: Some(egeria_cfg(policy, 1, 3, 2, 5.0)),
                    ..Default::default()
                },
            );
            (trainer, Box::new(data), DataLoader::new(64, 16, 3, true))
        }
        ModelFamily::MobileNet => {
            let model = mobilenet_v2(
                MobileNetConfig {
                    width_div: 16,
                    classes: 4,
                    ..Default::default()
                },
                5,
            );
            let data = SyntheticImages::new(
                ImageDataConfig {
                    samples: 64,
                    classes: 4,
                    size: 8,
                    noise: 0.3,
                    augment: true,
                },
                4,
            );
            let epochs = 8;
            let trainer = EgeriaTrainer::new(
                Box::new(model),
                Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
                Box::new(MultiStepDecay::new(0.05, 0.1, vec![5])) as Box<dyn LrSchedule>,
                TrainerOptions {
                    epochs,
                    egeria: Some(egeria_cfg(policy, 1, 3, 2, 5.0)),
                    ..Default::default()
                },
            );
            (trainer, Box::new(data), DataLoader::new(64, 16, 5, true))
        }
        ModelFamily::DeepLab => {
            let model = deeplab_v3(
                DeepLabConfig {
                    stages: vec![1, 1, 1],
                    width: 4,
                    classes: 3,
                    ..Default::default()
                },
                6,
            );
            let data = SyntheticSegmentation::new(
                SegDataConfig {
                    samples: 48,
                    classes: 3,
                    size: 8,
                },
                7,
            );
            let epochs = 8;
            let trainer = EgeriaTrainer::new(
                Box::new(model),
                Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
                Box::new(MultiStepDecay::new(0.05, 0.1, vec![5])) as Box<dyn LrSchedule>,
                TrainerOptions {
                    epochs,
                    egeria: Some(egeria_cfg(policy, 1, 3, 2, 5.0)),
                    ..Default::default()
                },
            );
            (trainer, Box::new(data), DataLoader::new(48, 16, 7, true))
        }
        ModelFamily::Transformer => {
            let model = Seq2SeqTransformer::new("t", TransformerConfig::tiny(16), 5)
                .expect("transformer builds");
            let data = SyntheticTranslation::new(
                TranslationConfig {
                    samples: 48,
                    vocab: 16,
                    len: 6,
                },
                6,
            );
            let epochs = 8;
            let trainer = EgeriaTrainer::new(
                Box::new(model),
                Optimizer::Adam(Adam::new(3e-3, 0.0)),
                Box::new(InverseSqrt::new(3e-3, 30)) as Box<dyn LrSchedule>,
                TrainerOptions {
                    epochs,
                    egeria: Some(egeria_cfg(policy, 1, 4, 3, 2.5)),
                    lr_per_iteration: true,
                    ..Default::default()
                },
            );
            (trainer, Box::new(data), DataLoader::new(48, 16, 7, true))
        }
        ModelFamily::BertTiny => {
            let model = BertQa::new(
                "bert",
                BertConfig {
                    vocab: 16,
                    d_model: 16,
                    heads: 2,
                    d_ff: 32,
                    layers: 4,
                },
                9,
            )
            .expect("bert builds");
            let data = SyntheticQa::new(
                QaDataConfig {
                    samples: 48,
                    vocab: 16,
                    len: 10,
                    answer_len: 2,
                },
                10,
            );
            let epochs = 8;
            let trainer = EgeriaTrainer::new(
                Box::new(model),
                Optimizer::Adam(Adam::new(1e-3, 0.0)),
                Box::new(LinearDecay::new(1e-3, 200)) as Box<dyn LrSchedule>,
                TrainerOptions {
                    epochs,
                    egeria: Some(egeria_cfg(policy, 1, 4, 3, 2.5)),
                    lr_per_iteration: true,
                    ..Default::default()
                },
            );
            (trainer, Box::new(data), DataLoader::new(48, 16, 11, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_are_unique() {
        let labels: Vec<String> = policy_matrix().iter().map(|p| policy_label(*p)).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels collide: {labels:?}");
    }

    #[test]
    fn golden_file_names_follow_the_matrix_labels() {
        assert_eq!(
            golden_file_name(ModelFamily::BertTiny, PolicyKind::Interval { every: 3 }),
            "bert_tiny_interval3.txt"
        );
        assert_eq!(
            golden_file_name(ModelFamily::ResNet, PolicyKind::Paper),
            "resnet_paper.txt"
        );
    }
}
