//! Policy A/B matrix runner (CI gate + golden-blessing tool).
//!
//! Default mode runs the full 5×5 (policy × model-family) matrix, verifies
//! every fingerprint against `tests/golden/policies/`, checks that the
//! policies produce *distinct* fingerprints per family, and writes the A/B
//! report into `results/`. Exits nonzero on any mismatch.
//!
//! Bless mode (`--bless` or `EGERIA_BLESS=1`) rewrites the golden files
//! from the current run instead of comparing.

use egeria_scenarios::{
    golden_file_name, policy_label, policy_matrix, run_family, ModelFamily, ScenarioResult,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/scenarios → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn golden_dir() -> PathBuf {
    repo_root().join("tests").join("golden").join("policies")
}

fn main() -> ExitCode {
    // The trainer honors EGERIA_FREEZE_POLICY as a config override; inside
    // the matrix that would silently force every cell onto one policy.
    std::env::remove_var("EGERIA_FREEZE_POLICY");

    let bless = std::env::args().any(|a| a == "--bless") || std::env::var("EGERIA_BLESS").is_ok();

    let mut results: Vec<ScenarioResult> = Vec::new();
    for family in ModelFamily::all() {
        eprintln!("running family {} ({} policies)", family.name(), policy_matrix().len());
        match run_family(family) {
            Ok(r) => results.extend(r),
            Err(e) => {
                eprintln!("FAIL: family {} errored: {e:?}", family.name());
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failures = 0usize;

    // Per-family distinctness: every policy must leave a different
    // bit-exact trace, or the A/B comparison is measuring nothing. The
    // fingerprint header embeds the policy name, so compare the body
    // (everything after the first line) to catch real coincidences.
    for family in ModelFamily::all() {
        let mut bodies: HashMap<String, String> = HashMap::new();
        for r in results.iter().filter(|r| r.model == family.name()) {
            let body: String = r.fingerprint.lines().skip(1).collect::<Vec<_>>().join("\n");
            if let Some(prev) = bodies.insert(body, r.policy.clone()) {
                eprintln!(
                    "FAIL: policies {} and {} are indistinguishable on {}",
                    prev,
                    r.policy,
                    family.name()
                );
                failures += 1;
            }
        }
    }

    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        for family in ModelFamily::all() {
            for policy in policy_matrix() {
                let r = results
                    .iter()
                    .find(|r| r.model == family.name() && r.policy == policy_label(policy))
                    .expect("matrix is complete");
                let path = dir.join(golden_file_name(family, policy));
                std::fs::write(&path, &r.fingerprint).expect("write golden");
                eprintln!("blessed {}", path.display());
            }
        }
    } else {
        for family in ModelFamily::all() {
            for policy in policy_matrix() {
                let r = results
                    .iter()
                    .find(|r| r.model == family.name() && r.policy == policy_label(policy))
                    .expect("matrix is complete");
                let path = dir.join(golden_file_name(family, policy));
                match std::fs::read_to_string(&path) {
                    Ok(expected) if expected == r.fingerprint => {}
                    Ok(_) => {
                        eprintln!(
                            "FAIL: fingerprint drift for ({}, {}) vs {}\n\
                             regenerate intentionally with: cargo run --release --bin scenario_ab -- --bless",
                            family.name(),
                            r.policy,
                            path.display()
                        );
                        failures += 1;
                    }
                    Err(e) => {
                        eprintln!(
                            "FAIL: cannot read {}: {e}\nfirst run? bless with: cargo run --release --bin scenario_ab -- --bless",
                            path.display()
                        );
                        failures += 1;
                    }
                }
            }
        }
    }

    let results_dir = repo_root().join("results");
    if let Err(e) = egeria_scenarios::write_report(&results, &results_dir) {
        eprintln!("FAIL: cannot write report into {}: {e}", results_dir.display());
        failures += 1;
    } else {
        eprintln!(
            "wrote {} and .csv ({} cells)",
            results_dir.join("scenario_ab_report.json").display(),
            results.len()
        );
    }

    // Human-readable A/B summary.
    eprintln!("\n{:<12} {:<10} {:>10} {:>5} {:>8} {:>8}", "model", "policy", "final", "tta", "saved", "comm");
    for r in &results {
        eprintln!(
            "{:<12} {:<10} {:>10.6} {:>5} {:>7.1}% {:>7.1}%",
            r.model,
            r.policy,
            r.final_loss,
            r.tta_epochs.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            r.compute_saved * 100.0,
            r.comm_skipped * 100.0
        );
    }

    if failures > 0 {
        eprintln!("\n{failures} failure(s)");
        return ExitCode::FAILURE;
    }
    eprintln!("\nscenario matrix OK");
    ExitCode::SUCCESS
}
