//! Quickstart: train a small ResNet with Egeria's knowledge-guided layer
//! freezing on synthetic data.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the paper's minimal-code-change workflow: wrap the model in
//! `EgeriaModule`, create an `EgeriaController`, train, and watch the
//! frozen prefix grow while accuracy holds.
//!
//! Set `EGERIA_TRACE=<prefix>` to record the run's telemetry:
//! `<prefix>.jsonl` (the schema the `trace_report` binary summarizes) and
//! `<prefix>.chrome.json` (loadable in `chrome://tracing` / Perfetto).

use egeria_core::{EgeriaConfig, EgeriaController, EgeriaModule, Telemetry};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model: CIFAR-style ResNet-20, width-reduced for CPU training.
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 3,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        42,
    );

    // 2. Wrap it for Egeria (the paper's `EgeriaModule(arch, args, ...)`).
    let module = EgeriaModule::wrap(Box::new(model));
    println!("layer modules:");
    for m in module.modules() {
        println!("  {:24} {:>8} params", m.name, m.param_count);
    }

    // 3. A controller with the knowledge-guided training configuration.
    // EGERIA_TRACE=<prefix> attaches a telemetry recorder to the run.
    let trace_prefix = std::env::var("EGERIA_TRACE").ok();
    let telemetry = if trace_prefix.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let controller = EgeriaController::new(EgeriaConfig {
        n: 4,            // plasticity evaluation every 4 iterations
        w: 8,            // smoothing / linear-fit window
        s: 8,            // consecutive flat slopes required to freeze
        t: 2e-4,         // slope tolerance
        ..Default::default()
    })
    .with_telemetry(telemetry.clone());

    // 4. Data: a deterministic synthetic image-classification set.
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 256,
            classes: 8,
            size: 10,
            noise: 0.5,
            augment: true,
        },
        7,
    );
    let val = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 8,
            size: 10,
            noise: 0.5,
            augment: false,
        },
        7,
    );
    let loader = DataLoader::new(256, 16, 1, true);
    let val_loader = DataLoader::new(64, 16, 0, false);

    // 5. Train with SGD + step decay, exactly like plain training.
    let mut trainer = controller.into_trainer(
        module,
        egeria_core::trainer::Optimizer::Sgd(Sgd::new(0.1, 0.9, 1e-4)),
        Box::new(MultiStepDecay::new(0.1, 0.1, vec![15, 22])),
        30,
        false,
    );
    let report = trainer.train(&data, &loader, Some((&val, &val_loader)))?;

    println!("\nepoch  loss    val_acc  frozen  active_params");
    for e in &report.epochs {
        println!(
            "{:5}  {:.4}  {:>7.3}  {:>6}  {:>12.1}%",
            e.epoch,
            e.train_loss,
            e.val_metric.unwrap_or(f32::NAN),
            e.frozen_prefix,
            e.active_param_fraction * 100.0
        );
    }
    println!("\nfreeze/unfreeze events: {:?}", report.events);
    println!(
        "cache: {} hits, {} misses, {} bytes live on disk",
        report.cache_stats.hits, report.cache_stats.misses, report.cache_stats.disk_bytes_live
    );

    if let Some(prefix) = trace_prefix {
        let jsonl_path = format!("{prefix}.jsonl");
        let chrome_path = format!("{prefix}.chrome.json");
        std::fs::write(&jsonl_path, egeria_obs::export::export_jsonl(&telemetry))?;
        std::fs::write(&chrome_path, egeria_obs::export::export_chrome_trace(&telemetry))?;
        println!("\ntrace written: {jsonl_path} (+ {chrome_path})");
        println!("summarize with: cargo run --release --bin trace_report -- {jsonl_path}");
    }
    Ok(())
}
