//! Machine translation with encoder freezing.
//!
//! ```text
//! cargo run --release --example translation_freezing
//! ```
//!
//! Trains a Transformer-Tiny on a synthetic cipher-translation corpus with
//! Egeria. Per the paper's Table 1, Transformer front *encoders* converge
//! first and get frozen; the balanced encoder/decoder structure is why the
//! paper sees its largest speedups (up to 43%) on translation.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_data::translation::{SyntheticTranslation, TranslationConfig};
use egeria_data::DataLoader;
use egeria_models::transformer::{Seq2SeqTransformer, TransformerConfig};
use egeria_nn::loss::perplexity;
use egeria_nn::optim::Adam;
use egeria_nn::sched::InverseSqrt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = 32;
    let model = Seq2SeqTransformer::new("tiny", TransformerConfig::tiny(vocab), 42)?;
    let data = SyntheticTranslation::new(
        TranslationConfig {
            samples: 256,
            vocab,
            len: 10,
        },
        3,
    );
    let val = SyntheticTranslation::new(
        TranslationConfig {
            samples: 64,
            vocab,
            len: 10,
        },
        4,
    );
    let loader = DataLoader::new(256, 16, 1, true);
    let val_loader = DataLoader::new(64, 16, 0, false);

    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Adam(Adam::new(3e-3, 0.0)),
        Box::new(InverseSqrt::new(3e-3, 40)),
        TrainerOptions {
            epochs: 25,
            egeria: Some(EgeriaConfig {
                n: 4,
                w: 10,
                s: 10,
                t: 2e-4,
                ..Default::default()
            }),
            lr_per_iteration: true,
            ..Default::default()
        },
    );
    let report = trainer.train(&data, &loader, Some((&val, &val_loader)))?;
    println!("epoch  train_loss  val_perplexity  frozen_modules");
    for e in &report.epochs {
        println!(
            "{:5}  {:>10.4}  {:>14.3}  {:>6}",
            e.epoch,
            e.train_loss,
            e.val_loss.map(perplexity).unwrap_or(f32::NAN),
            e.frozen_prefix,
        );
    }
    let frozen_encoders = report
        .epochs
        .last()
        .map(|e| e.frozen_prefix.min(2))
        .unwrap_or(0);
    println!("\nfrozen encoder blocks at the end: {frozen_encoders} of 2");
    Ok(())
}
