//! Reference-model serving: plasticity probes answered by the
//! `egeria-serve` engine instead of inline forwards.
//!
//! ```text
//! cargo run --release --example reference_serving
//! ```
//!
//! Publishes versioned snapshots of a reference model (fp32, then an int8
//! re-generation), drives the engine with several concurrent probe
//! clients, and reports what the serving layer did: the live snapshot
//! version, how requests coalesced into batches, and the client-measured
//! probe latency distribution (p50/p95/p99).
//!
//! Tuning knobs: `EGERIA_SERVE_WORKERS`, `EGERIA_SERVE_MAX_BATCH`,
//! `EGERIA_SERVE_MAX_WAIT_US`, `EGERIA_SERVE_QUEUE`.
//!
//! Set `EGERIA_TRACE=<prefix>` to record the run's telemetry:
//! `<prefix>.jsonl` (summarized by `trace_report`, including its
//! "serve batches" section) and `<prefix>.chrome.json` (Perfetto).

use egeria_core::Telemetry;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Targets};
use egeria_quant::Precision;
use egeria_serve::{ProbeRequest, RealClock, ServeConfig, ServeEngine};
use egeria_tensor::{Rng, Tensor};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 4;
const PROBES_PER_CLIENT: usize = 32;

fn probe_batch(rng: &mut Rng, rows: usize) -> Batch {
    Batch {
        input: Input::Image(Tensor::randn(&[rows, 3, 8, 8], rng)),
        targets: Targets::Classes((0..rows).map(|i| i % 8).collect()),
        sample_ids: (0..rows as u64).collect(),
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_prefix = std::env::var("EGERIA_TRACE").ok();
    let telemetry = if trace_prefix.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    // 1. A reference model, published as an immutable serving snapshot.
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        42,
    );
    let cfg = ServeConfig::from_env();
    println!(
        "serve config: {} worker(s), max_batch {}, max_wait {:?}, queue {}",
        cfg.workers, cfg.max_batch, cfg.max_wait, cfg.queue_depth
    );
    let engine = Arc::new(ServeEngine::new(cfg, RealClock::shared(), telemetry.clone()));
    engine.publish(&model, Precision::F32)?;
    println!("published fp32 snapshot: version {}", engine.registry().version());

    // 2. Concurrent probe clients. Each submits its probe and waits on the
    // ticket without forcing a flush, so requests arriving close together
    // coalesce under the engine's flush-on-full / flush-on-deadline policy.
    let run = |engine: &Arc<ServeEngine>| -> (Vec<u64>, BTreeMap<usize, u64>, u64) {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(engine);
                std::thread::spawn(move || {
                    let mut rng = Rng::new(100 + c as u64);
                    let mut latencies_us = Vec::new();
                    let mut batch_sizes = BTreeMap::new();
                    let mut shed = 0u64;
                    for i in 0..PROBES_PER_CLIENT {
                        let batch = probe_batch(&mut rng, 2);
                        let module = i % 3;
                        let start = Instant::now();
                        let ticket = match engine.submit(ProbeRequest {
                            batch,
                            module,
                            deadline: None,
                        }) {
                            Ok(t) => t,
                            Err(_) => {
                                shed += 1;
                                continue;
                            }
                        };
                        match ticket.wait() {
                            Ok(resp) => {
                                latencies_us.push(start.elapsed().as_micros() as u64);
                                *batch_sizes.entry(resp.batch_size).or_insert(0) += 1;
                            }
                            Err(_) => shed += 1,
                        }
                    }
                    (latencies_us, batch_sizes, shed)
                })
            })
            .collect();
        let mut latencies = Vec::new();
        let mut sizes: BTreeMap<usize, u64> = BTreeMap::new();
        let mut shed = 0;
        for h in handles {
            let (l, s, d) = h.join().expect("client thread panicked");
            latencies.extend(l);
            for (size, count) in s {
                *sizes.entry(size).or_insert(0) += count;
            }
            shed += d;
        }
        latencies.sort_unstable();
        (latencies, sizes, shed)
    };

    let (latencies, sizes, shed) = run(&engine);
    println!(
        "\n{} probes answered by snapshot v{} ({} shed)",
        latencies.len(),
        engine.registry().version(),
        shed
    );
    println!("batch-size distribution (requests per executed batch):");
    for (size, count) in &sizes {
        println!("  size {size:>3}: {count:>4} responses");
    }
    println!(
        "probe latency: p50 {} us, p95 {} us, p99 {} us",
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0)
    );

    // 3. The trainer re-generates the reference model over time; serving
    // picks the new version up atomically while in-flight probes finish
    // against the version they were admitted under.
    engine.publish(&model, Precision::Int8)?;
    println!(
        "\nre-published as int8: version {} now live",
        engine.registry().version()
    );
    let (latencies, _, _) = run(&engine);
    println!(
        "int8 probes: {} answered, p99 {} us",
        latencies.len(),
        percentile(&latencies, 99.0)
    );

    if let Some(prefix) = trace_prefix {
        let jsonl_path = format!("{prefix}.jsonl");
        let chrome_path = format!("{prefix}.chrome.json");
        std::fs::write(&jsonl_path, egeria_obs::export::export_jsonl(&telemetry))?;
        std::fs::write(&chrome_path, egeria_obs::export::export_chrome_trace(&telemetry))?;
        println!("\ntrace written: {jsonl_path} (+ {chrome_path})");
        println!("summarize with: cargo run --release --bin trace_report -- {jsonl_path}");
    }
    Ok(())
}
