//! ResNet-56 image classification with the full Egeria pipeline, including
//! the asynchronous controller and activation caching.
//!
//! ```text
//! cargo run --release --example image_classification
//! ```
//!
//! This is the paper's headline CV scenario: the controller evaluates
//! plasticity against an int8 reference on a separate thread (IQ/ROQ/TOQ
//! queues), converged front modules freeze, their activations get cached to
//! disk, and later epochs skip the frozen forward pass via prefetch.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::{config::ControllerMode, EgeriaConfig};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 9, // 6·9+2 = 56 layers, the paper's CIFAR model
            width: 4,
            classes: 8,
            ..Default::default()
        },
        42,
    );
    println!("{} layer modules:", model.network().num_blocks());
    for m in egeria_models::Model::modules(&model) {
        println!("  {:28} {:>8} params", m.name, m.param_count);
    }
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 320,
            classes: 8,
            size: 10,
            noise: 0.5,
            augment: true,
        },
        11,
    );
    let val = SyntheticImages::new(
        ImageDataConfig {
            samples: 96,
            classes: 8,
            size: 10,
            noise: 0.5,
            augment: false,
        },
        11,
    );
    let loader = DataLoader::new(320, 16, 13, true);
    let val_loader = DataLoader::new(96, 16, 0, false);
    let epochs = 40;
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.1, 0.9, 1e-4)),
        Box::new(MultiStepDecay::new(0.1, 0.1, vec![epochs / 2, epochs * 3 / 4])),
        TrainerOptions {
            epochs,
            egeria: Some(EgeriaConfig {
                n: 5,
                w: 12,
                s: 12,
                t: 1e-4,
                controller: ControllerMode::Async,
                cpu_load_gate: 4.0, // Single-core demo box: don't gate.
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let report = trainer.train(&data, &loader, Some((&val, &val_loader)))?;
    println!("\nepoch  loss    val_acc  frozen  cached_iters");
    for e in &report.epochs {
        let cached = report
            .iterations
            .iter()
            .filter(|i| i.epoch as usize == e.epoch && i.fp_cached)
            .count();
        println!(
            "{:5}  {:.4}  {:>7.3}  {:>6}  {:>6}",
            e.epoch,
            e.train_loss,
            e.val_metric.unwrap_or(f32::NAN),
            e.frozen_prefix,
            cached
        );
    }
    println!("\nevents: {:?}", report.events);
    println!(
        "cache: {} hits / {} misses, {:.1} KiB live on disk",
        report.cache_stats.hits,
        report.cache_stats.misses,
        report.cache_stats.disk_bytes_live as f64 / 1024.0
    );
    Ok(())
}
