//! Crash-consistent checkpoint/resume: kill training mid-run, then resume
//! from the newest valid checkpoint and finish with the same freezing
//! timeline an uninterrupted run would have produced.
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```
//!
//! The "crash" is injected with the deterministic fault harness
//! (`egeria_core::faults`) — the same mechanism the robustness tests use —
//! so the example is reproducible end to end.

use egeria_core::checkpoint::CheckpointOptions;
use egeria_core::faults::{FaultAction, FaultInjector, FaultSite};
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use std::path::PathBuf;
use std::sync::Arc;

const EPOCHS: usize = 10;

fn make_trainer(
    ckpt_dir: PathBuf,
    faults: Option<Arc<FaultInjector>>,
) -> EgeriaTrainer {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    let cfg = EgeriaConfig {
        n: 2,
        w: 3,
        s: 2,
        t: 5.0,
        bootstrap_rate: 0.9,
        ..Default::default()
    };
    EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![usize::MAX])),
        TrainerOptions {
            epochs: EPOCHS,
            egeria: Some(cfg),
            // Checkpoint every epoch, keep the 3 newest files. On startup
            // the trainer auto-resumes from the newest valid one.
            checkpoint: Some(CheckpointOptions {
                dir: ckpt_dir,
                every: 1,
                keep: 3,
            }),
            faults,
            ..Default::default()
        },
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ckpt_dir = std::env::temp_dir().join(format!(
        "egeria_example_ckpt_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        11,
    );
    let loader = DataLoader::new(64, 16, 13, true);

    // ---- Run 1: crashes mid-epoch -------------------------------------
    // The injector kills training at its 25th step (epoch 6), after the
    // first freeze decisions have landed and been checkpointed.
    let faults = FaultInjector::new();
    faults.arm(FaultSite::TrainStep, 25, 1, FaultAction::Fail);
    let mut run1 = make_trainer(ckpt_dir.clone(), Some(faults));
    println!("run 1: training until the injected crash ...");
    match run1.train(&data, &loader, None) {
        Ok(_) => println!("  unexpectedly completed"),
        Err(e) => println!("  crashed as planned: {e}"),
    }
    drop(run1); // The process is gone; only the checkpoint files survive.

    // ---- Run 2: a fresh trainer, same checkpoint directory ------------
    let mut run2 = make_trainer(ckpt_dir.clone(), None);
    println!("run 2: resuming from {} ...", ckpt_dir.display());
    let report = run2.train(&data, &loader, None)?;
    println!(
        "  resumed from epoch {} and finished all {} epochs",
        report.resumed_from_epoch.unwrap_or(0),
        report.epochs.len()
    );
    println!("  freezing timeline (iteration, event, prefix):");
    for e in &report.events {
        println!("    iter {:>3}  {:9}  prefix {}", e.iteration, e.kind, e.prefix);
    }
    println!(
        "  final train loss {:.4}, final frozen prefix {}",
        report.epochs.last().map(|e| e.train_loss).unwrap_or(f32::NAN),
        report.epochs.last().map(|e| e.frozen_prefix).unwrap_or(0)
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}
