//! Distributed-training what-if analysis with the performance simulator.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```
//!
//! Trains a ResNet with Egeria once (locally, CPU), then costs the same
//! freezing trace on the paper's V100 clusters at 1–5 nodes under vanilla
//! and ByteScheduler-style communication scheduling, showing how freezing
//! removes gradient synchronization for converged modules.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::Model;
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use egeria_simsys::arch::{FlopsModel, PaperScale};
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::CommPolicy;
use egeria_simsys::tta::{throughput, IterTrace};
use egeria_simsys::ArchSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 4,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        42,
    );
    let module_params: Vec<usize> = model.modules().iter().map(|m| m.param_count).collect();
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 192,
            classes: 8,
            size: 10,
            noise: 0.5,
            augment: true,
        },
        5,
    );
    let loader = DataLoader::new(192, 16, 3, true);
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.1, 0.9, 1e-4)),
        Box::new(MultiStepDecay::new(0.1, 0.1, vec![100])),
        TrainerOptions {
            epochs: 20,
            egeria: Some(EgeriaConfig {
                n: 4,
                w: 8,
                s: 8,
                t: 2e-4,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    println!("training the freezing trace locally...");
    let report = trainer.train(&data, &loader, None)?;
    let trace: Vec<IterTrace> = report
        .iterations
        .iter()
        .map(|i| IterTrace {
            epoch: i.epoch,
            frozen_prefix: i.frozen_prefix,
            fp_cached: i.fp_cached,
        })
        .collect();
    let baseline: Vec<IterTrace> = trace
        .iter()
        .map(|t| IterTrace {
            frozen_prefix: 0,
            fp_cached: false,
            ..*t
        })
        .collect();
    // Cost the trace at ImageNet/ResNet-50 scale.
    let arch = ArchSpec::scaled(
        "resnet50",
        &module_params,
        None,
        FlopsModel::PerBlockUniform,
        PaperScale::resnet50_imagenet(),
    );
    println!("\nnodes  baseline(sps)  bytescheduler(sps)  egeria(sps)  egeria_gain");
    for nodes in 1..=5 {
        let cluster = ClusterSpec::v100_cluster(nodes);
        let base = throughput(&arch, &cluster, &baseline, 16, CommPolicy::Vanilla);
        let bs = throughput(&arch, &cluster, &baseline, 16, CommPolicy::ByteScheduler);
        let eg = throughput(&arch, &cluster, &trace, 16, CommPolicy::Vanilla);
        println!(
            "{nodes:5}  {base:13.0}  {bs:18.0}  {eg:11.0}  {:+9.1}%",
            (eg / base - 1.0) * 100.0
        );
    }
    Ok(())
}
