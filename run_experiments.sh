#!/bin/sh
# Regenerates every table and figure (see DESIGN.md experiment index).
set -x
for bin in table1_tta_summary fig09_time_to_accuracy fig12_freeze_timeline \
           fig02_premature_freezing fig01_pwcca_convergence fig04_plasticity_trend \
           fig07_reference_update fig15_16_heatmaps fig10_breakdown \
           fig11_distributed table2_reference_precision fig13_w_sensitivity \
           gradnorm_baseline \
           overhead_report; do
  ./target/release/$bin > results/${bin}.log 2>&1 || echo "FAILED: $bin" >> results/failures.txt
done
echo ALL_EXPERIMENTS_DONE
