//! End-to-end integration: the full Egeria pipeline against the baseline.

use egeria_core::config::UnfreezePolicy;
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;

fn setup(
    egeria: Option<EgeriaConfig>,
    epochs: usize,
    decay_at: Vec<usize>,
) -> (EgeriaTrainer, SyntheticImages, SyntheticImages, DataLoader, DataLoader) {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 3,
            width: 4,
            classes: 6,
            ..Default::default()
        },
        21,
    );
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 128,
            classes: 6,
            size: 8,
            noise: 0.4,
            augment: true,
        },
        31,
    );
    let val = SyntheticImages::new(
        ImageDataConfig {
            samples: 48,
            classes: 6,
            size: 8,
            noise: 0.4,
            augment: false,
        },
        31,
    );
    let loader = DataLoader::new(128, 16, 41, true);
    let val_loader = DataLoader::new(48, 16, 0, false);
    let trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.08, 0.9, 1e-4)),
        Box::new(MultiStepDecay::new(0.08, 0.1, decay_at)),
        TrainerOptions {
            epochs,
            egeria,
            ..Default::default()
        },
    );
    (trainer, data, val, loader, val_loader)
}

fn egeria_cfg() -> EgeriaConfig {
    EgeriaConfig {
        n: 3,
        w: 6,
        s: 6,
        t: 2.0,
        bootstrap_rate: 0.3,
        ..Default::default()
    }
}

#[test]
fn egeria_freezes_front_module_first_and_learns() {
    let (mut t, data, val, loader, val_loader) = setup(Some(egeria_cfg()), 25, vec![1000]);
    let report = t.train(&data, &loader, Some((&val, &val_loader))).unwrap();
    // Learning happened.
    let first = report.epochs.first().unwrap().train_loss;
    let last = report.epochs.last().unwrap().train_loss;
    assert!(last < first * 0.7, "loss {first} → {last}");
    // Something froze, and the first freeze was the front module.
    let first_freeze = report
        .events
        .iter()
        .find(|e| e.kind == "freeze")
        .expect("a module must freeze in 25 epochs");
    assert_eq!(first_freeze.prefix, 1);
    // The frozen prefix grew monotonically (no unfreeze was scheduled).
    let mut prev = 0u16;
    for i in &report.iterations {
        assert!(i.frozen_prefix >= prev);
        prev = i.frozen_prefix;
    }
}

#[test]
fn egeria_accuracy_stays_near_baseline() {
    let (mut bt, data, val, loader, val_loader) = setup(None, 25, vec![1000]);
    let base = bt.train(&data, &loader, Some((&val, &val_loader))).unwrap();
    let (mut et, data, val, loader, val_loader) = setup(Some(egeria_cfg()), 25, vec![1000]);
    let eg = et.train(&data, &loader, Some((&val, &val_loader))).unwrap();
    let best = |r: &egeria_core::TrainReport| {
        r.epochs
            .iter()
            .filter_map(|e| e.val_metric)
            .fold(0.0f32, f32::max)
    };
    let b = best(&base);
    let e = best(&eg);
    assert!(
        e >= b - 0.1,
        "egeria best acc {e} fell more than 10 points below baseline {b}"
    );
}

#[test]
fn lr_decay_unfreezes_then_refreezes() {
    let (mut t, data, val, loader, val_loader) = setup(Some(egeria_cfg()), 30, vec![15]);
    let report = t.train(&data, &loader, Some((&val, &val_loader))).unwrap();
    let unfreeze = report.events.iter().position(|e| e.kind == "unfreeze");
    if let Some(pos) = unfreeze {
        // After an unfreeze the prefix restarts from zero and may grow again.
        let after = &report.events[pos + 1..];
        if let Some(refreeze) = after.iter().find(|e| e.kind == "freeze") {
            assert_eq!(refreeze.prefix, 1, "refreezing must restart at the front");
        }
    } else {
        // The LR decay must at minimum have been scheduled; if nothing froze
        // before it, no unfreeze is expected — assert the premise instead.
        assert!(
            report.events.iter().all(|e| e.kind != "freeze")
                || report
                    .events
                    .iter()
                    .find(|e| e.kind == "freeze")
                    .map(|e| e.iteration > 15 * 8)
                    .unwrap_or(false),
            "a pre-decay freeze without a later unfreeze: events {:?}",
            report.events
        );
    }
}

#[test]
fn never_unfreeze_policy_keeps_prefix_after_decay() {
    let cfg = EgeriaConfig {
        unfreeze: UnfreezePolicy::Never,
        ..egeria_cfg()
    };
    let (mut t, data, val, loader, val_loader) = setup(Some(cfg), 30, vec![12]);
    let report = t.train(&data, &loader, Some((&val, &val_loader))).unwrap();
    assert!(report.events.iter().all(|e| e.kind != "unfreeze"));
}

#[test]
fn disabled_cache_still_trains_and_freezes() {
    let cfg = EgeriaConfig {
        cache_fp: false,
        ..egeria_cfg()
    };
    let (mut t, data, val, loader, val_loader) = setup(Some(cfg), 20, vec![1000]);
    let report = t.train(&data, &loader, Some((&val, &val_loader))).unwrap();
    assert!(report.iterations.iter().all(|i| !i.fp_cached));
    assert_eq!(report.cache_stats.hits, 0);
}
