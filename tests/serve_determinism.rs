//! Serving determinism: batched execution is bit-identical to singleton
//! execution, however requests coalesce (DESIGN.md §5e).
//!
//! This is the contract that makes `EGERIA_SERVE` safe to leave on: a
//! plasticity probe answered through the serve engine must produce the
//! same activation bits as the inline reference forward it replaced,
//! regardless of how the micro-batcher groups it with other probes, at
//! any precision and any `EGERIA_THREADS` setting (the tensor pool's
//! fixed-geometry partitioning carries the thread-count half of the
//! claim; these tests carry the coalescing half).

use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_quant::{quantize_reference, Precision};
use egeria_serve::engine::ProbeRequest;
use egeria_serve::{exec, RealClock, ServeConfig, ServeEngine, VirtualClock};
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn model() -> impl Model {
    resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        77,
    )
}

fn image_batch(rng: &mut Rng, rows: usize) -> Batch {
    Batch {
        input: Input::Image(Tensor::randn(&[rows, 3, 8, 8], rng)),
        targets: Targets::Classes((0..rows).map(|i| i % 4).collect()),
        sample_ids: (0..rows as u64).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exec level: any partition of probe requests, coalesced through
    /// merge → one forward → split, equals singleton forwards bit for bit
    /// at both serving precisions.
    #[test]
    fn any_coalescing_is_bit_identical_to_singletons(
        seed in any::<u64>(),
        n_requests in 2usize..6,
        module in 0usize..3,
    ) {
        let mut rng = Rng::new(seed);
        let parts: Vec<Batch> = (0..n_requests)
            .map(|_| { let rows = 1 + rng.below(3); image_batch(&mut rng, rows) })
            .collect();
        let refs: Vec<&Batch> = parts.iter().collect();
        for precision in [Precision::F32, Precision::Int8] {
            let m = model();
            let mut grouped_model = quantize_reference(&m, precision).unwrap();
            let mut merged = false;
            let grouped =
                exec::execute_group(grouped_model.as_mut(), module, &refs, &mut merged)
                    .unwrap();
            prop_assert!(merged, "same-geometry image probes must coalesce");
            let mut singleton_model = quantize_reference(&m, precision).unwrap();
            for (part, got) in refs.iter().zip(&grouped) {
                let want = singleton_model.capture_activation(part, module).unwrap();
                prop_assert_eq!(
                    got.data(), want.data(),
                    "coalesced != singleton at {:?} module {}", precision, module
                );
            }
        }
    }

    /// Engine level: N probes submitted through the full admission →
    /// batcher → worker path, under a randomized batching policy, resolve
    /// to the same bits as sequential inline captures.
    #[test]
    fn engine_path_matches_inline_under_any_policy(
        seed in any::<u64>(),
        n_requests in 2usize..6,
        max_batch in 1usize..5,
        workers in 1usize..3,
    ) {
        let mut rng = Rng::new(seed);
        let parts: Vec<Batch> = (0..n_requests)
            .map(|_| { let rows = 1 + rng.below(3); image_batch(&mut rng, rows) })
            .collect();
        for precision in [Precision::F32, Precision::Int8] {
            let m = model();
            let engine = ServeEngine::new(
                ServeConfig {
                    workers,
                    max_batch,
                    max_wait: Duration::from_secs(10),
                    ..ServeConfig::default()
                },
                RealClock::shared(),
                egeria_obs::Telemetry::disabled(),
            );
            engine.publish(&m, precision).unwrap();
            let tickets: Vec<_> = parts
                .iter()
                .map(|b| {
                    engine
                        .submit(ProbeRequest { batch: b.clone(), module: 1, deadline: None })
                        .unwrap()
                })
                .collect();
            engine.flush();
            let mut inline = quantize_reference(&m, precision).unwrap();
            for (part, ticket) in parts.iter().zip(tickets) {
                let got = ticket.wait().unwrap();
                let want = inline.capture_activation(part, 1).unwrap();
                prop_assert_eq!(
                    got.activation.data(), want.data(),
                    "engine != inline at {:?} max_batch {}", precision, max_batch
                );
            }
        }
    }
}

/// Flush-on-deadline through the whole engine, timed by a virtual clock:
/// an under-full group executes once virtual time passes `max_wait`, and
/// not because wall time elapsed (wall waits only wake the dispatcher to
/// re-read the virtual clock).
#[test]
fn engine_flushes_on_virtual_deadline() {
    let clock = VirtualClock::shared();
    let engine = ServeEngine::new(
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn egeria_serve::Clock>,
        egeria_obs::Telemetry::disabled(),
    );
    let m = model();
    engine.publish(&m, Precision::F32).unwrap();
    let mut rng = Rng::new(5);
    let ticket = engine
        .submit(ProbeRequest { batch: image_batch(&mut rng, 2), module: 0, deadline: None })
        .unwrap();
    // Group of 1 out of 64: only the (virtual) deadline can flush it. The
    // submission races with the dispatcher's receive, so a single advance
    // could land before the group forms (leaving its deadline forever in
    // the virtual future); keep nudging the clock until the flush fires.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let advancer = {
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop);
        // egeria-lint: allow(determinism): test thread driving the virtual
        // clock past the batch deadline.
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                clock.advance_us(1_000);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let resp = ticket.wait().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    advancer.join().unwrap();
    assert_eq!(resp.batch_size, 1);
    assert_eq!(resp.snapshot_version, 1);
}

/// Shed-on-overflow through the whole engine: with the submission queue
/// saturated (no dispatcher progress while the virtual clock is stalled
/// and nothing flushes), admission fails typed instead of blocking.
#[test]
fn engine_sheds_when_submission_queue_overflows() {
    let clock = VirtualClock::shared();
    let engine = ServeEngine::new(
        ServeConfig {
            max_batch: 1024,
            max_wait: Duration::from_secs(3600),
            queue_depth: 4,
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn egeria_serve::Clock>,
        egeria_obs::Telemetry::disabled(),
    );
    let m = model();
    engine.publish(&m, Precision::F32).unwrap();
    let mut rng = Rng::new(6);
    // Far more submissions than queue_depth (4) + the batcher's pending
    // budget (2 × queue_depth = 8). A shed surfaces either at admission
    // (submission queue full) or on the ticket (batcher budget full) —
    // which one depends on dispatcher drain timing, but every request
    // beyond the bounded budgets must shed with the typed Overloaded
    // error, and nothing may block.
    let mut admission_sheds = 0;
    let mut tickets = Vec::new();
    for _ in 0..64 {
        match engine.submit(ProbeRequest {
            batch: image_batch(&mut rng, 1),
            module: 0,
            deadline: None,
        }) {
            Ok(t) => tickets.push(t),
            Err(egeria_serve::ServeError::Overloaded { .. }) => admission_sheds += 1,
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    engine.flush();
    clock.advance_us(10);
    let mut successes = 0;
    let mut ticket_sheds = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => successes += 1,
            Err(egeria_serve::ServeError::Overloaded { .. }) => ticket_sheds += 1,
            Err(other) => panic!("expected success or Overloaded, got {other}"),
        }
    }
    assert!(
        successes <= 12,
        "at most queue_depth + pending budget can be in flight, got {successes}"
    );
    assert_eq!(admission_sheds + ticket_sheds, 64 - successes);
    assert!(
        admission_sheds + ticket_sheds >= 52,
        "everything beyond the bounded budgets must shed"
    );
}
