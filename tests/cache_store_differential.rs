//! Flat-vs-chunked differential: the cache v2 backend must be invisible
//! to training.
//!
//! Two fixed-seed training runs that differ **only** in
//! `EgeriaConfig::cache_store` (flat files vs the chunked/compressed
//! egeria-store layout, lossless codec) must produce bit-identical loss
//! curves, identical freeze-decision timelines, and identical cache
//! hit/miss/corrupt counters. This is the lossless-is-bit-exact rule of
//! DESIGN §5j exercised through the whole trainer rather than the codec
//! unit tests: compression may change how bytes rest on disk, never which
//! f32 bits come back out of the frozen-prefix cache.
//!
//! The backends are selected programmatically (not via
//! `EGERIA_CACHE_STORE`) so parallel tests cannot race on process env.

use egeria_core::config::CacheStoreKind;
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainReport, TrainerOptions};
use egeria_core::{EgeriaConfig, Telemetry};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn cache_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "egeria_store_diff_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn run(store: CacheStoreKind, dir: &Path) -> (TrainReport, String) {
    // Same model/data/schedule as the golden run, pinned to scalar ISA so
    // the comparison is bit-level, not tolerance-level.
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    let telemetry = Telemetry::enabled();
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![5])),
        TrainerOptions {
            // Longer than the golden run: the frozen prefix must stabilise
            // for a few epochs so the cache serves *hits*, not just fills —
            // a hit-free differential would compare nothing.
            epochs: 14,
            egeria: Some(EgeriaConfig {
                n: 2,
                w: 3,
                s: 2,
                t: 5.0,
                bootstrap_rate: 0.9,
                reference_update_every: 4,
                cache_store: store,
                ..Default::default()
            }),
            cache_dir: Some(dir.to_path_buf()),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    );
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        2,
    );
    let loader = DataLoader::new(64, 16, 3, true);
    let report = trainer.train(&data, &loader, None).expect("run trains");

    // The comparable slice of the run: exact loss bits, the freeze/unfreeze
    // timeline, and the backend-independent cache counters.
    let mut fp = String::new();
    for e in &report.epochs {
        let _ = writeln!(
            fp,
            "epoch {} loss 0x{:08x} frozen {}",
            e.epoch,
            e.train_loss.to_bits(),
            e.frozen_prefix
        );
    }
    for ev in &report.events {
        let _ = writeln!(fp, "event iter {} {} prefix {}", ev.iteration, ev.kind, ev.prefix);
    }
    let snap = telemetry.metrics_snapshot();
    for (name, value) in &snap.counters {
        if name.starts_with("cache.hits")
            || name.starts_with("cache.misses")
            || name.starts_with("cache.corrupt")
            || name.starts_with("cache.write")
        {
            let _ = writeln!(fp, "counter {name} {value}");
        }
    }
    (report, fp)
}

#[test]
fn chunked_lossless_run_is_bit_identical_to_flat() {
    let flat_dir = cache_dir("flat");
    let chunked_dir = cache_dir("chunked");
    let (flat_report, flat_fp) = run(CacheStoreKind::Flat, &flat_dir);
    let (chunked_report, chunked_fp) = run(CacheStoreKind::Chunked, &chunked_dir);

    // The run must actually exercise the cached-FP path, or this test
    // compares nothing.
    assert!(
        flat_report.cache_stats.hits > 0,
        "flat run served no cache hits; differential is vacuous"
    );
    assert!(
        flat_fp.contains("event iter"),
        "no freeze events; differential is vacuous:\n{flat_fp}"
    );

    // The chunked run must have gone through the store: cumulative write
    // accounting moved and the directory holds shard files, not one file
    // per sample.
    assert!(chunked_report.cache_stats.disk_bytes_written > 0);
    let shards = std::fs::read_dir(&chunked_dir)
        .map(|rd| {
            rd.flatten()
                .filter(|e| {
                    e.path()
                        .extension()
                        .is_some_and(|x| x == "egs")
                })
                .count()
        })
        .unwrap_or(0);
    assert!(
        shards > 0,
        "chunked run left no shard files in {}",
        chunked_dir.display()
    );

    assert_eq!(
        flat_fp, chunked_fp,
        "chunked (lossless) training diverged from flat:\nflat:\n{flat_fp}\nchunked:\n{chunked_fp}"
    );

    let _ = std::fs::remove_dir_all(&flat_dir);
    let _ = std::fs::remove_dir_all(&chunked_dir);
}
