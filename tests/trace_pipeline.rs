//! End-to-end telemetry pipeline: a traced training run must export
//! schema-valid JSONL that the summarizer and the simulator calibration
//! check both accept.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::{EgeriaConfig, Telemetry};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use egeria_obs::export::{export_chrome_trace, export_jsonl};
use egeria_obs::jsonl::{parse, validate_trace_jsonl, Value};
use egeria_obs::report::summarize;
use egeria_simsys::arch::{ArchSpec, FlopsModel, PaperScale};
use egeria_simsys::{calibrate, ClusterSpec, CommPolicy, ObservedSplit};

fn traced_run() -> Telemetry {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    let telemetry = Telemetry::enabled();
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![20])),
        TrainerOptions {
            epochs: 6,
            egeria: Some(EgeriaConfig {
                n: 2,
                w: 3,
                s: 2,
                t: 5.0,
                bootstrap_rate: 0.9,
                reference_update_every: 4,
                ..Default::default()
            }),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    );
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        2,
    );
    let loader = DataLoader::new(64, 16, 3, true);
    trainer.train(&data, &loader, None).expect("traced run trains");
    telemetry
}

#[test]
fn traced_run_exports_validate_summarize_and_calibrate() {
    let telemetry = traced_run();

    // 1. JSONL export passes the schema validator.
    let jsonl = export_jsonl(&telemetry);
    let stats = validate_trace_jsonl(&jsonl).expect("exported trace is schema-valid");
    assert!(stats.spans > 0, "trace has no spans");
    assert!(stats.instants > 0, "trace has no instants");
    assert_eq!(stats.dropped, 0, "ring dropped events in a small run");

    // 2. The summarizer extracts the timeline the trainer produced:
    // 6 epochs x 4 batches of train_step spans, a freeze timeline, layers,
    // and at least two distinct (frozen_prefix, fp_cached) split states.
    let summary = summarize(&jsonl).expect("summarize");
    assert_eq!(
        summary.iterations.len(),
        24,
        "expected one train_step per iteration"
    );
    assert!(!summary.freeze_timeline.is_empty(), "no freeze decisions recorded");
    assert!(!summary.layers.is_empty(), "no per-layer breakdown");
    assert!(
        summary.splits.len() >= 2,
        "expected multiple freezing states, got {:?}",
        summary.splits
    );
    assert!(summary.counters.iter().any(|(n, _)| n.starts_with("freezer.")));

    // 3. The observed split feeds the simulator's calibration check.
    let arch = ArchSpec::scaled(
        "resnet50",
        &[100, 200, 400, 800],
        Some(&[4, 4, 4, 4]),
        FlopsModel::PerBlockUniform,
        PaperScale::resnet50_imagenet(),
    );
    let observed: Vec<ObservedSplit> = summary
        .splits
        .iter()
        .map(|s| ObservedSplit {
            frozen_prefix: s.frozen_prefix as usize,
            fp_cached: s.fp_cached,
            steps: s.count as usize,
            mean_seconds: s.mean_dur_us / 1e6,
        })
        .collect();
    let report = calibrate(
        &arch,
        &ClusterSpec::v100_cluster(1),
        16,
        CommPolicy::Vanilla,
        &observed,
    )
    .expect("calibration report");
    assert_eq!(report.rows.len(), observed.len());
    assert!(report.max_rel_error.is_finite());
    assert!(report.render().contains("max_rel_error"));

    // 4. The Chrome trace export is one well-formed JSON object with the
    // same spans.
    let chrome = export_chrome_trace(&telemetry);
    let doc = parse(&chrome).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(events.len() >= stats.spans + stats.instants);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let telemetry = Telemetry::disabled();
    assert!(!telemetry.is_enabled());
    telemetry.counter("x").inc();
    drop(telemetry.span("y").iteration(1));
    let (events, dropped) = telemetry.trace_events();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
    let snap = telemetry.metrics_snapshot();
    assert!(snap.counters.is_empty());
}
