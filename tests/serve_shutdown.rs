//! Shutdown ordering for the serving and controller subsystems
//! (companion to `tests/crash_resume.rs`: that file pins crash *recovery*,
//! this one pins clean teardown).
//!
//! The contracts:
//!
//! - Dropping a [`ServeEngine`] resolves every still-pending ticket with
//!   [`ServeError::Shutdown`] and joins its threads within a bound — a
//!   stuck serve worker must never hang or outlive the trainer.
//! - Dropping an [`AsyncController`] is bounded even when the controller
//!   thread is blocked publishing into a full result queue (the drop
//!   drains results while it waits — without that, every such drop ate
//!   the full 2 s timeout and leaked the thread).
//! - A [`ReferenceManager`] owns its serve engine: dropping the manager
//!   tears the engine down while the shared telemetry handle and any
//!   pinned snapshot registry remain fully usable afterwards.

use egeria_core::controller::AsyncController;
use egeria_core::reference::ReferenceManager;
use egeria_core::{EgeriaConfig, Telemetry};
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_quant::Precision;
use egeria_serve::{ProbeRequest, RealClock, ServeConfig, ServeEngine, ServeError};
use egeria_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model() -> Box<dyn Model> {
    Box::new(resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        11,
    ))
}

fn batch(seed: u64) -> Batch {
    let mut rng = Rng::new(seed);
    Batch {
        input: Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
        targets: Targets::Classes(vec![0, 1]),
        sample_ids: vec![seed * 2, seed * 2 + 1],
    }
}

#[test]
fn engine_drop_resolves_queued_tickets_within_bound() {
    let engine = ServeEngine::new(
        ServeConfig {
            // Nothing can flush on its own: the only way out is shutdown.
            max_batch: 1024,
            max_wait: Duration::from_secs(3600),
            ..ServeConfig::default()
        },
        RealClock::shared(),
        Telemetry::disabled(),
    );
    engine.publish(model().as_ref(), Precision::F32).unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            engine
                .submit(ProbeRequest {
                    batch: batch(i),
                    module: 0,
                    deadline: None,
                })
                .unwrap()
        })
        .collect();
    let start = Instant::now();
    drop(engine);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(1500),
        "engine drop must be bounded, took {elapsed:?}"
    );
    for t in tickets {
        assert_eq!(t.wait().unwrap_err(), ServeError::Shutdown);
    }
}

#[test]
fn controller_drop_with_full_result_queue_is_bounded() {
    let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
    refmgr.generate(model().as_ref()).unwrap();
    // Always-busy gate: every eval is answered immediately (no reference
    // forward), so results pile up as fast as we can submit them.
    let mut ctrl = AsyncController::spawn(refmgr, 0.5, Arc::new(|| 1.0));
    let mut m = model();
    let act = m.capture_activation(&batch(0), 0).unwrap();
    // The result queue holds 64; keep submitting until the controller has
    // unambiguously produced more results than that without anyone
    // draining, i.e. its thread is parked in `result_tx.send`. (Capped
    // well below the ~97 where a full TOQ would block `submit` itself.)
    let mut accepted = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while accepted < 80 && Instant::now() < deadline {
        match ctrl.submit(batch(accepted), 0, act.clone()) {
            Some(_) => accepted += 1,
            None => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    assert!(accepted >= 80, "could not saturate the result queue");
    // Give the controller a moment to fill the queue and block.
    std::thread::sleep(Duration::from_millis(50));
    let start = Instant::now();
    drop(ctrl);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(1500),
        "controller drop must drain results and join, took {elapsed:?}"
    );
}

#[test]
fn manager_drop_tears_down_engine_but_not_telemetry_or_registry() {
    let telemetry = Telemetry::enabled();
    let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
    refmgr.set_telemetry(telemetry.clone());
    refmgr.generate(model().as_ref()).unwrap();
    refmgr.set_serve_engine(Arc::new(ServeEngine::new(
        ServeConfig::default(),
        RealClock::shared(),
        telemetry.clone(),
    )));
    let _ = refmgr.capture(&batch(1), 0).unwrap();
    // Pin the registry the way a long-lived observer (or in-flight
    // request) would, then drop the manager — and with it the engine.
    let registry = refmgr.serve_engine().unwrap().registry();
    drop(refmgr);
    // The pinned registry still answers: snapshots are owned by Arcs, not
    // by the engine's threads.
    assert_eq!(registry.version(), 1);
    let snapshot = registry.latest().unwrap();
    let mut executor = snapshot.clone_executor();
    assert!(executor.capture_activation(&batch(2), 0).is_ok());
    // The telemetry handle outlives every serve worker: counters written
    // by the (now joined) threads are all present and consistent.
    let snap = telemetry.metrics_snapshot();
    assert!(snap.counter("serve.requests").unwrap_or(0) >= 1);
    assert_eq!(
        snap.counter("serve.requests"),
        snap.counter("serve.responses"),
        "every admitted probe resolved before teardown"
    );
}

#[test]
fn respawned_controller_after_drop_still_works() {
    // The trainer's watchdog rebuilds a controller (with a fresh
    // reference manager, and under EGERIA_SERVE a fresh engine) after the
    // previous one died; teardown of the old one must leave nothing
    // behind that breaks the replacement.
    for round in 0..2 {
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model().as_ref()).unwrap();
        let mut ctrl = AsyncController::spawn(refmgr, 0.5, Arc::new(|| 0.0));
        let mut m = model();
        let act = m.capture_activation(&batch(round), 0).unwrap();
        let id = ctrl.submit(batch(round), 0, act).unwrap();
        let r = ctrl.wait_for(id).unwrap();
        assert!(r.value.is_some(), "round {round} evaluation failed");
    }
}
