//! Edge-case integration tests across crates: degenerate configurations
//! that the main suites never hit but a downstream user will.

use egeria_core::baselines::CyclicalUnfreezer;
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::{DataLoader, Dataset};
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::Model;
use egeria_nn::optim::Sgd;
use egeria_nn::sched::{CosineAnnealing, MultiStepDecay};
use egeria_simsys::arch::{ArchSpec, FlopsModel, PaperScale};
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::CommPolicy;
use egeria_simsys::tta::{epoch_times, throughput, time_to_target};

fn tiny_model() -> impl Model {
    resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        1,
    )
}

#[test]
fn single_batch_dataset_trains() {
    // Dataset exactly one batch long, drop_last on.
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 16,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: false,
        },
        2,
    );
    let loader = DataLoader::new(16, 16, 3, true);
    assert_eq!(loader.batches_per_epoch(), 1);
    let mut t = EgeriaTrainer::new(
        Box::new(tiny_model()),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![100])),
        TrainerOptions {
            epochs: 3,
            ..Default::default()
        },
    );
    let report = t.train(&data, &loader, None).unwrap();
    assert_eq!(report.iterations.len(), 3);
}

#[test]
fn eval_every_skips_epochs() {
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 32,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: false,
        },
        4,
    );
    let loader = DataLoader::new(32, 16, 5, true);
    let val_loader = DataLoader::new(32, 16, 0, false);
    let mut t = EgeriaTrainer::new(
        Box::new(tiny_model()),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![100])),
        TrainerOptions {
            epochs: 4,
            eval_every: 2,
            ..Default::default()
        },
    );
    let report = t.train(&data, &loader, Some((&data, &val_loader))).unwrap();
    let evaluated: Vec<bool> = report.epochs.iter().map(|e| e.val_metric.is_some()).collect();
    assert_eq!(evaluated, vec![true, false, true, false]);
}

#[test]
fn cyclical_unfreezer_composes_with_cosine_schedule() {
    // Egeria with a cosine schedule and the customized unfreeze hook: at
    // each restart, unfreeze; the run must stay healthy.
    use egeria_core::config::UnfreezePolicy;
    use egeria_nn::sched::LrSchedule;
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.4,
            augment: true,
        },
        6,
    );
    let loader = DataLoader::new(64, 16, 7, true);
    let sched = CosineAnnealing::new(0.05, 1e-4, 8);
    assert!(sched.lr(0) > sched.lr(4));
    let mut model = tiny_model();
    let mut opt = Sgd::new(0.05, 0.9, 0.0);
    let cfg = EgeriaConfig {
        n: 2,
        w: 4,
        s: 3,
        t: 5.0,
        bootstrap_rate: 0.9,
        unfreeze: UnfreezePolicy::Custom,
        ..Default::default()
    };
    let mut freezer = egeria_core::freezer::FreezingEngine::new(model.modules().len(), &cfg);
    let mut unfreezer = CyclicalUnfreezer::new(8);
    let mut unfroze = 0;
    for epoch in 0..24 {
        opt.set_lr(sched.lr(epoch));
        if unfreezer.should_unfreeze(epoch) && freezer.front() > 0 {
            freezer.unfreeze_now();
            model.unfreeze_all();
            unfroze += 1;
        }
        for plan in loader.epoch_plan(epoch) {
            let batch = data.materialize(&plan.indices).unwrap();
            let front = freezer.front();
            let r = model.train_step(&batch, Some(front)).unwrap();
            let act = r.captured.unwrap();
            // Self-comparison keeps plasticity at zero → freezes steadily,
            // exercising the freeze/cyclical-unfreeze interplay.
            let (_, ev) = freezer.observe(&act, &act, sched.lr(epoch)).unwrap();
            if let egeria_core::freezer::FreezeEvent::Froze(k) = ev {
                model.freeze_prefix(k).unwrap();
            }
            opt.step(&mut model.params_mut()).unwrap();
            model.zero_grad();
        }
    }
    assert!(unfroze >= 1, "cyclical unfreeze never fired");
    assert!(model.frozen_prefix() < model.modules().len());
}

#[test]
fn tta_helpers_handle_empty_traces() {
    let spec = ArchSpec::scaled(
        "m",
        &[10, 20],
        None,
        FlopsModel::ProportionalToParams,
        PaperScale::resnet56_cifar(),
    );
    let cluster = ClusterSpec::v100_cluster(1);
    assert!(epoch_times(&spec, &cluster, &[], 16, CommPolicy::Vanilla).is_empty());
    assert_eq!(throughput(&spec, &cluster, &[], 16, CommPolicy::Vanilla), 0.0);
    assert_eq!(time_to_target(&[], &[], 0.5, true), None);
    // Metric series longer than the time series must not panic.
    assert_eq!(
        time_to_target(&[1.0], &[None, Some(0.9)], 0.5, true),
        None
    );
}

#[test]
fn freezing_the_whole_arch_is_clamped_in_the_cost_model() {
    // IterationSetting with an out-of-range prefix must clamp, not panic.
    use egeria_simsys::iteration::{iteration_time, IterationSetting};
    let spec = ArchSpec::scaled(
        "m",
        &[10, 20, 30],
        None,
        FlopsModel::ProportionalToParams,
        PaperScale::resnet56_cifar(),
    );
    let t = iteration_time(
        &spec,
        &ClusterSpec::v100_cluster(1),
        IterationSetting {
            frozen_prefix: 99,
            fp_cached: true,
            batch_size: 8,
        },
        CommPolicy::Vanilla,
    );
    assert!(t.total.is_finite() && t.total > 0.0);
}
