//! Egeria over the NLP substrates: Transformer translation and BERT-style
//! QA fine-tuning.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_data::qa::{QaDataConfig, SyntheticQa};
use egeria_data::translation::{SyntheticTranslation, TranslationConfig};
use egeria_data::DataLoader;
use egeria_models::bert::{BertConfig, BertQa};
use egeria_models::transformer::{Seq2SeqTransformer, TransformerConfig};
use egeria_nn::optim::Adam;
use egeria_nn::sched::{InverseSqrt, LinearDecay};

fn cfg() -> EgeriaConfig {
    EgeriaConfig {
        n: 3,
        w: 6,
        s: 6,
        t: 2.0,
        bootstrap_rate: 0.5,
        ..Default::default()
    }
}

#[test]
fn transformer_translation_with_egeria_reduces_loss_and_freezes_encoders() {
    let model = Seq2SeqTransformer::new("t", TransformerConfig::tiny(16), 5).unwrap();
    let data = SyntheticTranslation::new(
        TranslationConfig {
            samples: 96,
            vocab: 16,
            len: 8,
        },
        6,
    );
    let loader = DataLoader::new(96, 16, 7, true);
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Adam(Adam::new(3e-3, 0.0)),
        Box::new(InverseSqrt::new(3e-3, 30)),
        TrainerOptions {
            epochs: 20,
            egeria: Some(cfg()),
            lr_per_iteration: true,
            ..Default::default()
        },
    );
    let report = trainer.train(&data, &loader, None).unwrap();
    let first = report.epochs.first().unwrap().train_loss;
    let last = report.epochs.last().unwrap().train_loss;
    assert!(last < first, "loss {first} → {last}");
    if let Some(freeze) = report.events.iter().find(|e| e.kind == "freeze") {
        assert_eq!(freeze.prefix, 1, "encoder.0 must be the first frozen module");
    }
}

#[test]
fn bert_fine_tuning_with_egeria_keeps_f1() {
    let make_model = || {
        BertQa::new(
            "bert",
            BertConfig {
                vocab: 16,
                d_model: 16,
                heads: 2,
                d_ff: 32,
                layers: 4,
            },
            9,
        )
        .unwrap()
    };
    // "Pre-train" on one synthetic distribution, fine-tune on another —
    // the paper's QA workload shape.
    let pretrain_data = SyntheticQa::new(
        QaDataConfig {
            samples: 96,
            vocab: 16,
            len: 12,
            answer_len: 2,
        },
        10,
    );
    let finetune_data = SyntheticQa::new(
        QaDataConfig {
            samples: 96,
            vocab: 16,
            len: 12,
            answer_len: 2,
        },
        20,
    );
    let loader = DataLoader::new(96, 16, 11, true);
    let mut pre = EgeriaTrainer::new(
        Box::new(make_model()),
        Optimizer::Adam(Adam::new(1e-3, 0.0)),
        Box::new(LinearDecay::new(1e-3, 200)),
        TrainerOptions {
            epochs: 8,
            lr_per_iteration: true,
            ..Default::default()
        },
    );
    let _ = pre.train(&pretrain_data, &loader, None).unwrap();
    // Fine-tune the pre-trained weights with Egeria.
    let pretrained = pre.model().clone_boxed();
    let mut fine = EgeriaTrainer::new(
        pretrained,
        Optimizer::Adam(Adam::new(5e-4, 0.0)),
        Box::new(LinearDecay::new(5e-4, 200)),
        TrainerOptions {
            epochs: 12,
            egeria: Some(cfg()),
            lr_per_iteration: true,
            ..Default::default()
        },
    );
    let val_loader = DataLoader::new(96, 16, 0, false);
    let report = fine
        .train(&finetune_data, &loader, Some((&finetune_data, &val_loader)))
        .unwrap();
    let best_f1 = report
        .epochs
        .iter()
        .filter_map(|e| e.val_metric)
        .fold(0.0f32, f32::max);
    assert!(best_f1 > 0.3, "fine-tuned span F1 only reached {best_f1}");
}
