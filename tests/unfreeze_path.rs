//! Unfreeze-path regression tests: force a plasticity rebound after a
//! freeze and verify the full thaw path — the engine reopens the front,
//! the thawed layers re-enter the backward pass (their parameters move
//! again), the activation cache stops serving entries captured under the
//! stale frozen weights, and a crash/resume replays the freeze/unfreeze
//! timeline exactly (the policy's mid-watch state rides the checkpoint).

use egeria_core::checkpoint::CheckpointOptions;
use egeria_core::freezer::{FreezeEvent, FreezingEngine};
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions, TrainReport};
use egeria_core::{EgeriaConfig, PolicyKind};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::{DataLoader, Dataset};
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::Model;
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use std::path::PathBuf;

/// The scenario-harness ResNet cell under the regression-aware policy
/// (crates/scenarios): its golden timeline freezes and rebound-unfreezes
/// repeatedly, which is exactly the path under test.
fn regression_config() -> EgeriaConfig {
    regression_config_every(1)
}

/// Same, with a configurable evaluation interval: cached-FP steps only
/// happen on non-evaluation iterations, so the cache tests need `n > 1`.
fn regression_config_every(n: usize) -> EgeriaConfig {
    EgeriaConfig {
        n,
        w: 3,
        s: 2,
        t: 5.0,
        bootstrap_rate: 0.9,
        reference_update_every: 4,
        policy: PolicyKind::RegressionAware,
        ..Default::default()
    }
}

fn make_trainer(
    ckpt: Option<CheckpointOptions>,
    faults: Option<std::sync::Arc<egeria_core::faults::FaultInjector>>,
    epochs: usize,
    cfg: EgeriaConfig,
) -> EgeriaTrainer {
    make_trainer_with_milestone(ckpt, faults, epochs, cfg, 5)
}

fn make_trainer_with_milestone(
    ckpt: Option<CheckpointOptions>,
    faults: Option<std::sync::Arc<egeria_core::faults::FaultInjector>>,
    epochs: usize,
    cfg: EgeriaConfig,
    milestone: usize,
) -> EgeriaTrainer {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![milestone])),
        TrainerOptions {
            epochs,
            egeria: Some(cfg),
            checkpoint: ckpt,
            faults,
            ..Default::default()
        },
    )
}

fn data_and_loader() -> (SyntheticImages, DataLoader) {
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        2,
    );
    (data, DataLoader::new(64, 16, 3, true))
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("egeria_unfreeze_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn timeline(r: &TrainReport) -> Vec<(usize, String, usize)> {
    r.events
        .iter()
        .map(|e| (e.iteration, e.kind.clone(), e.prefix))
        .collect()
}

/// Engine level: converge → freeze, then force a sustained rebound well
/// above the freeze-time plasticity level → the regression-aware policy
/// must reopen the front, and a later re-convergence must refreeze.
#[test]
fn forced_rebound_unfreezes_then_refreezes() {
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let cfg = regression_config();
    let mut engine = FreezingEngine::new(4, &cfg);

    // Flat plasticity: converges after w samples + s confirmations.
    let mut froze = false;
    for _ in 0..12 {
        let (_, ev) = engine.observe_value(1.0, 0.05).unwrap();
        if matches!(ev, FreezeEvent::Froze(_)) {
            froze = true;
            break;
        }
    }
    assert!(froze, "flat plasticity never froze");
    assert_eq!(engine.front(), 1);

    // Successor-module probes rebound far above the 1.0 baseline: the
    // policy must thaw everything within its watch window.
    let mut unfroze_at = None;
    for i in 0..6 {
        let (_, ev) = engine.observe_value(3.0, 0.05).unwrap();
        if ev == FreezeEvent::Unfroze {
            unfroze_at = Some(i);
            break;
        }
    }
    assert!(unfroze_at.is_some(), "sustained rebound never unfroze");
    assert_eq!(engine.front(), 0, "front must fully reopen on rebound");

    // The rebound was transient; re-converged plasticity refreezes (under
    // the relaxed criteria the engine applies after any unfreeze).
    let mut refroze = false;
    for _ in 0..12 {
        let (_, ev) = engine.observe_value(1.0, 0.05).unwrap();
        if matches!(ev, FreezeEvent::Froze(_)) {
            refroze = true;
            break;
        }
    }
    assert!(refroze, "engine never refroze after the rebound unfreeze");
}

/// Model + optimizer level: a frozen layer's parameters must not move, and
/// after `unfreeze_all` the same layer re-enters the backward pass — its
/// parameters move again under the very next optimizer step.
#[test]
fn thawed_layer_parameters_move_again() {
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let mut model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    let (data, _) = data_and_loader();
    let batch = data.materialize(&[0, 1, 2, 3]).unwrap();
    let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0));
    opt.set_lr(0.05);

    let first_param = |m: &dyn Model| m.params()[0].value.clone();

    model.freeze_prefix(1).unwrap();
    let before = first_param(&model);
    model.zero_grad();
    model.train_step(&batch, None).unwrap();
    {
        let mut params = model.params_mut();
        opt.step(&mut params).unwrap();
    }
    assert_eq!(
        before,
        first_param(&model),
        "frozen layer's parameters moved"
    );

    model.unfreeze_all();
    let before = first_param(&model);
    model.zero_grad();
    model.train_step(&batch, None).unwrap();
    {
        let mut params = model.params_mut();
        opt.step(&mut params).unwrap();
    }
    assert_ne!(
        before,
        first_param(&model),
        "thawed layer's parameters did not move: it never re-entered the backward pass"
    );
}

/// Trainer level: every rebound unfreeze invalidates the activation cache,
/// so the first cached-FP-eligible iteration after a thaw must recompute
/// (a cache hit there would replay activations of the *pre-thaw* weights).
#[test]
fn cache_stops_serving_stale_activations_after_unfreeze() {
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let (data, loader) = data_and_loader();
    // Paper policy with a late LR drop: the long stable frozen prefix before
    // the drop is what lets cache hits accumulate (a hit needs every sample
    // id of a batch cached at the current prefix + generation, i.e. roughly
    // a full reshuffled epoch with no freeze events), and the LR-reboot
    // unfreeze at the milestone drives the same `apply_event(Unfroze)` →
    // `cache.invalidate()` path as a rebound thaw (which recurs too often
    // under the regression policy for any prefix to live that long — the
    // rebound-driven thaw itself is covered by the sibling tests above and
    // below).
    let mut cfg = regression_config_every(2);
    cfg.policy = PolicyKind::Paper;
    let mut trainer = make_trainer_with_milestone(None, None, 16, cfg, 12);
    let report = trainer.train(&data, &loader, None).unwrap();

    let unfreezes: Vec<usize> = report
        .events
        .iter()
        .filter(|e| e.kind == "unfreeze")
        .map(|e| e.iteration)
        .collect();
    assert!(
        !unfreezes.is_empty(),
        "run never unfroze; the stale-cache check would be vacuous"
    );
    assert!(
        report.cache_stats.hits > 0,
        "run never hit the cache; the stale-cache check would be vacuous"
    );
    for &u in &unfreezes {
        if let Some(it) = report.iterations.iter().skip(u + 1).find(|i| i.frozen_prefix > 0) {
            assert!(
                !it.fp_cached,
                "iteration after the unfreeze at {u} was served from the invalidated cache"
            );
        }
    }
}

/// Crash/resume: the freeze → rebound-unfreeze → refreeze timeline must
/// replay bit-for-bit across a mid-run crash. The regression-aware policy
/// carries live state (baseline, watch window, hot streak) between
/// evaluations, so this only holds if that state rides the checkpoint
/// (PolicyState, container format v2).
#[test]
fn rebound_timeline_replays_across_resume() {
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let (data, loader) = data_and_loader();

    let mut full = make_trainer(None, None, 8, regression_config());
    let full_report = full.train(&data, &loader, None).unwrap();
    assert!(
        full_report.events.iter().any(|e| e.kind == "unfreeze"),
        "reference run never unfroze; the replay check would be vacuous"
    );

    // Crash mid-run, inside a watch window (right after a freeze).
    let ckpt_dir = scratch("ckpt");
    let faults = egeria_core::faults::FaultInjector::new();
    faults.arm(
        egeria_core::faults::FaultSite::TrainStep,
        23,
        1,
        egeria_core::faults::FaultAction::Fail,
    );
    let mut crashed_trainer = make_trainer(
        Some(CheckpointOptions::new(&ckpt_dir)),
        Some(faults.clone()),
        8,
        regression_config(),
    );
    crashed_trainer.train(&data, &loader, None).unwrap_err();
    drop(crashed_trainer);

    let mut resumed =
        make_trainer(Some(CheckpointOptions::new(&ckpt_dir)), None, 8, regression_config());
    let resumed_report = resumed.train(&data, &loader, None).unwrap();
    assert!(resumed_report.resumed_from_epoch.is_some());
    assert_eq!(
        timeline(&full_report),
        timeline(&resumed_report),
        "freeze/unfreeze timeline diverged after resume"
    );
}
