//! Cross-crate consistency of the performance simulator against real
//! training traces.

use egeria_simsys::arch::{ArchSpec, FlopsModel, PaperScale};
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::{iteration_time, CommPolicy, IterationSetting};
use egeria_simsys::tta::{epoch_times, throughput, tta_speedup, IterTrace};

fn spec() -> ArchSpec {
    ArchSpec::scaled(
        "resnet50",
        &[50_000, 120_000, 300_000, 500_000],
        Some(&[3, 4, 6, 3]),
        FlopsModel::PerBlockUniform,
        PaperScale::resnet50_imagenet(),
    )
}

#[test]
fn deeper_freezing_is_monotonically_faster() {
    let cluster = ClusterSpec::v100_cluster(3);
    let mut prev = f64::INFINITY;
    for prefix in 0..4 {
        let t = iteration_time(
            &spec(),
            &cluster,
            IterationSetting {
                frozen_prefix: prefix,
                fp_cached: prefix > 0,
                batch_size: 32,
            },
            CommPolicy::Vanilla,
        );
        assert!(
            t.total < prev,
            "prefix {prefix}: {} not faster than {prev}",
            t.total
        );
        prev = t.total;
    }
}

#[test]
fn paper_speedup_band_for_a_plausible_freezing_trace() {
    // A trace shaped like the paper's ResNet-50 run: front module frozen
    // after ~1/3, two modules after ~2/3; cached FP once frozen.
    let cluster = ClusterSpec::v100_cluster(1);
    let mut trace = Vec::new();
    let epochs = 90u32;
    for e in 0..epochs {
        let prefix = if e < 30 {
            0
        } else if e < 60 {
            1
        } else {
            2
        };
        for _ in 0..100 {
            trace.push(IterTrace {
                epoch: e,
                frozen_prefix: prefix,
                fp_cached: prefix > 0,
            });
        }
    }
    let base: Vec<IterTrace> = trace
        .iter()
        .map(|t| IterTrace {
            frozen_prefix: 0,
            fp_cached: false,
            ..*t
        })
        .collect();
    let tb = *epoch_times(&spec(), &cluster, &base, 32, CommPolicy::Vanilla)
        .last()
        .unwrap();
    let te = *epoch_times(&spec(), &cluster, &trace, 32, CommPolicy::Vanilla)
        .last()
        .unwrap();
    let speedup = tta_speedup(tb, te);
    // The paper reports 19%–43% across workloads; a same-epoch-count run
    // with this trace should land in a generous band around that.
    assert!(
        (0.05..0.6).contains(&speedup),
        "simulated speedup {speedup} outside plausible band"
    );
}

#[test]
fn bytescheduler_helps_most_when_comm_bound() {
    let trace: Vec<IterTrace> = (0..5u32)
        .flat_map(|e| {
            (0..20).map(move |_| IterTrace {
                epoch: e,
                frozen_prefix: 0,
                fp_cached: false,
            })
        })
        .collect();
    // Large cluster (comm-heavy): BS must beat vanilla.
    let big = ClusterSpec::v100_cluster(5);
    let v = throughput(&spec(), &big, &trace, 32, CommPolicy::Vanilla);
    let b = throughput(&spec(), &big, &trace, 32, CommPolicy::ByteScheduler);
    assert!(b >= v * 0.99, "BS {b} collapsed vs vanilla {v}");
    // Single node (compute-bound): BS within a whisker of vanilla, possibly
    // slightly below (the paper's observed dip).
    let small = ClusterSpec::v100_cluster(1);
    let v1 = throughput(&spec(), &small, &trace, 32, CommPolicy::Vanilla);
    let b1 = throughput(&spec(), &small, &trace, 32, CommPolicy::ByteScheduler);
    assert!(b1 > v1 * 0.95 && b1 < v1 * 1.05);
}

#[test]
fn freezing_saves_time_at_every_cluster_size() {
    // Frozen modules skip backward compute and gradient synchronization,
    // so the run must get faster at every cluster size. (How the saving
    // scales with nodes depends on how much of the removed communication
    // was hidden behind backward compute, so no cross-cluster ordering is
    // asserted.)
    let frozen: Vec<IterTrace> = (0..3u32)
        .flat_map(|e| {
            (0..20).map(move |_| IterTrace {
                epoch: e,
                frozen_prefix: 2,
                fp_cached: false,
            })
        })
        .collect();
    let base: Vec<IterTrace> = frozen
        .iter()
        .map(|t| IterTrace {
            frozen_prefix: 0,
            ..*t
        })
        .collect();
    let saved = |nodes: usize| {
        let c = ClusterSpec::v100_cluster(nodes);
        let tb = *epoch_times(&spec(), &c, &base, 32, CommPolicy::Vanilla).last().unwrap();
        let tf = *epoch_times(&spec(), &c, &frozen, 32, CommPolicy::Vanilla).last().unwrap();
        assert!(tf < tb, "freezing must always save time ({nodes} nodes)");
        tb - tf
    };
    // Absolute savings can shift either way depending on how much of the
    // removed communication was already hidden behind backward compute, so
    // the portable assertion is positivity at every cluster size.
    for nodes in 1..=5 {
        assert!(saved(nodes) > 0.0, "no saving at {nodes} nodes");
    }
}
