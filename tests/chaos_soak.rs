//! Chaos soak: end-to-end training under randomized, seeded fault
//! schedules (DESIGN.md §5f).
//!
//! The contract being pinned, per chaos profile:
//!
//! - [`ChaosPlan::fallback_only`] covers only sites whose failure is
//!   absorbed by a **bit-identical** fallback (serve shed/error → inline
//!   capture, worker panic → respawn, stale snapshot → inline, cache
//!   write/prefetch miss → recompute, checkpoint write → skip). A run
//!   under this profile must reproduce the fault-free loss curve and
//!   freeze timeline bit-for-bit.
//! - [`ChaosPlan::full`] adds degradation-only sites (corrupt cache
//!   reads, failed captures). The contract drops to: the run completes
//!   without aborting or panicking, the loss stays finite, and every
//!   injected fault is accounted for by a degradation counter — never
//!   silently swallowed.
//! - Either way, teardown is clean: drops are bounded and no threads
//!   leak.
//!
//! The master seed defaults to a fixed constant and can be overridden
//! with `EGERIA_CHAOS_SEED` (decimal or 0x-hex); every assertion also
//! runs at a derived sibling seed so one lucky schedule cannot hide a
//! broken fallback. Tests serialize on a file-local lock so the
//! thread-leak accounting sees only its own run.

use egeria_core::checkpoint::CheckpointOptions;
use egeria_core::config::ControllerMode;
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::{EgeriaConfig, Telemetry, TrainReport};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use egeria_resil::{ChaosPlan, FaultInjector, FaultSite, HealthMonitor};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Serializes the soak tests within this binary: each one measures thread
/// counts and drop latencies, which a concurrently-running sibling test
/// would pollute.
static SOAK_LOCK: Mutex<()> = Mutex::new(());

/// Fixed default master seed; override with `EGERIA_CHAOS_SEED`.
const BASE_SEED: u64 = 0xE6E1A;

fn chaos_seed() -> u64 {
    ChaosPlan::seed_from_env().unwrap_or(BASE_SEED)
}

/// `Threads:` from /proc/self/status (0 where unavailable — the leak
/// assertions degrade to no-ops off Linux).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Spins until the process thread count returns to `baseline` (detached
/// worker threads may take a few scheduler quanta to fully exit after a
/// bounded drop).
fn assert_no_leaked_threads(baseline: usize, context: &str) {
    if baseline == 0 {
        return;
    }
    let mut now = thread_count();
    for _ in 0..300 {
        if now <= baseline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
        now = thread_count();
    }
    panic!("{context}: {now} threads alive vs baseline {baseline} — leaked threads");
}

struct SoakRun {
    report: TrainReport,
    telemetry: Telemetry,
    faults: Option<Arc<FaultInjector>>,
    health: Arc<HealthMonitor>,
}

impl SoakRun {
    fn counter(&self, name: &str) -> u64 {
        self.telemetry.metrics_snapshot().counter(name).unwrap_or(0)
    }

    fn injected(&self, site: FaultSite) -> usize {
        self.faults.as_ref().map(|f| f.injected(site)).unwrap_or(0)
    }
}

/// One fixed-seed training run at golden-run scale (8 epochs, n=2 ResNet,
/// 64 synthetic samples) with checkpointing on, under an optional chaos
/// plan. Asserts the drop itself is bounded.
fn soak(plan: Option<&ChaosPlan>, controller: ControllerMode, tag: &str) -> SoakRun {
    let telemetry = Telemetry::enabled();
    let health = HealthMonitor::new(telemetry.clone());
    let faults = plan.map(|p| {
        let f = FaultInjector::new();
        p.apply(&f);
        f
    });
    let ckpt_dir =
        std::env::temp_dir().join(format!("egeria_soak_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![5])),
        TrainerOptions {
            epochs: 8,
            egeria: Some(EgeriaConfig {
                n: 2,
                w: 3,
                s: 2,
                t: 5.0,
                bootstrap_rate: 0.9,
                reference_update_every: 4,
                controller,
                ..Default::default()
            }),
            checkpoint: Some(CheckpointOptions {
                dir: ckpt_dir.clone(),
                every: 1,
                keep: 2,
            }),
            faults: faults.clone(),
            health: Some(Arc::clone(&health)),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    );
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        2,
    );
    let loader = DataLoader::new(64, 16, 3, true);
    let report = trainer
        .train(&data, &loader, None)
        .expect("a chaos-soak run must degrade, not abort");

    let start = Instant::now();
    drop(trainer);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(1500),
        "trainer drop must be bounded under chaos, took {elapsed:?}"
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    SoakRun {
        report,
        telemetry,
        faults,
        health,
    }
}

/// Everything the bit-identity contract pins: per-epoch loss bits, the
/// frozen-prefix trajectory, and the freeze/unfreeze event timeline.
fn fingerprint(r: &TrainReport) -> String {
    let mut out = String::new();
    for e in &r.epochs {
        let _ = writeln!(
            out,
            "epoch {} loss 0x{:08x} frozen {}",
            e.epoch,
            e.train_loss.to_bits(),
            e.frozen_prefix
        );
    }
    for ev in &r.events {
        let _ = writeln!(out, "event iter {} {} prefix {}", ev.iteration, ev.kind, ev.prefix);
    }
    out
}

/// Faults at fallback-covered sites must be invisible in the training
/// outcome: loss curve and freeze timeline bit-identical to the
/// fault-free run, at the base seed and a sibling seed.
#[test]
fn fallback_covered_faults_preserve_loss_bit_identity() {
    let _guard = SOAK_LOCK.lock().unwrap();
    let clean = soak(None, ControllerMode::Sync, "clean");
    let golden = fingerprint(&clean.report);
    assert!(
        golden.contains("event iter"),
        "fault-free run froze nothing — the soak pins no interesting machinery:\n{golden}"
    );
    // Worker/engine threads from the warmup run are down; everything the
    // chaos runs spawn must be gone again by the end.
    let baseline = thread_count();

    for (label, seed) in [
        ("base", chaos_seed()),
        ("sibling", ChaosPlan::sibling_seed(chaos_seed())),
    ] {
        let plan = ChaosPlan::fallback_only(seed);
        let run = soak(Some(&plan), ControllerMode::Sync, &format!("fb_{label}"));
        let total = run.faults.as_ref().unwrap().injected_total();
        assert!(
            total > 0,
            "{label} (seed {seed:#x}): schedule never fired — the soak tested nothing"
        );
        assert_eq!(
            fingerprint(&run.report),
            golden,
            "{label} (seed {seed:#x}): {total} fallback-covered faults changed the \
             training outcome — a fallback path is not bit-identical"
        );
        // The faults were real: the run had to take fallbacks or recover
        // writes somewhere, and the degradation telemetry saw it.
        let serve_fires = run.injected(FaultSite::ServeAdmission)
            + run.injected(FaultSite::ServeExecute)
            + run.injected(FaultSite::PoolTaskPanic)
            + run.injected(FaultSite::SnapshotPublish);
        if serve_fires > 0 {
            let absorbed = run.counter("serve.fallbacks")
                + run.counter("serve.shed")
                + run.counter("serve.stale_skips")
                + run.counter("serve.breaker_rejected");
            assert!(
                absorbed > 0,
                "{label}: {serve_fires} serve-side faults but no fallback/shed counters moved"
            );
        }
        assert_eq!(
            run.report.checkpoint_save_errors,
            run.injected(FaultSite::CheckpointWrite),
            "{label}: every injected checkpoint-write failure must surface in the report"
        );
    }

    assert_no_leaked_threads(baseline, "after fallback-profile soaks");
}

/// The full profile adds degradation-only sites. The run must complete
/// without aborting, keep the loss finite, account for every injected
/// fault in a degradation counter, and report a health state consistent
/// with its reasons — at two seeds.
#[test]
fn full_chaos_degrades_gracefully_and_never_aborts() {
    let _guard = SOAK_LOCK.lock().unwrap();
    let mut baseline = 0usize;

    for (label, seed) in [
        ("base", chaos_seed()),
        ("sibling", ChaosPlan::sibling_seed(chaos_seed())),
    ] {
        let plan = ChaosPlan::full(seed);
        let run = soak(Some(&plan), ControllerMode::Sync, &format!("full_{label}"));
        if baseline == 0 {
            // Taken after the first run so lazily-spawned process-lifetime
            // threads (if any) are excluded from the leak accounting.
            baseline = thread_count();
        }
        assert!(
            run.faults.as_ref().unwrap().injected_total() > 0,
            "{label} (seed {seed:#x}): full schedule never fired"
        );
        for e in &run.report.epochs {
            assert!(
                e.train_loss.is_finite(),
                "{label}: epoch {} loss {} — degradation corrupted the numerics",
                e.epoch,
                e.train_loss
            );
        }
        // Degradation-only sites must be visible, not swallowed.
        let capture_fires = run.injected(FaultSite::ReferenceCapture);
        if capture_fires > 0 {
            let surfaced =
                run.counter("reference.capture_errors") as usize + run.report.eval_skips;
            assert!(
                surfaced >= capture_fires,
                "{label}: {capture_fires} capture faults, only {surfaced} surfaced"
            );
        }
        if run.injected(FaultSite::CacheRead) > 0 {
            assert!(
                run.report.cache_stats.corrupt_entries > 0,
                "{label}: corrupt cache reads were not quarantined"
            );
        }
        // Health level and reasons agree.
        let level = run.report.health_level;
        assert!(level <= 2, "{label}: health level {level} out of range");
        assert_eq!(
            level > 0,
            !run.report.health_reasons.is_empty(),
            "{label}: health level {level} inconsistent with reasons {:?}",
            run.report.health_reasons
        );
        assert_eq!(u64::from(run.health.level()), u64::from(level));
    }

    assert_no_leaked_threads(baseline, "after full-profile soaks");
}

/// Degraded timelines are still deterministic: the same full-profile seed
/// replays to the identical loss curve, freeze timeline, and injected
/// fault counts (sync controller — async is load-dependent by design).
#[test]
fn full_chaos_run_is_reproducible_at_a_fixed_seed() {
    let _guard = SOAK_LOCK.lock().unwrap();
    let plan = ChaosPlan::full(chaos_seed());
    let a = soak(Some(&plan), ControllerMode::Sync, "repro_a");
    let b = soak(Some(&plan), ControllerMode::Sync, "repro_b");
    assert_eq!(
        fingerprint(&a.report),
        fingerprint(&b.report),
        "same seed, same profile: degraded runs must replay bit-identically"
    );
    for site in FaultSite::ALL {
        assert_eq!(
            a.injected(site),
            b.injected(site),
            "site {site:?} fired differently across identical replays"
        );
    }
}

/// The async controller under the full profile: controller-thread deaths
/// are respawned by the watchdog (capped), training completes, and
/// teardown stays clean. Timing-dependent by design, so only graceful
/// degradation — not bit-identity — is asserted.
#[test]
fn async_controller_survives_full_chaos() {
    let _guard = SOAK_LOCK.lock().unwrap();
    let plan = ChaosPlan::full(chaos_seed());
    let baseline = thread_count();
    let run = soak(Some(&plan), ControllerMode::Async, "async_full");
    for e in &run.report.epochs {
        assert!(e.train_loss.is_finite());
    }
    let deaths = run.injected(FaultSite::ControllerEval);
    assert!(
        run.report.controller_restarts <= 3,
        "controller respawns exceeded the watchdog budget"
    );
    if deaths > 0 {
        assert!(
            run.report.controller_restarts > 0 || run.counter("resil.watchdog.exhausted") > 0,
            "{deaths} controller deaths but no respawn and no exhaustion recorded"
        );
    }
    drop(run);
    assert_no_leaked_threads(baseline, "after async-controller soak");
}
