//! Per-policy golden fingerprints, debug-build slice.
//!
//! The full 5×5 (policy × model family) matrix is verified by the
//! release-built `scenario_ab` binary in `ci.sh` (debug builds would take
//! minutes per family). This test pins the ResNet column — the same
//! architecture as `tests/golden_run.rs` — under `cargo test`, so a policy
//! regression is caught even without the CI script:
//!
//! * every policy reproduces its checked-in fingerprint bit-for-bit, and
//! * the five policies leave five *distinct* decision traces (if two
//!   policies are indistinguishable the A/B harness measures nothing).
//!
//! Regenerate all goldens after an intentional change with:
//!
//! ```text
//! cargo run --release -p egeria-scenarios --bin scenario_ab -- --bless
//! ```

use egeria_scenarios::{golden_file_name, policy_matrix, run_scenario, ModelFamily};
use std::collections::HashMap;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("policies")
}

#[test]
fn resnet_policy_fingerprints_match_goldens_and_are_distinct() {
    // The trainer honors EGERIA_FREEZE_POLICY as a config override, which
    // would silently force every cell onto one policy.
    std::env::remove_var("EGERIA_FREEZE_POLICY");

    let mut bodies: HashMap<String, String> = HashMap::new();
    for policy in policy_matrix() {
        let r = run_scenario(ModelFamily::ResNet, policy).expect("scenario trains");
        let path = golden_dir().join(golden_file_name(ModelFamily::ResNet, policy));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e}\nbless with: cargo run --release -p egeria-scenarios --bin scenario_ab -- --bless",
                path.display()
            )
        });
        assert_eq!(
            expected, r.fingerprint,
            "fingerprint drift for (resnet, {})\nregenerate intentionally with: \
             cargo run --release -p egeria-scenarios --bin scenario_ab -- --bless",
            r.policy
        );

        // Compare fingerprint bodies (the header embeds the policy name,
        // so identical decision traces would still differ on line 1).
        let body: String = r.fingerprint.lines().skip(1).collect::<Vec<_>>().join("\n");
        if let Some(prev) = bodies.insert(body, r.policy.clone()) {
            panic!("policies {prev} and {} are indistinguishable on resnet", r.policy);
        }
    }
}
