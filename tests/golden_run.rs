//! Golden-run fingerprint: a fixed-seed training run must reproduce a
//! pinned loss curve, freezing-decision timeline, and telemetry counter
//! snapshot bit-for-bit.
//!
//! The fingerprint is stored at `tests/golden/run_fingerprint.txt`.
//! Regenerate after an *intentional* numerical change with:
//!
//! ```text
//! EGERIA_BLESS=1 cargo test --test golden_run
//! ```
//!
//! The determinism contract (ROADMAP: bit-identical at any pool size)
//! means this file must validate unchanged under `EGERIA_THREADS=1` and
//! the machine default alike.
//!
//! The fingerprint pins the *scalar-ISA* numerics: vector ISAs use
//! polynomial exp/tanh that are toleranced, not bit-identical, to libm
//! (DESIGN §5g), so the test forces `Isa::Scalar` regardless of the
//! machine's SIMD support or `EGERIA_SIMD`.

use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_core::{EgeriaConfig, Telemetry};
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Counter prefixes that are deterministic under the sync controller.
/// Pool statistics and async-controller counters are scheduling-dependent
/// and deliberately excluded.
const PINNED_COUNTER_PREFIXES: &[&str] = &[
    "cache.hits",
    "cache.misses",
    "cache.corrupt",
    "cache.write",
    "freezer.",
    "reference.",
];

fn run_fingerprint() -> String {
    // Pin the legacy libm numerics: the golden file predates the SIMD layer
    // and must stay valid on any host (DESIGN §5g).
    egeria_tensor::simd::set_isa(egeria_tensor::simd::Isa::Scalar);
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    let telemetry = Telemetry::enabled();
    let mut trainer = EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![5])),
        TrainerOptions {
            epochs: 8,
            egeria: Some(EgeriaConfig {
                n: 2,
                w: 3,
                s: 2,
                t: 5.0,
                bootstrap_rate: 0.9,
                reference_update_every: 4,
                ..Default::default()
            }),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    );
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        2,
    );
    let loader = DataLoader::new(64, 16, 3, true);
    let report = trainer
        .train(&data, &loader, None)
        .expect("golden run trains");

    let mut out = String::new();
    out.push_str("golden-run fingerprint v1\n");
    for e in &report.epochs {
        let _ = writeln!(
            out,
            "epoch {} loss 0x{:08x} ({:.6}) frozen {}",
            e.epoch,
            e.train_loss.to_bits(),
            e.train_loss,
            e.frozen_prefix
        );
    }
    for ev in &report.events {
        let _ = writeln!(
            out,
            "event iter {} {} prefix {}",
            ev.iteration, ev.kind, ev.prefix
        );
    }
    let snap = telemetry.metrics_snapshot();
    for (name, value) in &snap.counters {
        if PINNED_COUNTER_PREFIXES.iter().any(|p| name.starts_with(p)) {
            let _ = writeln!(out, "counter {name} {value}");
        }
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("run_fingerprint.txt")
}

/// Line-by-line diff so a fingerprint drift is readable in test output.
fn diff_report(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "golden fingerprint mismatch ({} vs {} lines):",
        exp.len(),
        act.len()
    );
    let mut shown = 0;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied().unwrap_or("<missing>");
        let a = act.get(i).copied().unwrap_or("<missing>");
        if e != a {
            let _ = writeln!(out, "  line {:>3}: expected | {e}", i + 1);
            let _ = writeln!(out, "           actual   | {a}");
            shown += 1;
            if shown >= 10 {
                let _ = writeln!(out, "  ... further differences elided");
                break;
            }
        }
    }
    let _ = writeln!(
        out,
        "if this change is intentional, regenerate with: EGERIA_BLESS=1 cargo test --test golden_run"
    );
    out
}

#[test]
fn fixed_seed_run_matches_golden_fingerprint() {
    let actual = run_fingerprint();

    // The fingerprint must be reproducible within one process before it is
    // worth comparing across processes.
    let again = run_fingerprint();
    assert_eq!(
        actual, again,
        "fingerprint differs between two in-process runs"
    );

    // Sanity: the run must exercise the interesting machinery, or the
    // fingerprint pins nothing.
    assert!(
        actual.contains("event iter"),
        "no freeze events in golden run:\n{actual}"
    );
    assert!(
        actual.contains("counter freezer."),
        "no freezer counters in golden run"
    );
    assert!(
        actual.contains("counter cache."),
        "no cache counters in golden run"
    );

    let path = golden_path();
    if std::env::var("EGERIA_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!(
            "blessed {} ({} lines)",
            path.display(),
            actual.lines().count()
        );
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nfirst run? generate it with: EGERIA_BLESS=1 cargo test --test golden_run",
            path.display()
        )
    });
    if expected != actual {
        panic!("{}", diff_report(&expected, &actual));
    }
}
