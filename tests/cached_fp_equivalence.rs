//! Cached-FP correctness: serving the frozen prefix from the activation
//! cache must not change training at all.
//!
//! This is the load-bearing §4.3 invariant — a frozen module in eval mode
//! is a pure function of its input, stateless augmentation pins the input
//! per sample id, so the cached boundary activation must reproduce the full
//! forward bit-for-bit, making gradients (and thus the whole training
//! trajectory) identical.

use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_nn::optim::Sgd;
use egeria_tensor::{Rng, Tensor};

fn model() -> impl Model {
    resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        99,
    )
}

fn batch(seed: u64) -> Batch {
    let mut rng = Rng::new(seed);
    Batch {
        input: Input::Image(Tensor::randn(&[8, 3, 8, 8], &mut rng)),
        targets: Targets::Classes((0..8).map(|i| i % 4).collect()),
        sample_ids: (0..8).collect(),
    }
}

#[test]
fn cached_forward_matches_full_forward_exactly() {
    let mut full = model();
    let mut cached = model();
    let prefix = 2;
    full.freeze_prefix(prefix).unwrap();
    cached.freeze_prefix(prefix).unwrap();
    let mut opt_a = Sgd::new(0.05, 0.9, 0.0);
    let mut opt_b = Sgd::new(0.05, 0.9, 0.0);
    for step in 0..5 {
        let b = batch(step);
        // Path A: full forward, capturing the boundary activation.
        let ra = full.train_step(&b, Some(prefix - 1)).unwrap();
        let boundary = ra.captured.clone().unwrap();
        // Path B: resume from the captured activation (the cache path).
        let rb = cached.train_step_from(&b, prefix, &boundary, None).unwrap();
        assert!(
            (ra.loss - rb.loss).abs() < 1e-6,
            "step {step}: loss {} vs {}",
            ra.loss,
            rb.loss
        );
        assert_eq!(ra.modules_backpropped, rb.modules_backpropped);
        opt_a.step(&mut full.params_mut()).unwrap();
        opt_b.step(&mut cached.params_mut()).unwrap();
        full.zero_grad();
        cached.zero_grad();
        // Weights stay in lockstep.
        for (pa, pb) in full.params().iter().zip(cached.params().iter()) {
            assert!(
                pa.value.allclose(&pb.value, 1e-6),
                "step {step}: parameter {} diverged",
                pa.name
            );
        }
    }
}

#[test]
fn frozen_prefix_output_is_deterministic_across_calls() {
    let mut m = model();
    m.freeze_prefix(1).unwrap();
    let b = batch(7);
    let a1 = m.capture_activation(&b, 0).unwrap();
    // Interleave a training step on the *active* suffix; the frozen
    // prefix's output for the same input must not move.
    let _ = m.train_step(&b, None).unwrap();
    let mut opt = Sgd::new(0.1, 0.0, 0.0);
    opt.step(&mut m.params_mut()).unwrap();
    m.zero_grad();
    let a2 = m.capture_activation(&b, 0).unwrap();
    assert_eq!(a1, a2, "frozen module output drifted after active-layer updates");
}

#[test]
fn unfrozen_module_output_does_move() {
    // Control for the test above: without freezing, the same module's
    // output must change after an update.
    let mut m = model();
    let b = batch(7);
    let a1 = m.capture_activation(&b, 0).unwrap();
    let _ = m.train_step(&b, None).unwrap();
    let mut opt = Sgd::new(0.1, 0.0, 0.0);
    opt.step(&mut m.params_mut()).unwrap();
    m.zero_grad();
    let a2 = m.capture_activation(&b, 0).unwrap();
    assert_ne!(a1, a2);
}

#[test]
fn cache_round_trip_preserves_training_equivalence() {
    // Same as the exact-match test but routing the boundary activation
    // through the real disk cache (serialize → write → read → concat).
    use egeria_core::cache::ActivationCache;
    let dir = std::env::temp_dir().join(format!("egeria_it_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cache = ActivationCache::new(&dir, 4).unwrap();
    let mut m = model();
    let prefix = 1;
    m.freeze_prefix(prefix).unwrap();
    let b = batch(3);
    let r = m.train_step(&b, Some(prefix - 1)).unwrap();
    let boundary = r.captured.unwrap();
    m.zero_grad();
    cache.put_batch(&b.sample_ids, &boundary, prefix).unwrap();
    let loaded = cache.get_batch(&b.sample_ids, prefix).unwrap().unwrap();
    assert_eq!(loaded, boundary, "disk round trip altered the activation");
    let r2 = m.train_step_from(&b, prefix, &loaded, None).unwrap();
    assert!((r.loss - r2.loss).abs() < 1e-6);
}
