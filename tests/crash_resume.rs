//! Crash-consistency integration tests: kill training mid-epoch with an
//! injected fault, resume from the checkpoint directory, and compare
//! against an uninterrupted run. Also drives the graceful-degradation
//! paths (disk-full cache, corrupted cache entries, failed checkpoint
//! saves) through a full training run.

use egeria_core::checkpoint::CheckpointOptions;
use egeria_core::config::ControllerMode;
use egeria_core::faults::{FaultAction, FaultInjector, FaultSite};
use egeria_core::trainer::{EgeriaTrainer, Optimizer, TrainerOptions, TrainReport};
use egeria_core::EgeriaConfig;
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::DataLoader;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_nn::optim::Sgd;
use egeria_nn::sched::MultiStepDecay;
use std::path::PathBuf;
use std::sync::Arc;

const EPOCHS: usize = 10;

fn sync_config() -> EgeriaConfig {
    EgeriaConfig {
        n: 2,
        w: 3,
        s: 2,
        t: 5.0,
        bootstrap_rate: 0.9,
        ..Default::default()
    }
}

fn data_and_loader() -> (SyntheticImages, DataLoader) {
    let data = SyntheticImages::new(
        ImageDataConfig {
            samples: 64,
            classes: 4,
            size: 8,
            noise: 0.3,
            augment: true,
        },
        11,
    );
    let loader = DataLoader::new(64, 16, 13, true);
    (data, loader)
}

fn make_trainer(
    cfg: EgeriaConfig,
    cache_dir: PathBuf,
    checkpoint: Option<CheckpointOptions>,
    faults: Option<Arc<FaultInjector>>,
) -> EgeriaTrainer {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        },
        7,
    );
    EgeriaTrainer::new(
        Box::new(model),
        Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4)),
        Box::new(MultiStepDecay::new(0.05, 0.1, vec![usize::MAX])),
        TrainerOptions {
            epochs: EPOCHS,
            egeria: Some(cfg),
            cache_dir: Some(cache_dir),
            checkpoint,
            faults,
            ..Default::default()
        },
    )
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("egeria_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn freeze_timeline(r: &TrainReport) -> Vec<(usize, String, usize)> {
    r.events
        .iter()
        .map(|e| (e.iteration, e.kind.clone(), e.prefix))
        .collect()
}

#[test]
fn resume_matches_uninterrupted_run() {
    let (data, loader) = data_and_loader();

    // Reference: one uninterrupted run, no checkpointing.
    let mut full = make_trainer(sync_config(), scratch("full_cache"), None, None);
    let full_report = full.train(&data, &loader, None).unwrap();
    assert!(
        full_report.events.iter().any(|e| e.kind == "freeze"),
        "reference run never froze; the comparison would be vacuous"
    );

    // Crash run: same seeds, checkpoint every epoch, injected crash
    // mid-epoch well after the first freeze decisions.
    let ckpt_dir = scratch("ckpt");
    let faults = FaultInjector::new();
    faults.arm(FaultSite::TrainStep, 25, 1, FaultAction::Fail);
    let mut crashed = make_trainer(
        sync_config(),
        scratch("crash_cache"),
        Some(CheckpointOptions::new(&ckpt_dir)),
        Some(faults.clone()),
    );
    let err = crashed.train(&data, &loader, None).unwrap_err();
    assert!(err.to_string().contains("injected crash"), "got: {err}");
    assert_eq!(faults.injected(FaultSite::TrainStep), 1);
    drop(crashed); // The "process" is gone; only the checkpoint dir survives.

    // Resume: a fresh trainer pointed at the same checkpoint directory.
    let mut resumed = make_trainer(
        sync_config(),
        scratch("resume_cache"),
        Some(CheckpointOptions::new(&ckpt_dir)),
        None,
    );
    let resumed_report = resumed.train(&data, &loader, None).unwrap();
    let resume_epoch = resumed_report
        .resumed_from_epoch
        .expect("run must have resumed from a checkpoint");
    assert!(resume_epoch > 0 && resume_epoch < EPOCHS);

    // The freezing timeline (which modules froze/unfroze at which
    // iteration) must be identical to the uninterrupted run's.
    assert_eq!(
        freeze_timeline(&full_report),
        freeze_timeline(&resumed_report),
        "freezing timeline diverged after resume"
    );
    // Per-epoch frozen prefixes match across the whole run.
    let prefixes = |r: &TrainReport| r.epochs.iter().map(|e| e.frozen_prefix).collect::<Vec<_>>();
    assert_eq!(prefixes(&full_report), prefixes(&resumed_report));
    // The resumed report covers every epoch, not just the tail.
    assert_eq!(resumed_report.epochs.len(), EPOCHS);
    assert_eq!(resumed_report.iterations.len(), full_report.iterations.len());
    // Final loss matches the uninterrupted run within tolerance.
    let full_final = full_report.epochs.last().unwrap().train_loss;
    let resumed_final = resumed_report.epochs.last().unwrap().train_loss;
    assert!(
        (full_final - resumed_final).abs() < 1e-3,
        "final loss diverged: uninterrupted {full_final} vs resumed {resumed_final}"
    );
}

#[test]
fn resume_survives_corrupt_latest_checkpoint() {
    let (data, loader) = data_and_loader();
    let ckpt_dir = scratch("ckpt_corrupt");
    let faults = FaultInjector::new();
    faults.arm(FaultSite::TrainStep, 30, 1, FaultAction::Fail);
    let mut crashed = make_trainer(
        sync_config(),
        scratch("corrupt_cache_a"),
        Some(CheckpointOptions::new(&ckpt_dir)),
        Some(faults),
    );
    crashed.train(&data, &loader, None).unwrap_err();

    // Bit-flip the newest checkpoint file: the fall-back must pick the
    // previous epoch's file instead.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().map(|e| e == "egck").unwrap_or(false))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "need at least two checkpoints, have {files:?}");
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(newest, &bytes).unwrap();

    let mut resumed = make_trainer(
        sync_config(),
        scratch("corrupt_cache_b"),
        Some(CheckpointOptions::new(&ckpt_dir)),
        None,
    );
    let report = resumed.train(&data, &loader, None).unwrap();
    let resume_epoch = report.resumed_from_epoch.expect("must resume");
    // The newest file covered epoch (crash at step 30 → 7 full epochs);
    // falling back one file means resuming one epoch earlier.
    assert!(resume_epoch < EPOCHS - 1, "resumed from {resume_epoch}");
    assert_eq!(report.epochs.len(), EPOCHS);
}

#[test]
fn disk_faults_degrade_without_stopping_training() {
    let (data, loader) = data_and_loader();
    let faults = FaultInjector::new();
    // The cache disk goes read-only for a stretch of writes, several
    // entries read back corrupted, and one checkpoint save hits a full
    // disk. Training must finish anyway, with the degradations visible.
    faults.arm(FaultSite::CacheWrite, 4, 24, FaultAction::Fail);
    faults.arm(FaultSite::CacheRead, 2, 6, FaultAction::CorruptBytes);
    faults.arm(FaultSite::CheckpointWrite, 2, 1, FaultAction::Fail);
    let mut t = make_trainer(
        sync_config(),
        scratch("degrade_cache"),
        Some(CheckpointOptions::new(scratch("degrade_ckpt"))),
        Some(faults.clone()),
    );
    let report = t.train(&data, &loader, None).unwrap();
    assert_eq!(report.epochs.len(), EPOCHS, "training must run to completion");
    assert!(
        faults.injected_total() > 0,
        "no fault ever fired; the test exercised nothing"
    );
    // Degradations are observable, not silent.
    if faults.injected(FaultSite::CacheWrite) > 0 {
        assert!(report.cache_stats.write_errors > 0);
    }
    if faults.injected(FaultSite::CacheRead) > 0 {
        assert!(report.cache_stats.corrupt_entries > 0);
    }
    if faults.injected(FaultSite::CheckpointWrite) > 0 {
        assert!(report.checkpoint_save_errors > 0);
    }
    // Loss still went down: the degraded run actually trained.
    let first = report.epochs.first().unwrap().train_loss;
    let last = report.epochs.last().unwrap().train_loss;
    assert!(last < first, "loss {first} → {last}");
}

#[test]
fn async_resume_completes_with_fresh_reference() {
    // Async mode cannot replay the controller's reference exactly (it
    // lives on the dead thread), but resume must still work: regenerate
    // the reference from the restored weights and respawn the controller.
    let (data, loader) = data_and_loader();
    let cfg = EgeriaConfig {
        controller: ControllerMode::Async,
        cpu_load_gate: 10.0, // never gate in tests
        ..sync_config()
    };
    let ckpt_dir = scratch("ckpt_async");
    let faults = FaultInjector::new();
    faults.arm(FaultSite::TrainStep, 25, 1, FaultAction::Fail);
    let mut crashed = make_trainer(
        cfg,
        scratch("async_cache_a"),
        Some(CheckpointOptions::new(&ckpt_dir)),
        Some(faults),
    );
    crashed.train(&data, &loader, None).unwrap_err();

    let mut resumed = make_trainer(
        cfg,
        scratch("async_cache_b"),
        Some(CheckpointOptions::new(&ckpt_dir)),
        None,
    );
    let report = resumed.train(&data, &loader, None).unwrap();
    assert!(report.resumed_from_epoch.is_some());
    assert_eq!(report.epochs.len(), EPOCHS);
}

#[test]
fn controller_watchdog_restarts_dead_thread() {
    let (data, loader) = data_and_loader();
    let cfg = EgeriaConfig {
        controller: ControllerMode::Async,
        cpu_load_gate: 10.0,
        ..sync_config()
    };
    let faults = FaultInjector::new();
    // The controller thread dies on its first evaluation; the trainer's
    // watchdog must respawn it and training must still freeze modules.
    faults.arm(FaultSite::ControllerEval, 0, 1, FaultAction::Fail);
    let mut t = make_trainer(cfg, scratch("watchdog_cache"), None, Some(faults.clone()));
    let report = t.train(&data, &loader, None).unwrap();
    assert_eq!(report.epochs.len(), EPOCHS);
    assert_eq!(faults.injected(FaultSite::ControllerEval), 1);
    assert!(
        report.controller_restarts >= 1,
        "watchdog never respawned the controller"
    );
}
