#!/usr/bin/env bash
# Repo CI gate: build, test (serial and parallel pool), lint, bench smoke.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# Workspace contract lint: the line-local rules (unsafe/SAFETY audit,
# kernel panic ban, float exact-eq, determinism, vendored-deps) plus the
# graph tier (panic/wallclock/entropy reachability from kernel and
# serialize entries, lock-order cycles, unjoined spawns — DESIGN.md §5h)
# — hard gate before any test runs. Deny findings fail outright; warn
# findings fail only when new vs the checked-in lint-baseline.json
# ratchet. The gate doubles as the lint's own perf smoke: parsing and
# resolving the whole workspace must stay under 5 seconds.
lint_start=$SECONDS
cargo run --release -p egeria-lint -- --workspace
lint_elapsed=$(( SECONDS - lint_start ))
if [ "$lint_elapsed" -ge 5 ]; then
    echo "egeria-lint took ${lint_elapsed}s — over the 5s self-perf budget" >&2
    exit 1
fi

# The checked-in baseline must be byte-identical to what --bless-baseline
# would write today: a stale baseline silently widens or mislabels the
# warn ratchet. (Bless to a scratch file and compare.)
lint_scratch="$(mktemp)"
cargo run --release -p egeria-lint -- --workspace --bless-baseline \
    --baseline "$lint_scratch" >/dev/null
cmp "$lint_scratch" lint-baseline.json \
    || { echo "lint-baseline.json is stale — rerun with --bless-baseline" >&2; exit 1; }
rm -f "$lint_scratch"

# The parallel compute backend must be bit-identical at every pool size
# and well-behaved at every ISA: run the suite pinned to 1 thread with the
# SIMD layer forced to the scalar fallback, and again at the machine
# default (auto-detected vector ISA, default pool). The two axes cross:
# scalar+1-thread is the reference corner, auto+default the fastest one.
EGERIA_THREADS=1 EGERIA_SIMD=scalar cargo test -q
cargo test -q

# Freezing-policy A/B matrix (DESIGN §5i): the release-built harness runs
# every policy over every model family on fixed seeds, verifies each cell
# against its checked-in golden fingerprint (tests/golden/policies/),
# checks the per-family traces stay pairwise distinct, and rewrites the
# A/B report under results/. Hard gate; regenerate goldens after an
# intentional policy change with `cargo run --release -p egeria-scenarios
# --bin scenario_ab -- --bless`.
cargo run --release -p egeria-scenarios --bin scenario_ab
for key in model policy final_loss tta_epochs compute_saved comm_skipped; do
    grep -q "\"$key\"" results/scenario_ab_report.json
done
grep -q '^model,policy,final_loss' results/scenario_ab_report.csv

# The golden-run fingerprint must be pool-size invariant: the full suite
# above already pins EGERIA_THREADS=1; re-pin the golden run at 8 threads.
EGERIA_THREADS=8 cargo test -q --test golden_run

cargo clippy --workspace --all-targets -- -D warnings

# Kernel perf smoke: times the hot paths under both backends and the SIMD
# microkernel layer, emitting a machine-readable report (BENCH_ops.json).
# Asserts the determinism contract and the <2% disabled-telemetry overhead
# contract (DESIGN §5d). The report must carry the SIMD entries (§5g).
cargo run --release -p egeria-bench --bin bench_ops -- --smoke
for key in simd_isa qmatmul softmax adam_update; do
    grep -q "\"$key\"" BENCH_ops.json
done

# Telemetry smoke: a traced quickstart must emit schema-valid JSONL that
# trace_report can validate and summarize (trace_report exits non-zero on
# any schema violation).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
EGERIA_TRACE="$trace_dir/quickstart" cargo run --release --example quickstart >/dev/null
test -s "$trace_dir/quickstart.jsonl"
test -s "$trace_dir/quickstart.chrome.json"
# (no pipe: grep -q would SIGPIPE trace_report under pipefail)
cargo run --release -p egeria-bench --bin trace_report -- "$trace_dir/quickstart.jsonl" \
    > "$trace_dir/report.txt"
grep -q "freeze timeline" "$trace_dir/report.txt"

# Serving smoke (DESIGN §5e): a traced serving run must emit schema-valid
# JSONL whose trace_report summary includes the serve-batch section, and
# bench_serve must emit a well-formed BENCH_serve.json with both load
# shapes. The off switch must leave the golden-run fingerprint unchanged.
EGERIA_TRACE="$trace_dir/serving" cargo run --release --example reference_serving >/dev/null
test -s "$trace_dir/serving.jsonl"
cargo run --release -p egeria-bench --bin trace_report -- "$trace_dir/serving.jsonl" \
    > "$trace_dir/serving_report.txt"
grep -q "serve batches" "$trace_dir/serving_report.txt"
(cd "$trace_dir" && cargo run --release -p egeria-bench \
    --manifest-path "$OLDPWD/Cargo.toml" --bin bench_serve -- --smoke >/dev/null)
grep -q '"open_loop"' "$trace_dir/BENCH_serve.json"
grep -q '"closed_loop"' "$trace_dir/BENCH_serve.json"
EGERIA_SERVE=off cargo test -q --test golden_run

# Chaos-soak smoke (DESIGN §5f): bounded e2e training under a fixed-seed
# fault schedule. Hard gate: fallback-covered faults must leave the loss
# curve bit-identical, degradation-only faults must never abort, and
# teardown must leak no threads. (~30-40s; seeds are pinned so a failure
# reproduces exactly with the same command.)
EGERIA_CHAOS_SEED=1337 cargo test -q --test chaos_soak

# Cache v2 store gate (DESIGN §5j): the chunked backend must hold the
# same golden-run fingerprint as flat (lossless is bit-exact), survive a
# full traced quickstart, and the cache benchmark must emit a well-formed
# BENCH_cache.json carrying the acceptance ratios (flat-vs-chunked
# footprint and file count).
EGERIA_CACHE_STORE=chunked cargo test -q --test golden_run
EGERIA_CACHE_STORE=chunked cargo run --release --example quickstart >/dev/null
(cd "$trace_dir" && cargo run --release -p egeria-bench \
    --manifest-path "$OLDPWD/Cargo.toml" --bin bench_cache -- --smoke >/dev/null)
grep -q '"footprint_ratio"' "$trace_dir/BENCH_cache.json"
grep -q '"file_ratio"' "$trace_dir/BENCH_cache.json"
grep -q '"chunked_int8"' "$trace_dir/BENCH_cache.json"
