#!/usr/bin/env bash
# Repo CI gate: build, test (serial and parallel pool), lint, bench smoke.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# Workspace contract lint (unsafe/SAFETY audit, kernel panic ban, float
# exact-eq, determinism, vendored-deps) — hard gate before any test runs.
cargo run --release -p egeria-lint -- --workspace

# The parallel compute backend must be bit-identical at every pool size:
# run the suite pinned to 1 thread and again at the machine default.
EGERIA_THREADS=1 cargo test -q
cargo test -q

cargo clippy --workspace --all-targets -- -D warnings

# Kernel perf smoke: times the hot paths under both backends and emits a
# machine-readable report (BENCH_ops.json) with ns/iter and speedups.
cargo run --release -p egeria-bench --bin bench_ops -- --smoke
