#!/usr/bin/env bash
# Repo CI gate: build, test (serial and parallel pool), lint, bench smoke.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# Workspace contract lint (unsafe/SAFETY audit, kernel panic ban, float
# exact-eq, determinism, vendored-deps) — hard gate before any test runs.
cargo run --release -p egeria-lint -- --workspace

# The parallel compute backend must be bit-identical at every pool size:
# run the suite pinned to 1 thread and again at the machine default.
EGERIA_THREADS=1 cargo test -q
cargo test -q

cargo clippy --workspace --all-targets -- -D warnings

# Kernel perf smoke: times the hot paths under both backends and emits a
# machine-readable report (BENCH_ops.json). Asserts the determinism
# contract and the <2% disabled-telemetry overhead contract (DESIGN §5d).
cargo run --release -p egeria-bench --bin bench_ops -- --smoke

# Telemetry smoke: a traced quickstart must emit schema-valid JSONL that
# trace_report can validate and summarize (trace_report exits non-zero on
# any schema violation).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
EGERIA_TRACE="$trace_dir/quickstart" cargo run --release --example quickstart >/dev/null
test -s "$trace_dir/quickstart.jsonl"
test -s "$trace_dir/quickstart.chrome.json"
# (no pipe: grep -q would SIGPIPE trace_report under pipefail)
cargo run --release -p egeria-bench --bin trace_report -- "$trace_dir/quickstart.jsonl" \
    > "$trace_dir/report.txt"
grep -q "freeze timeline" "$trace_dir/report.txt"
