//! Workspace façade crate. Re-exports the public crates for examples and integration tests.
// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub use egeria_core as core_sys;
