//! Workspace façade crate. Re-exports the public crates for examples and integration tests.
pub use egeria_core as core_sys;
