//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` on structs with named fields into an
//! `impl ::serde::Serialize` that writes a JSON object, one
//! `::serde::write_field` call per field. `#[serde(skip)]` is honoured.
//! Implemented with hand-rolled token walking (no `syn`/`quote`, which the
//! offline build cannot download); this covers exactly the shapes the
//! workspace derives on: non-generic structs with named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let (name, fields_group) = parse_struct(&tokens)
        .unwrap_or_else(|msg| panic!("#[derive(Serialize)] stub: {msg}"));

    let fields = match fields_group {
        Some(group) => parse_named_fields(group),
        // Unit struct: serialize as an empty object.
        None => Vec::new(),
    };

    let mut body = String::new();
    for field in &fields {
        body.push_str(&format!(
            "::serde::write_field(out, &mut first, \"{field}\", &self.{field});\n"
        ));
    }

    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n\
                 out.push('{{');\n\
                 let mut first = true;\n\
                 {body}\
                 let _ = &mut first;\n\
                 out.push('}}');\n\
             }}\n\
         }}\n"
    );
    code.parse().expect("derive stub produced invalid Rust")
}

/// Finds the struct name and its brace-delimited field group.
fn parse_struct(tokens: &[TokenTree]) -> Result<(String, Option<TokenStream>), String> {
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility before `struct`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' plus the bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("enums are not supported; derive on structs only".into());
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a struct name after `struct`".into()),
    };
    i += 1;
    // Generic parameters would need bound plumbing; the workspace has none.
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic struct `{name}` is not supported"));
    }
    // Named-field structs end in a brace group; unit structs in `;`.
    for tok in &tokens[i..] {
        match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return Ok((name, Some(g.stream())));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct `{name}` is not supported"));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => {}
        }
    }
    Ok((name, None))
}

/// Extracts non-skipped field names from a named-field body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Collect this field's attributes, watching for #[serde(skip)].
        let mut skip = false;
        loop {
            match (&tokens.get(i), &tokens.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Skip visibility: `pub` optionally followed by `(...)`.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Field name.
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // Skip `:` and the type, up to the next top-level comma. Angle
        // brackets nest (`Option<Vec<f32>>`), so track their depth.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if !skip {
            fields.push(name);
        }
    }
    fields
}

/// Whether a `#[...]` attribute body is `serde(... skip ...)`.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (&tokens.first(), &tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream().into_iter().any(
                |t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"),
            )
        }
        _ => false,
    }
}
