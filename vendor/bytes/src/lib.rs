//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor surface the tensor serializer uses:
//! `Buf` over `&[u8]` (reads advance the slice), `BufMut` over `BytesMut`,
//! and an immutable `Bytes` buffer that derefs to `[u8]`. Backed by plain
//! `Vec<u8>` — no refcounted views, which nothing here needs.

use std::ops::Deref;

/// Read cursor over a byte source; reads consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies out the next `dst.len()` bytes and advances.
    ///
    /// Panics if fewer than `dst.len()` bytes remain, matching the real
    /// crate; callers bounds-check with [`Buf::remaining`] first.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "Buf::copy_to_slice: not enough bytes remaining"
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor that appends to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

/// Growable write buffer; freeze into [`Bytes`] when done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer; derefs to `[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        buf.put_u8(7);
        let bytes = buf.freeze();
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.remaining(), 4 + 8 + 4 + 1);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
