//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the only piece this workspace uses: `crossbeam::channel`
//! bounded MPMC channels with disconnect-aware blocking and non-blocking
//! send/receive. Built on `std::sync::{Mutex, Condvar}`; correctness over
//! raw throughput, which is fine for the controller/prefetcher queues that
//! carry a handful of messages per evaluation.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        // Signalled when the queue gains an item or all senders vanish.
        not_empty: Condvar,
        // Signalled when the queue loses an item or all receivers vanish.
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel with capacity `cap` (minimum 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < state.cap {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Enqueues `value` without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= state.cap {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers so they can observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives. Fails only when the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Dequeues a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake blocked senders so they can observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(TrySendError::Disconnected(3))
        ));
        assert!(tx.send(4).is_err());
    }

    #[test]
    fn recv_sees_disconnect() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn cross_thread_round_trip() {
        let (tx, rx) = bounded(8);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        producer.join().unwrap();
        assert_eq!(sum, (0..100).sum::<i32>());
    }
}
