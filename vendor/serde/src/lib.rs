//! Offline stand-in for the `serde` crate.
//!
//! The workspace only ever serializes reports to JSON (`serde_json::to_string`
//! on `#[derive(Serialize)]` structs), so instead of serde's full
//! visitor/data-model machinery this stub defines one trait that writes JSON
//! straight into a `String`. The derive macro (re-exported from the vendored
//! `serde_derive`) emits calls to [`write_field`] for each non-skipped field,
//! honouring `#[serde(skip)]`.

pub use serde_derive::Serialize;

/// A type that can write itself as a JSON value.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        // JSON has no NaN/Infinity; serde_json emits null for them.
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

/// Appends `s` as a JSON string literal with escaping.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends one `"key":value` pair, managing the leading comma.
///
/// Called by the derive-generated `serialize_json` for each field.
pub fn write_field<T: Serialize + ?Sized>(
    out: &mut String,
    first: &mut bool,
    key: &str,
    value: &T,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write_json_string(out, key);
    out.push(':');
    value.serialize_json(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(42u32), "42");
        assert_eq!(json(-3i64), "-3");
        assert_eq!(json(1.5f32), "1.5");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json(true), "true");
        assert_eq!(json(Option::<f32>::None), "null");
        assert_eq!(json(Some(2.0f32)), "2");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn sequences() {
        assert_eq!(json(vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(Vec::<u8>::new()), "[]");
    }

    #[test]
    fn field_writer_manages_commas() {
        let mut out = String::from("{");
        let mut first = true;
        write_field(&mut out, &mut first, "a", &1u32);
        write_field(&mut out, &mut first, "b", "x");
        out.push('}');
        assert_eq!(out, r#"{"a":1,"b":"x"}"#);
    }
}
