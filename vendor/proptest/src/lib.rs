//! Offline stand-in for the `proptest` crate.
//!
//! Random-input testing with the same call-site grammar this workspace
//! uses: `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `any::<T>()`, range and
//! tuple strategies, `prop_map`, and `prop::collection::{vec, hash_set}`.
//!
//! Differences from the real crate, deliberate for an offline stub: no
//! shrinking (a failing case reports its assertion message only), and the
//! per-test RNG is seeded from the test's name, so runs are deterministic
//! across invocations and machines.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator backing each property test (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds deterministically from a test's name, so every test gets a
    /// distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a single generated case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case did not meet a `prop_assume!` precondition; retry.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the stub keeps unconfigured
        // blocks cheaper since this workspace always sets cases explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The default whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/a);
impl_tuple_strategy!(A/a, B/b);
impl_tuple_strategy!(A/a, B/b, C/c);
impl_tuple_strategy!(A/a, B/b, C/c, D/d);
impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);

/// Collection strategies (`prop::collection::{vec, hash_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// A `Vec` of `element` values with length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s of `element` with size drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// A `HashSet` of `element` values with target size in `sizes`.
    pub fn hash_set<S>(element: S, sizes: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, sizes }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.sizes.clone().generate(rng);
            let mut set = HashSet::with_capacity(target);
            // Duplicates shrink the set; bound the retries so a small value
            // domain cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 50 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything the standard `use proptest::prelude::*;` import provides.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub fn __run_cases<F>(name: &str, cfg: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(20).max(100);
    while accepted < cfg.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest `{name}`: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted); prop_assume! rejects too much",
                cfg.cases
            );
        }
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed: {msg}")
            }
        }
    }
}

/// Declares a block of property tests.
///
/// Grammar (matching the real crate's common form):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases(
                    stringify!($name),
                    $cfg,
                    |__rng: &mut $crate::TestRng| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __left,
                        __right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        __left,
                        __right
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __left
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, usize)> {
        (1..max, 1..max).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -2.0f32..2.0, s in any::<u64>()) {
            let _ = s;
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn mapped_tuples_are_ordered(p in pair(16)) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0usize..5, 2..7),
            s in prop::collection::hash_set(0u64..1000, 1..12),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 12);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_and_retries(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn eq_on_slices(n in 1usize..4) {
            let v = vec![7usize; n];
            prop_assert_eq!(&v[..], &vec![7usize; n][..]);
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn impossible_assume_gives_up() {
        crate::__run_cases("impossible", ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_case_panics_with_message() {
        crate::__run_cases("failing", ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("assertion failed: nope".into()))
        });
    }
}
