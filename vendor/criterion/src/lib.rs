//! Offline stand-in for the `criterion` crate.
//!
//! Provides the exact harness surface the `egeria-bench` targets use —
//! `Criterion::default()` with the warm-up/measurement/sample-size builders,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's statistical engine it runs each routine for a short fixed
//! budget and prints a one-line mean, which keeps `cargo bench` and
//! `clippy --all-targets` working offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up = t;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement = t;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, &id.into(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing group-level settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up budget for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up = t;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample` calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, label: &str, f: &mut F) {
    // Warm-up: one untimed call, then estimate a per-sample iteration count
    // that fits the measurement budget across the configured samples.
    let warm_start = Instant::now();
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let once = warm_start.elapsed().max(Duration::from_nanos(1));

    let budget = cfg.measurement.max(cfg.warm_up) / cfg.sample_size as u32;
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000) as u64;

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(cfg.sample_size),
    };
    for _ in 0..cfg.sample_size {
        f(&mut bencher);
    }

    let total: Duration = bencher.samples.iter().sum();
    let calls = (bencher.samples.len() as u64 * iters).max(1);
    let mean_ns = total.as_nanos() as f64 / calls as f64;
    println!("{label:<48} time: {}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(2);
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("f", |b| b.iter(|| 1 + 1));
            group.bench_with_input(BenchmarkId::new("p", 3), &3usize, |b, &n| {
                b.iter(|| n * 2)
            });
            group.finish();
        }
        c.bench_function("top", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(format_ns(500.0).contains("ns"));
        assert!(format_ns(5_000.0).contains("µs"));
        assert!(format_ns(5_000_000.0).contains("ms"));
        assert!(format_ns(5e9).contains("s/iter"));
    }
}
