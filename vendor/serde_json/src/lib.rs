//! Offline stand-in for `serde_json`.
//!
//! `to_string` delegates to the stub `serde::Serialize` (which writes JSON
//! directly); `to_string_pretty` re-indents the compact output with a small
//! string-aware formatter. Serialization is infallible here, so both return
//! `Ok` — the `Result` signature is kept for call-site compatibility.

use serde::Serialize;
use std::fmt;

/// Serialization error (never produced by this stub, kept for API parity).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to an indented JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let closer = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&closer) {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_compact() {
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("a:b").unwrap(), r#""a:b""#);
    }

    #[test]
    fn pretty_indents_and_preserves_strings() {
        let pretty = prettify(r#"{"a":[1,2],"b":"x{,}y","c":{}}"#);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": \"x{,}y\",\n  \"c\": {}\n}"
        );
    }
}
