//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no network access and no
//! crates-io mirror, so the workspace patches `rand` to this vendored
//! implementation (see `[patch.crates-io]` in the root `Cargo.toml`). It
//! provides exactly the surface `egeria_tensor::Rng` consumes: a seedable
//! `StdRng` with `gen::<f32/f64/bool>()` and `gen_range(0..n)`. The
//! generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! deterministic, and stable across platforms, which is what the stateless
//! augmentation and checkpoint/resume machinery require.

pub mod rngs {
    /// A seedable pseudo-random generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, per the
        // xoshiro authors' recommendation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `gen_range` can sample from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// A uniform draw from the range. Panics on an empty range, matching
    /// the real crate.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> usize;
}

impl SampleRange for std::ops::Range<usize> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let span = self
            .end
            .checked_sub(self.start)
            .filter(|&s| s > 0)
            .expect("gen_range: empty range");
        // Modulo mapping; bias is negligible for the range sizes the
        // workspace uses (≤ dataset length).
        self.start + (rng.next_u64() % span as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = (end - start) as u64 + 1;
        start + (rng.next_u64() % span) as usize
    }
}

/// Generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform integer from `range` (`a..b` or `a..=b`).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> usize
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++.
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
        }
    }
}
