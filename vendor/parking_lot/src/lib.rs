//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API (the
//! only part of the crate this workspace uses). A panicked holder does not
//! poison the lock: the guard is recovered with `PoisonError::into_inner`,
//! which is exactly parking_lot's semantics and what the fault-injection
//! tests rely on (a crashed prefetcher thread must not wedge the cache).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_still_acquires() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
